#!/usr/bin/env bash
# Offline pre-commit gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
#
# Runs entirely against the local toolchain and vendored/locked
# dependencies; no network access is required (--offline everywhere).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run (deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo bench --workspace --offline --no-run

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> chaos storm (ignored tests)"
cargo test -q --release --offline -p nautilus-bench --test chaos -- --include-ignored

echo "==> chaos determinism: seed matrix x {1,8} workers"
cargo build -q --release --offline -p nautilus-bench --bin chaos --bin resume
for seed in 1 2 3; do
    serial="$(target/release/chaos --seed "$seed" --workers 1)"
    parallel="$(target/release/chaos --seed "$seed" --workers 8)"
    if [ "$serial" != "$parallel" ]; then
        echo "chaos digest diverged at seed $seed between 1 and 8 workers" >&2
        diff <(printf '%s\n' "$serial") <(printf '%s\n' "$parallel") >&2 || true
        exit 1
    fi
done

echo "==> kill-and-resume determinism: interrupt after 2 generations, resume, diff"
for seed in 1 2 3; do
    for workers in 1 8; do
        straight="$(target/release/chaos --seed "$seed" --workers "$workers")"
        ckptdir="$(mktemp -d)"
        resumed="$(target/release/resume --seed "$seed" --workers "$workers" \
            --dir "$ckptdir" --budget-generations 2)"
        rm -rf "$ckptdir"
        if [ "$straight" != "$resumed" ]; then
            echo "resume digest diverged at seed $seed, $workers workers" >&2
            diff <(printf '%s\n' "$straight") <(printf '%s\n' "$resumed") >&2 || true
            exit 1
        fi
    done
done

echo "==> kill-and-resume determinism: SIGKILL a live victim, recover, diff"
ckptdir="$(mktemp -d)"
recovered="$(target/release/resume --seed 1 --workers 1 --dir "$ckptdir" --kill)"
rm -rf "$ckptdir"
straight="$(target/release/chaos --seed 1 --workers 1)"
if [ "$straight" != "$recovered" ]; then
    echo "post-SIGKILL recovery digest diverged from the straight run" >&2
    diff <(printf '%s\n' "$straight") <(printf '%s\n' "$recovered") >&2 || true
    exit 1
fi

echo "All checks passed."
