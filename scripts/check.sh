#!/usr/bin/env bash
# Offline pre-commit gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
#
# Runs entirely against the local toolchain and vendored/locked
# dependencies; no network access is required (--offline everywhere).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run (deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo bench --workspace --offline --no-run

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "All checks passed."
