#!/usr/bin/env bash
# Offline pre-commit gate: formatting, lints, tests.
#
# Usage: scripts/check.sh [--tsan]
#
# Runs entirely against the local toolchain and vendored/locked
# dependencies; no network access is required (--offline everywhere).
#
# --tsan (opt-in) instead runs the concurrency hammer tests — the sharded
# synthesis cache/runner and the supervised-evaluation watchdog workers —
# under ThreadSanitizer. Requires a nightly toolchain with the rust-src
# component (`-Zsanitizer=thread` needs an instrumented std via
# -Zbuild-std; a prebuilt std would report false races inside its own
# uninstrumented synchronization).

set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--tsan" ]; then
    if ! cargo +nightly --version >/dev/null 2>&1; then
        echo "error: --tsan needs a nightly toolchain;" \
             "install one with: rustup toolchain install nightly" >&2
        exit 1
    fi
    if ! rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^rust-src (installed)'; then
        echo "error: --tsan needs rust-src on nightly for -Zbuild-std;" \
             "install it with: rustup component add rust-src --toolchain nightly" >&2
        exit 1
    fi
    host="$(rustc -vV | sed -n 's/^host: //p')"
    echo "==> ThreadSanitizer: sharded-cache and runner hammers"
    RUSTFLAGS="${RUSTFLAGS:-} -Zsanitizer=thread" cargo +nightly test --offline \
        -Zbuild-std --target "$host" -p nautilus-synth --lib -- \
        hammer concurrent_evaluation
    echo "==> ThreadSanitizer: watchdog worker and supervised engine hammers"
    RUSTFLAGS="${RUSTFLAGS:-} -Zsanitizer=thread" cargo +nightly test --offline \
        -Zbuild-std --target "$host" -p nautilus-ga --lib -- \
        reclaimable_worker
    echo "TSan checks passed."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run (deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo bench --workspace --offline --no-run

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> chaos storm (ignored tests)"
cargo test -q --release --offline -p nautilus-bench --test chaos -- --include-ignored

echo "==> subprocess chaos battery (ignored tests)"
cargo test -q --release --offline -p nautilus-bench --test subprocess_chaos -- --include-ignored

echo "==> lock-free cache and pool hammers (release)"
cargo test -q --release --offline -p nautilus-synth --lib -- hammer
cargo test -q --release --offline -p nautilus-ga --lib -- pool:: batched

echo "==> chaos determinism: seed matrix x {1,2,8} workers"
cargo build -q --release --offline -p nautilus-bench --bin chaos --bin resume --bin mock-synth
for seed in 1 2 3; do
    serial="$(target/release/chaos --seed "$seed" --workers 1)"
    for workers in 2 8; do
        parallel="$(target/release/chaos --seed "$seed" --workers "$workers")"
        if [ "$serial" != "$parallel" ]; then
            echo "chaos digest diverged at seed $seed between 1 and $workers workers" >&2
            diff <(printf '%s\n' "$serial") <(printf '%s\n' "$parallel") >&2 || true
            exit 1
        fi
    done
done

echo "==> hang-storm determinism: supervised digests x {1,2,8} workers"
for seed in 1 2; do
    serial="$(target/release/chaos --storm hang --seed "$seed" --workers 1)"
    for workers in 2 8; do
        parallel="$(target/release/chaos --storm hang --seed "$seed" --workers "$workers")"
        if [ "$serial" != "$parallel" ]; then
            echo "hang-storm digest diverged at seed $seed between 1 and $workers workers" >&2
            diff <(printf '%s\n' "$serial") <(printf '%s\n' "$parallel") >&2 || true
            exit 1
        fi
    done
    case "$serial" in
        *'"watchdog_fired":0,'*)
            echo "hang-storm digest recorded no watchdog firings at seed $seed" >&2
            exit 1 ;;
    esac
done

echo "==> subprocess determinism: NAUTPROC digests x {1,2,8} workers"
# The chaos binary reruns each digest with every evaluation served by a
# mock-synth pool and exits nonzero on any byte of divergence, so each
# invocation below is a pass/fail gate in itself.
MOCK=target/release/mock-synth
for workers in 1 2 8; do
    target/release/chaos --storm clean --seed 1 --workers "$workers" \
        --subprocess "$MOCK" >/dev/null
done

echo "==> subprocess crash storm: real child deaths x {1,8} workers"
# The same seeded 10% transient plan, decided tool-side: every injected
# crash is a dying gasp followed by a real process death, and the digest
# must still match the in-process storm bit for bit.
for workers in 1 8; do
    target/release/chaos --seed 3 --workers "$workers" --subprocess "$MOCK" >/dev/null
done

echo "==> subprocess hang storm: supervised kills and respawns, 2 workers"
target/release/chaos --storm hang --seed 3 --workers 2 --subprocess "$MOCK" >/dev/null

echo "==> gate binaries fail loudly: exit codes"
# The in-process cross-worker self-check must pass...
target/release/chaos --seed 1 --workers 2 --check-workers 1 >/dev/null
# ...and both binaries must reject bad invocations nonzero, so a typo in
# this script can never turn a gate into a silent no-op.
if target/release/chaos --bogus >/dev/null 2>&1; then
    echo "chaos binary accepted an unknown argument" >&2
    exit 1
fi
if target/release/chaos --storm gamma-ray >/dev/null 2>&1; then
    echo "chaos binary accepted an unknown storm kind" >&2
    exit 1
fi
if target/release/resume --kill --victim >/dev/null 2>&1; then
    echo "resume binary accepted --kill combined with --victim" >&2
    exit 1
fi
if target/release/mock-synth --transient-rate 0.5 >/dev/null 2>&1 </dev/null; then
    echo "mock-synth accepted fault rates without --plan-seed" >&2
    exit 1
fi

echo "==> kill-and-resume determinism: interrupt after 2 generations, resume, diff"
for seed in 1 2 3; do
    for workers in 1 8; do
        straight="$(target/release/chaos --seed "$seed" --workers "$workers")"
        ckptdir="$(mktemp -d)"
        resumed="$(target/release/resume --seed "$seed" --workers "$workers" \
            --dir "$ckptdir" --budget-generations 2)"
        rm -rf "$ckptdir"
        if [ "$straight" != "$resumed" ]; then
            echo "resume digest diverged at seed $seed, $workers workers" >&2
            diff <(printf '%s\n' "$straight") <(printf '%s\n' "$resumed") >&2 || true
            exit 1
        fi
    done
done

echo "==> kill-and-resume determinism: SIGKILL a live victim, recover, diff"
ckptdir="$(mktemp -d)"
recovered="$(target/release/resume --seed 1 --workers 1 --dir "$ckptdir" --kill)"
rm -rf "$ckptdir"
straight="$(target/release/chaos --seed 1 --workers 1)"
if [ "$straight" != "$recovered" ]; then
    echo "post-SIGKILL recovery digest diverged from the straight run" >&2
    diff <(printf '%s\n' "$straight") <(printf '%s\n' "$recovered") >&2 || true
    exit 1
fi

echo "==> trace determinism: two same-seed traced runs, nautilus-trace diff"
cargo build -q --release --offline -p nautilus-bench --bin nautilus-trace
tracedir_a="$(mktemp -d)"
tracedir_b="$(mktemp -d)"
target/release/nautilus-trace capture "$tracedir_a" 27 >/dev/null
target/release/nautilus-trace capture "$tracedir_b" 27 >/dev/null
for tag in baseline guided-strong; do
    # The Perfetto traces must be structurally identical, and the event
    # streams logically identical, run to run.
    target/release/nautilus-trace diff \
        "$tracedir_a/$tag-seed27.trace.json" "$tracedir_b/$tag-seed27.trace.json"
    target/release/nautilus-trace diff \
        "$tracedir_a/$tag-seed27.events.jsonl" "$tracedir_b/$tag-seed27.events.jsonl"
done
# A malformed trace must be rejected with exit code 2, so a truncated
# artifact can never slip through the diff gate as "identical".
if target/release/nautilus-trace summarize "$tracedir_a/baseline-seed27.events.jsonl" \
        >/dev/null 2>&1; then
    echo "nautilus-trace accepted a non-trace file as a trace" >&2
    exit 1
fi
rm -rf "$tracedir_a" "$tracedir_b"

echo "==> daemon crash recovery: SIGKILL nautilus-serve twice, recover, diff"
cargo build -q --release --offline -p nautilus-serve --bin nautilus-serve --bin nautilus-cli
SERVE=target/release/nautilus-serve
CLI=target/release/nautilus-cli
servedir="$(mktemp -d)"

start_daemon() {
    "$SERVE" --dir "$servedir" --slots 2 >/dev/null 2>&1 &
    SERVE_PID=$!
    # Out of the job table so kill -9 does not spam "Killed" job noise.
    disown "$SERVE_PID"
    for _ in $(seq 1 500); do
        if "$CLI" ping --dir "$servedir" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.01
    done
    echo "nautilus-serve never answered a ping" >&2
    exit 1
}
ckpt_count() {
    find "$servedir/jobs" -name '*.nckpt' 2>/dev/null | wc -l
}
wait_dead() {
    # `wait` cannot reap a disowned pid; poll until the process is gone.
    for _ in $(seq 1 2000); do
        if ! kill -0 "$1" 2>/dev/null; then
            return 0
        fi
        sleep 0.01
    done
    echo "nautilus-serve (pid $1) refused to die" >&2
    exit 1
}
wait_for_ckpts() {
    for _ in $(seq 1 2000); do
        if [ "$(ckpt_count)" -ge "$1" ]; then
            return 0
        fi
        sleep 0.01
    done
    echo "daemon made no durable progress to destroy" >&2
    exit 1
}

start_daemon
# Three searches, slowed so they are still mid-flight when the daemon
# dies. Budgets are passed explicitly so the uninterrupted comparator
# below runs the byte-identical spec.
SPECS="bowl:guided-strong:101:1 ridge:guided-strong:102:2 bowl:baseline:103:8"
JOB_IDS=""
for spec in $SPECS; do
    IFS=: read -r model strategy seed workers <<< "$spec"
    id="$("$CLI" submit --dir "$servedir" --model "$model" --strategy "$strategy" \
        --seed "$seed" --workers "$workers" --generations 10 \
        --eval-delay-us 700 --max-evals 2000000)"
    JOB_IDS="$JOB_IDS $id"
done

# Kill #1 once the first durable checkpoints exist; kill #2 after the
# second incarnation has re-adopted the jobs and progressed further.
wait_for_ckpts 2
kill -9 "$SERVE_PID" 2>/dev/null
wait_dead "$SERVE_PID"
before="$(ckpt_count)"
start_daemon
wait_for_ckpts "$((before + 2))"
kill -9 "$SERVE_PID" 2>/dev/null
wait_dead "$SERVE_PID"

# The third incarnation finishes everything; each recovered digest must
# equal an uninterrupted in-process run of the same spec.
start_daemon
set -- $JOB_IDS
for spec in $SPECS; do
    IFS=: read -r model strategy seed workers <<< "$spec"
    job="$1"; shift
    recovered="$("$CLI" result --dir "$servedir" --job "$job" --wait 120)"
    straight="$("$CLI" straight --model "$model" --strategy "$strategy" \
        --seed "$seed" --workers "$workers" --generations 10 \
        --eval-delay-us 700 --max-evals 2000000)"
    if [ "$recovered" != "$straight" ]; then
        echo "daemon-recovered digest diverged for job $job" \
             "($model/$strategy seed $seed workers $workers)" >&2
        diff <(printf '%s\n' "$straight") <(printf '%s\n' "$recovered") >&2 || true
        exit 1
    fi
done

# Graceful goodbye: SIGTERM must drain and remove the endpoint file.
kill -15 "$SERVE_PID" 2>/dev/null
wait_dead "$SERVE_PID"
if [ -e "$servedir/endpoint" ]; then
    echo "nautilus-serve left its endpoint file behind after SIGTERM" >&2
    exit 1
fi
rm -rf "$servedir"

echo "==> disk-fault battery: fail every durable write point, workers {1,2,8}"
# The ignored leg enumerates first+last write-point faults per durable
# site at every supported eval-worker count; each must end in a typed
# error or a byte-identical recovery.
cargo test -q --release --offline -p nautilus-serve --test fault_battery -- --include-ignored

echo "==> hostile-client drill: fuzz flood, stalled peers, connection cap"
cargo test -q --release --offline -p nautilus-serve --test edge

echo "All checks passed."
