#!/usr/bin/env bash
# Offline pre-commit gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
#
# Runs entirely against the local toolchain and vendored/locked
# dependencies; no network access is required (--offline everywhere).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run (deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo bench --workspace --offline --no-run

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> chaos storm (ignored tests)"
cargo test -q --release --offline -p nautilus-bench --test chaos -- --include-ignored

echo "==> chaos determinism: seed matrix x {1,8} workers"
cargo build -q --release --offline -p nautilus-bench --bin chaos
for seed in 1 2 3; do
    serial="$(target/release/chaos --seed "$seed" --workers 1)"
    parallel="$(target/release/chaos --seed "$seed" --workers 8)"
    if [ "$serial" != "$parallel" ]; then
        echo "chaos digest diverged at seed $seed between 1 and 8 workers" >&2
        diff <(printf '%s\n' "$serial") <(printf '%s\n' "$parallel") >&2 || true
        exit 1
    fi
done

echo "All checks passed."
