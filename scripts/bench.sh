#!/usr/bin/env bash
# Headline benchmarks for the parallel evaluation pipeline.
#
# Usage: scripts/bench.sh [OUTPUT.json]
#
# Builds the release tree, runs the `evalbench` binary, and writes the
# measured headline numbers to BENCH_evalpipeline.json (or OUTPUT.json),
# including the 1/2/4/8 eval-worker matrix, this host's thread count, and
# the per-job overhead of dispatching evaluations to a `mock-synth`
# child over the NAUTPROC subprocess protocol, plus the submit -> result
# round-trip latency through a `nautilus-serve` daemon.
#
# Perf floors (enforced by evalbench --floors, non-zero exit on
# regression): the indexed dataset-query speedup must stay >= 5x, the
# 1-worker eval configuration >= 0.99x serial, every batched
# configuration >= 0.90x serial, batched eval strictly faster than
# serial on hosts with >= 2 threads, and the sharded cache >= 1.0x the
# monolithic baseline under the 8-thread hammer. The floors auto-skip
# when this host has fewer threads than the committed run recorded in
# `host_threads` — a smaller host cannot reproduce them.
#
# For fine-grained regression tracking, the same surfaces are covered by
# the criterion harness:
#
#   cargo bench --offline -p nautilus-bench --bench evalpipeline

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_evalpipeline.json}"

echo "==> cargo build --release -p nautilus-bench --bin evalbench --bin mock-synth"
cargo build --release --offline -p nautilus-bench --bin evalbench --bin mock-synth

# Floors recorded on a bigger host than this one cannot be reproduced
# here; run without gating (still measured and written) and say so.
FLOORS=(--floors)
host_threads="$(nproc 2>/dev/null || echo 1)"
if [ -f "$OUT" ]; then
    recorded="$(sed -n 's/.*"host_threads": \([0-9]*\).*/\1/p' "$OUT" | head -n1)"
    if [ -n "$recorded" ] && [ "$host_threads" -lt "$recorded" ]; then
        echo "==> floors skipped: host has $host_threads threads," \
             "committed run recorded $recorded"
        FLOORS=()
    fi
fi

echo "==> evalbench $OUT ${FLOORS[*]:-} --mock-synth target/release/mock-synth"
./target/release/evalbench "$OUT" ${FLOORS[@]+"${FLOORS[@]}"} \
    --mock-synth target/release/mock-synth

# The dispatch-overhead block proves the NAUTPROC boundary was actually
# measured (and its outcomes verified identical), not skipped.
if ! grep -q '"subprocess_dispatch"' "$OUT" || grep -q '"skipped"' "$OUT"; then
    echo "FAIL: $OUT is missing the measured subprocess_dispatch section" >&2
    exit 1
fi

# The service-latency block proves the submit -> result path through a
# real nautilus-serve daemon was measured, not skipped.
if ! grep -q '"service_latency"' "$OUT" \
        || ! grep -q '"submit_to_result_best_ms"' "$OUT"; then
    echo "FAIL: $OUT is missing the measured service_latency section" >&2
    exit 1
fi

# The attribution block is load-bearing: it names the top overhead phase
# behind the batch and shard headline numbers. Refuse to publish a
# result file without it.
if ! grep -q '"phase_attribution"' "$OUT"; then
    echo "FAIL: $OUT is missing the phase_attribution section" >&2
    exit 1
fi
if ! grep -q '"matrix"' "$OUT"; then
    echo "FAIL: $OUT is missing the eval-worker matrix" >&2
    exit 1
fi

# The report carries the *measured* indexed-query speedup; docs cite
# this file rather than a hand-copied constant that goes stale.
speedup="$(sed -n '/"dataset_query"/,/}/s/.*"speedup": \([0-9.]*\).*/\1/p' "$OUT" | head -n1)"
echo "==> dataset_query measured speedup: ${speedup}x (recorded in $OUT)"
