#!/usr/bin/env bash
# Headline benchmarks for the parallel evaluation pipeline.
#
# Usage: scripts/bench.sh [OUTPUT.json]
#
# Builds the release tree, runs the `evalbench` binary, and writes the
# measured headline numbers to BENCH_evalpipeline.json (or OUTPUT.json).
# The binary exits non-zero if the indexed dataset-query speedup drops
# below the 5x acceptance floor.
#
# For fine-grained regression tracking, the same three surfaces are
# covered by the criterion harness:
#
#   cargo bench --offline -p nautilus-bench --bench evalpipeline

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_evalpipeline.json}"

echo "==> cargo build --release -p nautilus-bench --bin evalbench"
cargo build --release --offline -p nautilus-bench --bin evalbench

echo "==> evalbench $OUT"
./target/release/evalbench "$OUT"

# The attribution block is load-bearing: it names the top overhead phase
# behind the batch and shard headline numbers. Refuse to publish a
# result file without it.
if ! grep -q '"phase_attribution"' "$OUT"; then
    echo "FAIL: $OUT is missing the phase_attribution section" >&2
    exit 1
fi
