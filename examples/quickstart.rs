//! Quickstart: tune a NoC router IP's parameters automatically.
//!
//! An "IP user" wants the fastest router configuration without
//! understanding the 9 swept micro-architecture parameters. The IP author
//! shipped hints with the generator; Nautilus does the rest.
//!
//! Run with: `cargo run --release -p nautilus-bench --example quickstart`

use nautilus::{Confidence, Nautilus, Query};
use nautilus_noc::hints::fmax_hints;
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, MetricExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The IP generator's synthesis backend (a surrogate for XST + Virtex-6).
    let model = RouterModel::swept();
    println!(
        "router IP: {} parameters, {} possible configurations",
        model.space().num_params(),
        model.space().cardinality()
    );

    // The user's request: "give me the fastest router".
    let fmax = MetricExpr::metric(model.catalog().require("fmax")?);
    let query = Query::maximize("fmax", fmax);

    // Baseline: an oblivious GA (paper Section 2).
    let engine = Nautilus::new(&model);
    let baseline = engine.run_baseline(&query, 2015)?;

    // Nautilus: the same GA guided by the IP author's hints (Section 3).
    let guided = engine.run_guided(&query, &fmax_hints(), Some(Confidence::STRONG), 2015)?;

    println!("\n              best Fmax   synthesis jobs   simulated EDA time");
    for run in [&baseline, &guided] {
        println!(
            "{:<12} {:>8.1} MHz   {:>14} {:>15.1} h",
            run.strategy,
            run.best_value,
            run.total_evals(),
            run.jobs.simulated_tool_time().as_secs_f64() / 3600.0,
        );
    }

    println!("\nbest design found by Nautilus:");
    println!("  {}", model.space().decode(&guided.best_genome));
    println!(
        "\nguided search reached {:.1} MHz using {} fewer synthesis jobs",
        guided.best_value,
        baseline.total_evals().saturating_sub(guided.total_evals()),
    );
    Ok(())
}
