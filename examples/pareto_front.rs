//! Multi-objective extension: approximate the area-vs-bandwidth Pareto
//! front of 64-endpoint CONNECT networks with an ε-constraint sweep of
//! Nautilus queries, and compare it against the exact front computed from
//! the characterized dataset.
//!
//! Run with: `cargo run --release -p nautilus-bench --example pareto_front`

use nautilus::{dataset_front, dominates, epsilon_constraint_front, Objective};
use nautilus_ga::Direction;
use nautilus_noc::connect::NocModel;
use nautilus_synth::{Dataset, MetricExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = NocModel::new(64);
    let dataset = Dataset::characterize(&model, 4)?;
    let objectives = vec![
        Objective::new(
            "bisection_gbps",
            MetricExpr::metric(dataset.catalog().require("bisection_gbps")?),
            Direction::Maximize,
        ),
        Objective::new(
            "area_mm2",
            MetricExpr::metric(dataset.catalog().require("area_mm2")?),
            Direction::Minimize,
        ),
    ];

    // Ground truth from the full characterization.
    let exact = dataset_front(&dataset, &objectives);
    println!("exact Pareto front: {} of {} designs", exact.len(), dataset.len());

    // Approximation: a handful of constrained Nautilus searches.
    let (approx, jobs) = epsilon_constraint_front(&model, &objectives, None, 8, 2024)?;
    println!(
        "approximated front: {} points from {} synthesis jobs ({:.1}% of the space)\n",
        approx.len(),
        jobs.jobs,
        100.0 * jobs.jobs as f64 / dataset.len() as f64,
    );

    println!("{:>14} {:>10}   design", "Gbps", "mm^2");
    let mut sorted = approx.clone();
    sorted.sort_by(|a, b| a.values[1].partial_cmp(&b.values[1]).expect("finite areas"));
    for p in &sorted {
        println!(
            "{:>14.0} {:>10.2}   {}",
            p.values[0],
            p.values[1],
            dataset.space().decode(&p.genome)
        );
    }

    // Quality: how many approximated points are dominated by the exact
    // front (lower is better; 0 means every point is truly optimal)?
    let dominated = approx
        .iter()
        .filter(|p| exact.iter().any(|q| dominates(&q.values, &p.values, &objectives)))
        .count();
    println!(
        "\n{}/{} approximated points are strictly dominated by the exact front",
        dominated,
        approx.len()
    );
    println!(
        "note: on this deliberately tiny demo space (720 designs) the sweep costs more \n         than exhaustive search — the paper's point exactly: modeling a whole Pareto \n         front is expensive, answering one query at a time is cheap. On the router's \n         27,648-point space the same sweep touches only a few percent."
    );
    Ok(())
}
