//! The paper's Figure 4 scenario as a library user would run it:
//! characterize the router sub-space once, then compare the baseline GA
//! against weakly and strongly guided Nautilus on a maximize-frequency
//! query, averaged over repeated runs.
//!
//! Run with: `cargo run --release -p nautilus-bench --example noc_frequency`

use nautilus::{compare, CompareConfig, Confidence, Query, Strategy};
use nautilus_ga::{Direction, GaSettings};
use nautilus_noc::hints::fmax_hints;
use nautilus_noc::router::RouterModel;
use nautilus_synth::{Dataset, MetricExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline characterization (the paper used a 200-core cluster for two
    // weeks; the surrogate takes well under a second).
    let model = RouterModel::swept();
    let dataset = Dataset::characterize(&model, 8)?;
    println!("characterized {} feasible router designs", dataset.len());

    let fmax = MetricExpr::metric(dataset.catalog().require("fmax")?);
    let (best_genome, best) = dataset.best(&fmax, Direction::Maximize);
    println!("ground-truth best: {best:.1} MHz at {}", dataset.space().decode(best_genome));

    // Replay searches against the dataset, like the paper's methodology.
    let replay = dataset.as_model();
    let query = Query::maximize("fmax", fmax.clone());
    let hints = fmax_hints();
    let strategies = [
        Strategy::baseline(),
        Strategy::guided("nautilus-weak", hints.clone(), Some(Confidence::WEAK)),
        Strategy::guided("nautilus-strong", hints, Some(Confidence::STRONG)),
    ];
    let config = CompareConfig {
        runs: 20,
        seed: 4,
        settings: GaSettings::default(),
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
    };
    let cmp = compare(&replay, &query, &strategies, &config)?;

    println!("\n{}", cmp.render_table(10));

    let threshold = 0.99 * best;
    println!("convergence to within 1% of the best ({threshold:.1} MHz):");
    for r in &cmp.results {
        let stats = r.reach_stats(Direction::Maximize, threshold);
        println!(
            "  {:<16} reached in {}/{} runs, mean {} synthesis jobs",
            r.name,
            stats.reached,
            stats.total,
            stats.mean_evals.map_or("n/a".to_owned(), |e| format!("{e:.0}")),
        );
    }
    if let Some(ratio) = cmp.evals_ratio("baseline", "nautilus-strong", threshold) {
        println!("\nbaseline needs {ratio:.1}x the synthesis jobs of strongly guided Nautilus");
    }
    Ok(())
}
