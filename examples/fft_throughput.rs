//! The paper's Figure 7 scenario: optimize a *composite* metric —
//! throughput (MSPS) per LUT — over the streaming FFT generator, with
//! expert hints, and inspect the winning hardware configuration.
//!
//! Run with: `cargo run --release -p nautilus-bench --example fft_throughput`

use nautilus::{Confidence, Nautilus, Query};
use nautilus_fft::hints::throughput_per_lut_hints;
use nautilus_fft::{FftConfig, FftModel};
use nautilus_synth::{CostModel, MetricExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = FftModel::new();
    let catalog = model.catalog();

    // Composite objective: throughput per LUT, built with expression
    // arithmetic over the generator's metrics.
    let throughput = MetricExpr::metric(catalog.require("throughput")?);
    let luts = MetricExpr::metric(catalog.require("luts")?);
    let query = Query::maximize("throughput_per_lut", throughput / luts);

    let engine = Nautilus::new(&model);
    let baseline = engine.run_baseline(&query, 7)?;
    let guided =
        engine.run_guided(&query, &throughput_per_lut_hints(), Some(Confidence::STRONG), 7)?;

    println!("objective: maximize throughput/LUT over {} designs", model.space().cardinality());
    println!("\n                   best MSPS/LUT   synthesis jobs   infeasible attempts");
    for run in [&baseline, &guided] {
        println!(
            "{:<18} {:>12.3} {:>16} {:>18}",
            run.strategy,
            run.best_value,
            run.total_evals(),
            run.jobs.infeasible,
        );
    }

    // Decode the winner into generator-speak.
    let cfg = FftConfig::decode(model.space(), &guided.best_genome);
    let metrics = model.evaluate(&guided.best_genome).expect("winner is feasible");
    println!("\nwinning configuration: {}", model.space().decode(&guided.best_genome));
    println!(
        "  {}-point FFT, {} samples/cycle, architecture #{}",
        1u64 << cfg.log2_size,
        1u64 << cfg.log2_width,
        cfg.arch,
    );
    for id in catalog.ids() {
        println!(
            "  {:<12} {:>12.2} {}",
            catalog.def(id).name(),
            metrics.get(id),
            catalog.def(id).unit()
        );
    }
    Ok(())
}
