//! The paper's non-expert path, end to end: estimate hints for a metric by
//! synthesizing a small sample of designs ("80 designs, less than 0.3% of
//! the design space") and observing trends, then verify the estimated
//! hints accelerate the search like author-provided ones.
//!
//! Run with: `cargo run --release -p nautilus-bench --example hint_estimation`

use nautilus::{
    compare, estimate_hints, CompareConfig, Confidence, EstimateConfig, Query, Strategy,
};
use nautilus_ga::{Direction, GaSettings};
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, Dataset, MetricExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = RouterModel::swept();
    let luts = MetricExpr::metric(model.catalog().require("luts")?);
    let query = Query::minimize("luts", luts.clone());

    // Step 1: spend a small synthesis budget probing trends.
    let config = EstimateConfig { budget: 80, ..EstimateConfig::default() };
    let estimated = estimate_hints(&model, &query, config, 11)?;
    println!(
        "estimated hints for `{}` from {} synthesis jobs (space: {} designs):\n",
        query.name(),
        estimated.jobs.jobs,
        model.space().cardinality()
    );
    println!("{:<18} {:>8} {:>12}", "parameter", "bias", "importance");
    for (name, bias, importance) in &estimated.diagnostics {
        println!("{name:<18} {bias:>+8.2} {importance:>12}");
    }

    // Step 2: do the estimated hints actually help? Replay against the
    // characterized dataset and compare with the baseline GA.
    let dataset = Dataset::characterize(&model, 8)?;
    let replay = dataset.as_model();
    let strategies = [
        Strategy::baseline(),
        Strategy::guided("estimated-hints", estimated.hints.clone(), Some(Confidence::STRONG)),
    ];
    let cmp = compare(
        &replay,
        &query,
        &strategies,
        &CompareConfig {
            runs: 20,
            seed: 5,
            settings: GaSettings::default(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        },
    )?;

    let (_, best) = dataset.best(&luts, Direction::Minimize);
    let threshold = 1.01 * best;
    println!("\nconvergence to within 1% of the smallest router ({best:.0} LUTs):");
    for r in &cmp.results {
        let s = r.reach_stats(Direction::Minimize, threshold);
        println!(
            "  {:<16} {}/{} runs, mean jobs {}",
            r.name,
            s.reached,
            s.total,
            s.mean_evals.map_or("n/a".to_owned(), |e| format!("{e:.0}")),
        );
    }
    if let Some(ratio) = cmp.evals_ratio("baseline", "estimated-hints", threshold) {
        println!(
            "\nhints estimated from {} probe designs make the search {ratio:.1}x cheaper",
            estimated.jobs.jobs
        );
    }
    Ok(())
}
