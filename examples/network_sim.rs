//! Dynamic network performance: drive the flit-level simulator across the
//! CONNECT topology families and compare simulated saturation against the
//! static peak-bisection-bandwidth metric the paper's Figure 2 plots.
//!
//! Run with: `cargo run --release -p nautilus-bench --example network_sim`

use nautilus_noc::connect::sim::{saturation_rate, simulate, Network, SimConfig};
use nautilus_noc::connect::Topology;

fn main() {
    println!(
        "{:<26} {:>8} {:>10} {:>14} {:>14} {:>12}",
        "topology", "routers", "channels", "0-load lat", "lat @ 0.08", "saturation"
    );
    for topo in Topology::ALL {
        let net = Network::build(topo, 64);
        let zero_load = simulate(&net, &SimConfig { injection_rate: 0.01, ..SimConfig::default() });
        let loaded = simulate(&net, &SimConfig { injection_rate: 0.08, ..SimConfig::default() });
        let saturation = saturation_rate(&net, 7);
        println!(
            "{:<26} {:>8} {:>10} {:>11.1} cy {:>11.1} cy {:>9.3} f/c",
            topo.label(),
            net.routers(),
            net.channels(),
            zero_load.avg_latency,
            loaded.avg_latency,
            saturation,
        );
    }

    println!(
        "\nlatency-vs-load sweep for an 8x8 mesh (uniform random traffic):\n{:>12} {:>12} {:>12}",
        "inj (f/c)", "latency", "delivered"
    );
    let mesh = Network::build(Topology::Mesh, 64);
    for rate in [0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let r = simulate(&mesh, &SimConfig { injection_rate: rate, ..SimConfig::default() });
        println!("{rate:>12.2} {:>9.1} cy {:>12.3}", r.avg_latency, r.delivered_rate);
    }
    println!(
        "\nThe static model's bisection ordering (ring < mesh < torus < fat tree)\n\
         re-emerges dynamically as the saturation ordering above — the\n\
         simulation side of the paper's \"synthesis and/or simulations\"."
    );
}
