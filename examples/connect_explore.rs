//! Explore the CONNECT-style network design space (the paper's Figure 2
//! motivation): characterize all 64-endpoint networks, summarize the
//! topology families, then answer a *constrained* query — "the most
//! bandwidth within an area and power budget" — with Nautilus.
//!
//! Run with: `cargo run --release -p nautilus-bench --example connect_explore`

use nautilus::{estimate_hints, Confidence, ConstraintOp, EstimateConfig, Nautilus, Query};
use nautilus_ga::Direction;
use nautilus_noc::connect::{NocModel, Topology};
use nautilus_synth::{Dataset, MetricExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = NocModel::new(64);
    let dataset = Dataset::characterize(&model, 4)?;
    let area = MetricExpr::metric(dataset.catalog().require("area_mm2")?);
    let power = MetricExpr::metric(dataset.catalog().require("power_mw")?);
    let bw = MetricExpr::metric(dataset.catalog().require("bisection_gbps")?);

    println!("{} 64-endpoint network configurations characterized\n", dataset.len());
    println!("{:<26} {:>12} {:>12} {:>14}", "topology family", "mm^2", "mW", "Gbps");
    for topo in Topology::ALL {
        let (mut n, mut a, mut p, mut b) = (0usize, 0.0, 0.0, 0.0);
        for (g, m) in dataset.iter() {
            if model.topology_of(g) == topo {
                n += 1;
                a += area.eval(m);
                p += power.eval(m);
                b += bw.eval(m);
            }
        }
        let nf = n as f64;
        println!("{:<26} {:>12.2} {:>12.0} {:>14.0}", topo.label(), a / nf, p / nf, b / nf);
    }

    // Constrained query: max bandwidth within 20 mm^2 and 8 W.
    let query = Query::maximize("bandwidth_in_budget", bw.clone())
        .with_constraint(area.clone(), ConstraintOp::Le, 20.0)
        .with_constraint(power.clone(), ConstraintOp::Le, 8_000.0);
    println!("\nquery: {}", query.describe(dataset.catalog()));

    // No expert hints for this composite scenario: estimate them.
    let est = estimate_hints(&model, &query, EstimateConfig::default(), 99)?;
    let outcome =
        Nautilus::new(&model).run_guided(&query, &est.hints, Some(Confidence::STRONG), 99)?;

    let winner = dataset.space().decode(&outcome.best_genome);
    println!(
        "\nNautilus found {:.0} Gbps within budget after {} synthesis jobs \
         ({} spent estimating hints)",
        outcome.best_value,
        outcome.total_evals(),
        est.jobs.jobs,
    );
    println!("  {winner}");

    // Sanity: how good is that against the ground truth?
    let (g_best, truth) = {
        let mut best: Option<(f64, &nautilus_ga::Genome)> = None;
        for (g, m) in dataset.iter() {
            if let Some(v) = query.objective(m) {
                if best.is_none_or(|(b, _)| v > b) {
                    best = Some((v, g));
                }
            }
        }
        let (v, g) = best.expect("some design fits the budget");
        (g, v)
    };
    println!(
        "ground truth within budget: {truth:.0} Gbps at {} (quality {:.1}%)",
        dataset.space().decode(g_best),
        dataset.quality_pct(&bw, Direction::Maximize, outcome.best_value),
    );
    Ok(())
}
