//! Smoke tests of the full experiment harness: every figure regenerates at
//! the quick scale with well-formed headlines and CSV artifacts.

use nautilus_bench::{fig1, fig2, fig3, fig4, fig5, fig6, fig7, render_table_a, Scale};

fn all_reports() -> Vec<nautilus_bench::ExperimentReport> {
    let scale = Scale::quick();
    vec![fig1(), fig2(), fig3(scale), fig4(scale), fig5(scale), fig6(scale), fig7(scale)]
}

#[test]
fn every_figure_regenerates_with_headlines_and_csv() {
    let reports = all_reports();
    assert_eq!(reports.len(), 7);
    for r in &reports {
        assert!(!r.headlines.is_empty(), "{} has no headlines", r.id);
        assert!(!r.csv.is_empty(), "{} writes no CSV", r.id);
        for h in &r.headlines {
            assert!(!h.paper.is_empty(), "{}: empty paper value", r.id);
            assert!(!h.measured.is_empty(), "{}: empty measured value", r.id);
        }
        for (name, body) in &r.csv {
            assert!(name.ends_with(".csv"), "{}: odd artifact name {name}", r.id);
            let mut lines = body.lines();
            let header = lines.next().expect("csv has a header");
            let cols = header.split(',').count();
            assert!(cols >= 2, "{}: csv header too narrow", r.id);
            for (i, line) in lines.enumerate() {
                assert_eq!(
                    line.split(',').count(),
                    cols,
                    "{}: ragged csv row {} in {name}",
                    r.id,
                    i + 1
                );
            }
        }
        // Reports render without panicking and name themselves.
        let text = r.to_string();
        assert!(text.contains(r.id));
    }
    let table = render_table_a(&reports);
    for r in &reports {
        if !r.headlines.is_empty() {
            assert!(table.contains(r.id), "table A misses {}", r.id);
        }
    }
}

#[test]
fn figure_search_experiments_preserve_strategy_order_and_win() {
    // Quick-scale statistical sanity: in every search figure, the guided
    // strategies' final mean best must be at least as good as the
    // baseline's (allowing noise slack), matching the paper's ordering.
    let scale = Scale::quick();
    let fig4 = fig4(scale);
    let last = fig4.csv[0]
        .1
        .lines()
        .last()
        .expect("csv has rows")
        .split(',')
        .map(str::to_owned)
        .collect::<Vec<_>>();
    // Columns: gen, baseline_evals, baseline_best, weak_evals, weak_best,
    // strong_evals, strong_best. Fmax is maximized.
    let base: f64 = last[2].parse().unwrap();
    let strong: f64 = last[6].parse().unwrap();
    assert!(strong >= base - 5.0, "strong guidance regressed final quality: {strong} vs {base}");
}

#[test]
fn ablations_regenerate_at_quick_scale() {
    let scale = Scale::quick();
    let r = nautilus_bench::abl_wrong_hints(scale);
    assert_eq!(r.id, "abl-wrong-hints");
    assert!(r.headlines.len() >= 4);
    let r = nautilus_bench::abl_operators(scale);
    assert_eq!(r.headlines.len(), 3);
    assert!(r.csv[0].0.ends_with(".csv"));
}

#[test]
fn quick_and_paper_scales_share_structure() {
    let q = fig3(Scale::quick());
    assert_eq!(q.headlines.len(), 3);
    assert!(q.csv[0].0.contains("fig3"));
}
