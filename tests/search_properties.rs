//! Property-based tests over the full search stack: for arbitrary seeds,
//! confidences and randomly-constructed (but valid) hint sets, searches
//! must uphold their invariants.

use nautilus::{Confidence, HintSet, Nautilus, Query};
use nautilus_fft::FftModel;
use nautilus_ga::GaSettings;
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, MetricExpr};
use proptest::prelude::*;

fn settings() -> GaSettings {
    GaSettings { generations: 10, ..GaSettings::default() }
}

/// A strategy producing an arbitrary *valid* hint set for the router space.
fn arb_router_hints() -> impl Strategy<Value = HintSet> {
    let space = RouterModel::swept();
    let names: Vec<String> = space.space().params().iter().map(|p| p.name().to_owned()).collect();
    let cards: Vec<usize> = space.space().params().iter().map(|p| p.cardinality()).collect();
    let per_param = (any::<bool>(), 1u8..=100, -1.0f64..=1.0, any::<bool>(), 0.5f64..=1.0);
    (proptest::collection::vec(per_param, names.len()), 0.0f64..=1.0).prop_map(
        move |(entries, conf)| {
            let mut b = HintSet::for_metric("prop");
            for (i, (enabled, imp, bias, use_target, decay)) in entries.iter().enumerate() {
                if !enabled {
                    continue;
                }
                b = b.importance(&names[i], *imp).expect("in range");
                b = b.decay(&names[i], *decay).expect("in range");
                if *use_target {
                    // Target the first domain value (always valid).
                    let space = RouterModel::swept();
                    let id = space.space().id(&names[i]).expect("name valid");
                    let v = space.space().param(id).domain().value(0);
                    b = b.target(&names[i], v).expect("no bias set");
                } else {
                    let _ = cards[i];
                    b = b.bias(&names[i], *bias).expect("in range");
                }
            }
            b.confidence(Confidence::new(conf).expect("in range")).build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid hint set produces a well-formed, deterministic search.
    #[test]
    fn arbitrary_hints_never_break_the_search(hints in arb_router_hints(), seed in any::<u64>()) {
        let model = RouterModel::swept();
        let fmax = MetricExpr::metric(model.catalog().require("fmax").unwrap());
        let query = Query::maximize("fmax", fmax);
        let engine = Nautilus::new(&model).with_settings(settings());
        let a = engine.run_guided(&query, &hints, None, seed).unwrap();
        let b = engine.run_guided(&query, &hints, None, seed).unwrap();
        prop_assert_eq!(&a, &b, "same seed must reproduce");
        prop_assert!(model.space().contains(&a.best_genome));
        prop_assert!(a.best_value.is_finite());
        for w in a.trace.windows(2) {
            prop_assert!(w[1].best_so_far >= w[0].best_so_far - 1e-9);
            prop_assert!(w[1].evals >= w[0].evals);
        }
        prop_assert_eq!(a.trace.last().unwrap().evals, a.jobs.jobs);
    }

    /// Confidence sweeps smoothly between baseline-like and directed
    /// behaviour without breaking anything.
    #[test]
    fn any_confidence_is_legal(conf in 0.0f64..=1.0, seed in any::<u64>()) {
        let model = FftModel::new();
        let luts = MetricExpr::metric(model.catalog().require("luts").unwrap());
        let query = Query::minimize("luts", luts);
        let hints = nautilus_fft::hints::min_luts_hints();
        let outcome = Nautilus::new(&model)
            .with_settings(settings())
            .run_guided(&query, &hints, Some(Confidence::new(conf).unwrap()), seed)
            .unwrap();
        prop_assert!(outcome.best_value > 0.0);
        // The search never reports an infeasible design as the winner.
        prop_assert!(model.evaluate(&outcome.best_genome).is_some());
    }

    /// Batched parallel evaluation is invisible end to end: the full
    /// Nautilus stack (GA + synthesis runner + job accounting) produces
    /// identical outcomes and identical JobStats at any worker count.
    #[test]
    fn eval_worker_count_never_changes_outcomes(seed in any::<u64>(), conf in 0.0f64..=1.0) {
        let model = RouterModel::swept();
        let fmax = MetricExpr::metric(model.catalog().require("fmax").unwrap());
        let query = Query::maximize("fmax", fmax);
        let hints = nautilus_noc::hints::fmax_hints();
        let confidence = Some(Confidence::new(conf).unwrap());
        let serial = Nautilus::new(&model).with_settings(settings());
        let base = serial.run_baseline(&query, seed).unwrap();
        let guided = serial.run_guided(&query, &hints, confidence, seed).unwrap();
        for workers in [0usize, 2, 8] {
            let engine =
                Nautilus::new(&model).with_settings(settings()).with_eval_workers(workers);
            let b = engine.run_baseline(&query, seed).unwrap();
            prop_assert_eq!(&b, &base, "baseline diverged at {} workers", workers);
            prop_assert_eq!(b.jobs, base.jobs);
            let g = engine.run_guided(&query, &hints, confidence, seed).unwrap();
            prop_assert_eq!(&g, &guided, "guided diverged at {} workers", workers);
            prop_assert_eq!(g.jobs, guided.jobs);
        }
    }

    /// The FFT model's feasibility predicate and the search agree: every
    /// design the search ever ranks best is elaborable.
    #[test]
    fn winners_are_always_elaborable(seed in any::<u64>()) {
        let model = FftModel::new();
        let tpl = MetricExpr::metric(model.catalog().require("throughput").unwrap())
            / MetricExpr::metric(model.catalog().require("luts").unwrap());
        let query = Query::maximize("tpl", tpl);
        let outcome = Nautilus::new(&model)
            .with_settings(settings())
            .run_baseline(&query, seed)
            .unwrap();
        let cfg = nautilus_fft::FftConfig::decode(model.space(), &outcome.best_genome);
        prop_assert!(cfg.is_feasible());
    }
}

/// Domain sanity outside proptest: every hint class round-trips its range
/// bounds exactly once (regression guard for the validated newtypes).
#[test]
fn hint_range_bounds() {
    assert!(nautilus::Importance::new(1).is_ok());
    assert!(nautilus::Importance::new(100).is_ok());
    assert!(nautilus::Bias::new(-1.0).is_ok());
    assert!(nautilus::Bias::new(1.0).is_ok());
    assert!(nautilus::Decay::new(0.0).is_ok());
    assert!(nautilus::Decay::new(1.0).is_ok());
    assert!(nautilus::Confidence::new(0.0).is_ok());
    assert!(nautilus::Confidence::new(1.0).is_ok());
}

/// Spot check: targets must be domain members for every shipped space.
#[test]
fn shipped_targets_are_domain_members() {
    let router = RouterModel::swept();
    for hints in [
        nautilus_noc::hints::fmax_hints(),
        nautilus_noc::hints::area_hints(),
        nautilus_noc::hints::area_delay_hints(),
    ] {
        hints.validate(router.space()).unwrap();
    }
    let fft = FftModel::new();
    for hints in [
        nautilus_fft::hints::min_luts_hints(),
        nautilus_fft::hints::throughput_per_lut_hints(),
        nautilus_fft::hints::bias_only_hints(1),
        nautilus_fft::hints::bias_only_hints(2),
    ] {
        hints.validate(fft.space()).unwrap();
    }
}

/// The direction flip is symmetric: maximizing a metric and minimizing its
/// negation must find designs of the same quality.
#[test]
fn direction_symmetry() {
    let model = RouterModel::swept();
    let fmax = MetricExpr::metric(model.catalog().require("fmax").unwrap());
    let maximize = Query::maximize("fmax", fmax.clone());
    let minimize = Query::minimize("neg_fmax", MetricExpr::constant(0.0) - fmax);
    let engine = Nautilus::new(&model).with_settings(settings());
    let a = engine.run_baseline(&maximize, 31).unwrap();
    let b = engine.run_baseline(&minimize, 31).unwrap();
    // Identical seeds and equivalent objectives walk identical paths.
    assert_eq!(a.best_genome, b.best_genome);
    assert!((a.best_value + b.best_value).abs() < 1e-9);
}
