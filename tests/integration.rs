//! Cross-crate integration tests: the full Nautilus pipeline from IP
//! generator models through datasets, hints, engines and baselines.

use nautilus::{
    brute_force, compare, estimate_hints, random_search, CompareConfig, Confidence, EstimateConfig,
    Nautilus, Query, Strategy,
};
use nautilus_fft::FftModel;
use nautilus_ga::{Direction, GaSettings};
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, Dataset, MetricExpr};

fn quick_settings() -> GaSettings {
    GaSettings { generations: 30, ..GaSettings::default() }
}

#[test]
fn guided_router_search_beats_baseline_in_mean_quality_per_job() {
    let model = RouterModel::swept();
    let fmax = MetricExpr::metric(model.catalog().require("fmax").unwrap());
    let query = Query::maximize("fmax", fmax);
    let engine = Nautilus::new(&model).with_settings(quick_settings());
    let hints = nautilus_noc::hints::fmax_hints();

    let mut base_best = 0.0;
    let mut guided_best = 0.0;
    let mut base_jobs = 0.0;
    let mut guided_jobs = 0.0;
    let runs = 8;
    for seed in 0..runs {
        let b = engine.run_baseline(&query, seed).unwrap();
        let g = engine.run_guided(&query, &hints, Some(Confidence::STRONG), seed).unwrap();
        base_best += b.best_value;
        guided_best += g.best_value;
        base_jobs += b.total_evals() as f64;
        guided_jobs += g.total_evals() as f64;
    }
    let n = runs as f64;
    assert!(
        guided_best / n >= base_best / n - 3.0,
        "guided quality regressed: {} vs {}",
        guided_best / n,
        base_best / n
    );
    assert!(
        guided_jobs < base_jobs,
        "guided should synthesize fewer distinct designs: {guided_jobs} vs {base_jobs}"
    );
}

#[test]
fn dataset_replay_equals_direct_model_search() {
    // The paper replays searches against a pre-characterized dataset; that
    // must be indistinguishable from querying the generator directly.
    let model = FftModel::new();
    let dataset = Dataset::characterize(&model, 4).unwrap();
    let replay = dataset.as_model();
    let luts = MetricExpr::metric(model.catalog().require("luts").unwrap());
    let query = Query::minimize("luts", luts);

    let direct = Nautilus::new(&model).with_settings(quick_settings());
    let replayed = Nautilus::new(&replay).with_settings(quick_settings());
    for seed in [1, 7, 42] {
        let a = direct.run_baseline(&query, seed).unwrap();
        let b = replayed.run_baseline(&query, seed).unwrap();
        assert_eq!(a.best_genome, b.best_genome, "seed {seed}");
        assert_eq!(a.best_value, b.best_value, "seed {seed}");
        assert_eq!(a.trace, b.trace, "seed {seed}");
    }
}

#[test]
fn estimation_pipeline_accelerates_fft_search() {
    let model = FftModel::new();
    let luts = MetricExpr::metric(model.catalog().require("luts").unwrap());
    let query = Query::minimize("luts", luts.clone());
    let est = estimate_hints(&model, &query, EstimateConfig::default(), 3).unwrap();
    assert!(est.jobs.jobs > 10, "estimation should probe designs");
    est.hints.validate(model.space()).unwrap();

    // Architecture, transform size and streaming width dominate FFT area
    // (each multiplies the datapath); the estimator must rank one of them
    // as the most important parameter.
    let (top_param, _) = est
        .diagnostics
        .iter()
        .map(|(name, _, imp)| (name.as_str(), *imp))
        .max_by_key(|(_, imp)| *imp)
        .expect("diagnostics not empty");
    assert!(
        ["arch", "transform_size", "streaming_width"].contains(&top_param),
        "unexpected dominant parameter {top_param}"
    );

    let dataset = Dataset::characterize(&model, 4).unwrap();
    let replay = dataset.as_model();
    let cmp = compare(
        &replay,
        &query,
        &[
            Strategy::baseline(),
            Strategy::guided("estimated", est.hints.clone(), Some(Confidence::STRONG)),
        ],
        &CompareConfig { runs: 8, seed: 9, settings: quick_settings(), threads: 4 },
    )
    .unwrap();
    let (_, best) = dataset.best(&luts, Direction::Minimize);
    let base = cmp.result("baseline").unwrap().reach_stats(Direction::Minimize, 1.5 * best);
    let est_r = cmp.result("estimated").unwrap().reach_stats(Direction::Minimize, 1.5 * best);
    assert!(est_r.reached >= base.reached.saturating_sub(1));
    if let (Some(b), Some(e)) = (base.mean_evals, est_r.mean_evals) {
        assert!(e <= b * 1.3, "estimated hints should not slow the search: {e} vs {b}");
    }
}

#[test]
fn brute_force_is_the_quality_ceiling() {
    let model = FftModel::new();
    let dataset = Dataset::characterize(&model, 4).unwrap();
    let luts = MetricExpr::metric(model.catalog().require("luts").unwrap());
    let query = Query::minimize("luts", luts.clone());
    let (genome, value, examined) = brute_force(&dataset, &query).unwrap();
    assert_eq!(examined as usize, dataset.len());
    let (best_g, best_v) = dataset.best(&luts, Direction::Minimize);
    assert_eq!(&genome, best_g);
    assert_eq!(value, best_v);

    // No search strategy may beat the brute-force optimum.
    let outcome = Nautilus::new(&dataset.as_model())
        .with_settings(quick_settings())
        .run_baseline(&query, 5)
        .unwrap();
    assert!(outcome.best_value >= value);
}

#[test]
fn random_search_is_far_costlier_on_rare_goals() {
    let model = FftModel::new();
    let dataset = Dataset::characterize(&model, 4).unwrap();
    let luts = MetricExpr::metric(model.catalog().require("luts").unwrap());
    let (_, best) = dataset.best(&luts, Direction::Minimize);
    // Reaching within 1% of the optimum by uniform sampling costs thousands
    // of draws; the GA (even the baseline) does it in a few hundred.
    let expected = dataset.expected_random_draws(&luts, Direction::Minimize, 1.01 * best).unwrap();
    assert!(expected > 1_000.0, "rare goal not rare: {expected}");

    let query = Query::minimize("luts", luts);
    let outcome = random_search(&dataset.as_model(), &query, 400, 10, 8).unwrap();
    assert_eq!(outcome.jobs.jobs, 400);
    assert!(outcome.best_value >= best);
}

#[test]
fn simulated_eda_time_is_accounted() {
    let model = RouterModel::swept();
    let fmax = MetricExpr::metric(model.catalog().require("fmax").unwrap());
    let query = Query::maximize("fmax", fmax);
    let outcome =
        Nautilus::new(&model).with_settings(quick_settings()).run_baseline(&query, 2).unwrap();
    let hours = outcome.jobs.simulated_tool_time().as_secs_f64() / 3600.0;
    let jobs = outcome.total_evals() as f64;
    // Each synthesis job simulates 5-45 minutes of tool time.
    assert!(hours >= jobs * 5.0 / 60.0);
    assert!(hours <= jobs * 45.0 / 60.0);
}

#[test]
fn all_shipped_hint_books_resolve_and_run() {
    let router = RouterModel::swept();
    let fft = FftModel::new();
    let settings = GaSettings { generations: 5, ..GaSettings::default() };

    let fmax = MetricExpr::metric(router.catalog().require("fmax").unwrap());
    let adp = MetricExpr::area_delay(
        router.catalog().require("fmax").unwrap(),
        router.catalog().require("luts").unwrap(),
    );
    let r_engine = Nautilus::new(&router).with_settings(settings);
    r_engine
        .run_guided(&Query::maximize("fmax", fmax), &nautilus_noc::hints::fmax_hints(), None, 0)
        .unwrap();
    r_engine
        .run_guided(
            &Query::minimize("area_delay", adp),
            &nautilus_noc::hints::area_delay_hints(),
            Some(Confidence::WEAK),
            0,
        )
        .unwrap();

    let luts = MetricExpr::metric(fft.catalog().require("luts").unwrap());
    let tpl = MetricExpr::metric(fft.catalog().require("throughput").unwrap())
        / MetricExpr::metric(fft.catalog().require("luts").unwrap());
    let f_engine = Nautilus::new(&fft).with_settings(settings);
    f_engine
        .run_guided(
            &Query::minimize("luts", luts.clone()),
            &nautilus_fft::hints::min_luts_hints(),
            None,
            0,
        )
        .unwrap();
    f_engine
        .run_guided(
            &Query::maximize("tpl", tpl),
            &nautilus_fft::hints::throughput_per_lut_hints(),
            Some(Confidence::STRONG),
            0,
        )
        .unwrap();
    for count in [1, 2] {
        f_engine
            .run_guided(
                &Query::minimize("luts", luts.clone()),
                &nautilus_fft::hints::bias_only_hints(count),
                None,
                0,
            )
            .unwrap();
    }
}

#[test]
fn telemetry_jsonl_stream_and_report_reconcile_with_job_stats() {
    use nautilus::obs::json::is_valid_json;
    use nautilus::JsonlSink;

    let model = RouterModel::swept();
    let fmax = MetricExpr::metric(model.catalog().require("fmax").unwrap());
    let query = Query::maximize("fmax", fmax);
    let hints = nautilus_noc::hints::fmax_hints();

    let path = std::env::temp_dir().join("nautilus-telemetry-integration.events.jsonl");
    let sink = JsonlSink::create(&path).unwrap();
    let engine = Nautilus::new(&model).with_settings(quick_settings()).with_observer(&sink);
    let (outcome, report) =
        engine.run_guided_reported(&query, &hints, Some(Confidence::STRONG), 4).unwrap();
    sink.flush().unwrap();
    assert_eq!(sink.write_errors(), 0);

    // Every streamed line is a standalone JSON object, bracketed by
    // run_start/run_end.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "event stream not empty");
    for line in &lines {
        assert!(is_valid_json(line), "invalid JSONL line: {line}");
    }
    assert!(lines[0].contains("\"type\":\"run_start\""));
    assert!(lines.last().unwrap().contains("\"type\":\"run_end\""));

    // The aggregated report reconciles with the runner's own accounting:
    // feasible + infeasible + cached events == jobs + infeasible +
    // cache_hits == total lookups.
    assert_eq!(report.evals.feasible, outcome.jobs.jobs);
    assert_eq!(report.evals.infeasible, outcome.jobs.infeasible);
    assert_eq!(report.evals.cached, outcome.jobs.cache_hits);
    assert_eq!(report.evals.total_lookups(), outcome.jobs.total_lookups());
    assert_eq!(report.evals.tool_secs, outcome.jobs.simulated_tool_secs);
    let eval_lines =
        lines.iter().filter(|l| l.contains("\"type\":\"eval_completed\"")).count() as u64;
    assert_eq!(eval_lines, outcome.jobs.total_lookups());

    // The summary report itself is valid JSON and matches the outcome.
    assert!(is_valid_json(&report.to_json()));
    assert_eq!(report.strategy, outcome.strategy);
    assert_eq!(report.best_value, outcome.best_value);
    assert_eq!(report.distinct_evals, outcome.jobs.jobs);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn full_42_parameter_space_is_searchable_directly() {
    // The paper's motivation: billions of design points, no dataset
    // possible. Nautilus searches the generator directly.
    let model = RouterModel::full();
    assert!(model.space().cardinality() > 1_000_000_000u128);
    let fmax = MetricExpr::metric(model.catalog().require("fmax").unwrap());
    let query = Query::maximize("fmax", fmax);
    let outcome = Nautilus::new(&model)
        .with_settings(GaSettings { generations: 20, ..GaSettings::default() })
        .run_baseline(&query, 13)
        .unwrap();
    assert!(outcome.best_value > 100.0);
    assert!(model.space().contains(&outcome.best_genome));
}
