//! Workspace chaos acceptance tests: the full stack (dataset → runner →
//! fault injection → retries → GA engine → telemetry report) under
//! deterministic fault storms.
//!
//! The headline property (`chaos_acceptance_*`): at a 10% injected
//! transient rate with retries enabled, a guided run over the 27,648-point
//! router dataset (a) completes without panicking, (b) is bit-for-bit
//! identical at `eval_workers` ∈ {1, 2, 8} including every failure
//! counter, (c) reconciles the engine's fault ledger against both the
//! event-stream report and the runner's job accounting, and (d) still
//! beats the unguided baseline.

use nautilus::{
    BreakerPolicy, Confidence, FaultPlan, Nautilus, Query, RetryPolicy, SupervisePolicy,
};
use nautilus_bench::data::router_dataset;
use nautilus_noc::hints::fmax_hints;
use nautilus_synth::{Dataset, MetricExpr};

fn fmax_query(d: &Dataset) -> Query {
    Query::maximize("fmax", MetricExpr::metric(d.catalog().require("fmax").expect("router metric")))
}

#[test]
fn chaos_acceptance_ten_percent_transient_storm() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let hints = fmax_hints();
    let seed = 1u64;
    let plan = FaultPlan::new(seed).with_transient_rate(0.10);

    // (a) The storm run completes without panicking and finds a real best.
    let engine =
        Nautilus::new(&model).with_fault_plan(plan).with_retry_policy(RetryPolicy::default());
    let (guided, report) =
        engine.run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed).unwrap();
    assert!(guided.best_value.is_finite());
    assert!(guided.faults.evals_failed > 0, "a 10% storm must record failures");
    assert!(guided.faults.retries > 0, "transient failures must be retried");
    assert!(guided.faults.retries_recovered > 0, "retries must recover most transients");

    // (b) Bit-for-bit identical outcomes and failure counters at every
    // worker count, fault handling included.
    for workers in [2usize, 8] {
        let (w_outcome, w_report) = Nautilus::new(&model)
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::default())
            .with_eval_workers(workers)
            .run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
            .unwrap();
        assert_eq!(w_outcome, guided, "outcome diverged at {workers} workers");
        assert_eq!(
            w_report.faults.to_json(),
            report.faults.to_json(),
            "report fault block diverged at {workers} workers"
        );
        assert_eq!(w_report.evals.total_lookups(), report.evals.total_lookups());
    }

    // (c) Exact reconciliation: the engine's ledger balances, the report
    // rebuilt from the event stream agrees with it, and the report's eval
    // tally agrees with the runner's job accounting.
    assert!(guided.faults.reconciles(), "evals_failed must equal recovered + quarantined");
    assert_eq!(report.faults.evals_failed(), guided.faults.evals_failed);
    assert_eq!(report.faults.retries, guided.faults.retries);
    assert_eq!(report.faults.retries_recovered, guided.faults.retries_recovered);
    assert_eq!(report.faults.quarantined, guided.faults.quarantined);
    assert_eq!(report.faults.total_failed_attempts(), guided.faults.total_failed_attempts());
    assert_eq!(report.evals.total_lookups(), guided.jobs.total_lookups());

    // (d) Guidance still pays for itself under the same storm.
    let baseline = engine.run_baseline(&query, seed).unwrap();
    assert!(baseline.faults.reconciles());
    assert!(
        guided.best_value >= baseline.best_value,
        "guided ({}) fell behind baseline ({}) under faults",
        guided.best_value,
        baseline.best_value
    );
}

#[test]
#[ignore = "heavy chaos storm over the full fault-kind matrix; scripts/check.sh runs it via --include-ignored"]
fn chaos_storm_all_fault_kinds_survive_and_reconcile() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::new(seed)
            .with_transient_rate(0.20)
            .with_timeout_rate(0.05)
            .with_corrupt_rate(0.05)
            .with_persistent_rate(0.02);
        let serial = Nautilus::new(&model)
            .with_fault_plan(plan)
            .run_baseline(&query, seed)
            .unwrap_or_else(|e| panic!("seed {seed}: storm run must degrade gracefully: {e}"));
        assert!(serial.best_value.is_finite());
        assert!(serial.faults.reconciles(), "seed {seed}: ledger out of balance");
        assert!(serial.faults.quarantined > 0, "seed {seed}: persistent faults must quarantine");
        let parallel = Nautilus::new(&model)
            .with_fault_plan(plan)
            .with_eval_workers(8)
            .run_baseline(&query, seed)
            .unwrap();
        assert_eq!(parallel, serial, "seed {seed}: storm run diverged under 8 workers");
    }
}

#[test]
#[ignore = "heavy supervised hang storm over the full router dataset; scripts/check.sh runs it via --include-ignored"]
fn hang_storm_acceptance_supervised_search_completes_and_reconciles() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let hints = fmax_hints();
    let seed = 3u64;
    // 10% of attempts hang on top of the standard 10% transient storm;
    // only the watchdog keeps this run from wedging a worker forever.
    let plan = FaultPlan::new(seed).with_transient_rate(0.10).with_hang_rate(0.10);
    let supervised = || {
        Nautilus::new(&model)
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::default())
            .with_supervision(SupervisePolicy::default())
    };

    // (a) The storm run completes with no wedged worker and a real best.
    let (guided, report) =
        supervised().run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed).unwrap();
    assert!(guided.best_value.is_finite());
    let h = guided.health;
    assert!(h.watchdog_fired > 0, "hangs must fire the watchdog: {h:?}");
    assert!(h.reconciles(), "hedge identity broken: {h:?}");
    assert!(guided.faults.reconciles());

    // (b) Bit-for-bit identical outcome — health counters included — and
    // report health block at every worker count.
    for workers in [2usize, 8] {
        let (w_outcome, w_report) = supervised()
            .with_eval_workers(workers)
            .run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
            .unwrap();
        assert_eq!(w_outcome, guided, "supervised outcome diverged at {workers} workers");
        assert_eq!(
            w_report.health.to_json(),
            report.health.to_json(),
            "report health block diverged at {workers} workers"
        );
    }

    // (c) The report's health tally — rebuilt from the event stream alone
    // — agrees with the engine's ledger, and eval accounting still
    // reconciles with the runner's job stats under hangs and hedges.
    assert_eq!(report.health.watchdog_fired, h.watchdog_fired);
    assert_eq!(report.health.hedges_issued, h.hedges_issued);
    assert_eq!(report.health.hedges_won, h.hedges_won);
    assert_eq!(report.health.hedges_wasted, h.hedges_wasted);
    assert_eq!(report.health.evals_shed, h.evals_shed);
    assert!(report.health.hedges_reconcile());
    assert_eq!(report.evals.total_lookups(), guided.jobs.total_lookups());

    // (d) Guidance still pays for itself under the hang storm.
    let baseline = supervised().run_baseline(&query, seed).unwrap();
    assert!(baseline.health.reconciles());
    assert!(
        guided.best_value >= baseline.best_value,
        "guided ({}) fell behind baseline ({}) under the hang storm",
        guided.best_value,
        baseline.best_value
    );
}

#[test]
#[ignore = "heavy circuit-breaker storm over the full router dataset; scripts/check.sh runs it via --include-ignored"]
fn circuit_breaker_acceptance_trips_sheds_and_recovers() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let seed = 2u64;
    // A transient-heavy storm: every failed attempt normally burns retry
    // budget, so shed evaluations are directly visible as attempts saved.
    let plan = FaultPlan::new(seed).with_transient_rate(0.5);
    let breaker = BreakerPolicy {
        window: 8,
        min_samples: 8,
        trip_failure_rate: 0.5,
        cooldown_sheds: 4,
        probe_quota: 2,
        probes_to_close: 2,
    };
    let run_with = |policy: SupervisePolicy, workers: usize| {
        Nautilus::new(&model)
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::default())
            .with_supervision(policy)
            .with_eval_workers(workers)
            .run_baseline(&query, seed)
            .unwrap()
    };

    let strict = SupervisePolicy { breaker, ..SupervisePolicy::default() };
    let run = run_with(strict, 1);
    let h = run.health;
    assert!(run.best_value.is_finite());
    assert!(h.breaker_trips > 0, "storm never tripped the breaker: {h:?}");
    assert!(h.evals_shed > 0, "open breaker never shed into cache-only mode: {h:?}");
    assert!(h.breaker_recoveries > 0, "half-open probes never recovered: {h:?}");
    assert!(h.breaker_probes > 0);
    assert!(run.faults.reconciles());

    // Shedding must not burn retry budget: against a lenient breaker that
    // (practically) never trips, the strict run spends strictly fewer
    // supervised attempts and retries on the same storm.
    let lenient = SupervisePolicy {
        breaker: BreakerPolicy { window: 64, min_samples: 64, trip_failure_rate: 1.0, ..breaker },
        ..SupervisePolicy::default()
    };
    let open_loop = run_with(lenient, 1);
    assert_eq!(open_loop.health.breaker_trips, 0);
    assert!(
        h.attempts_supervised < open_loop.health.attempts_supervised,
        "shedding saved no attempts: strict {h:?} vs lenient {:?}",
        open_loop.health
    );

    // Breaker decisions are part of the deterministic merge path: the
    // storm run is bit-for-bit identical under parallel evaluation.
    for workers in [2usize, 8] {
        assert_eq!(run_with(strict, workers), run, "breaker run diverged at {workers} workers");
    }
}

#[test]
#[ignore = "kill-and-resume determinism sweep; scripts/check.sh runs it via --include-ignored"]
fn chaos_interrupted_and_resumed_digests_match_straight_runs() {
    // A chaos search interrupted by a generation budget with durable
    // checkpoints, then resumed from disk by a fresh engine, must produce
    // the same digest as an uninterrupted run — under faults, at both a
    // serial and a parallel worker count.
    for seed in [1u64, 2, 3] {
        for workers in [1usize, 8] {
            let dir = std::env::temp_dir()
                .join(format!("nautilus-chaos-resume-{seed}-{workers}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let resumed = nautilus_bench::chaos_resume_digest(seed, workers, &dir, 2);
            let straight = nautilus_bench::chaos_digest(seed, workers);
            assert_eq!(resumed, straight, "seed {seed} workers {workers}: resumed digest diverged");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
