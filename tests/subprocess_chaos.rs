//! Out-of-process chaos acceptance tests: the full stack (dataset →
//! subprocess evaluator → `mock-synth` children over the `NAUTPROC`
//! protocol → retries/supervision → GA engine → telemetry report) under
//! real process failure.
//!
//! The headline property: a search routed through
//! [`nautilus::SubprocessEvaluator`] produces a **byte-identical
//! outcome, run report (modulo the child-lifecycle tally), and
//! normalized event stream** to the same search run in-process — at
//! `eval_workers` ∈ {1, 2, 8}, and not only on sunny days: also while
//! children are crashing every K requests, dying mid-storm, hanging
//! past the I/O deadline, or replying with garbage bytes. Kills and
//! respawns must reconcile exactly in the report's schema-7
//! `subprocess` block.

use std::collections::BTreeSet;
use std::path::Path;

use nautilus::{
    Confidence, InMemorySink, Nautilus, NautilusError, Query, RetryPolicy, RunBudget, RunReport,
    SearchEvent, SearchOutcome, SubprocessConfig, SupervisePolicy,
};
use nautilus_bench::data::router_dataset;
use nautilus_bench::subprocess::{chaos_tool_config, router_tool_config, storm_tool_config};
use nautilus_ga::Genome;
use nautilus_noc::hints::fmax_hints;
use nautilus_synth::{Dataset, FaultPlan, MetricExpr};

/// The committed mock tool, built by Cargo alongside this test.
fn tool() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_mock-synth"))
}

fn fmax_query(d: &Dataset) -> Query {
    Query::maximize("fmax", MetricExpr::metric(d.catalog().require("fmax").expect("router metric")))
}

/// The logical-stream contract: drop batching/contention/child-lifecycle
/// artifacts (all legitimately schedule- or boundary-dependent), zero the
/// wall-clock payloads, keep everything else in order.
fn normalize(events: Vec<SearchEvent>) -> Vec<SearchEvent> {
    events
        .into_iter()
        .filter(|e| {
            !matches!(
                e,
                SearchEvent::EvalBatch { .. }
                    | SearchEvent::CacheShardContended { .. }
                    | SearchEvent::ChildSpawned { .. }
                    | SearchEvent::ChildKilled { .. }
                    | SearchEvent::ChildRespawned { .. }
                    | SearchEvent::ChildProtocolError { .. }
            )
        })
        .map(|e| match e {
            SearchEvent::SpanEnd { name, .. } => SearchEvent::SpanEnd { name, nanos: 0 },
            SearchEvent::RunEnd { best_value, distinct_evals, .. } => {
                SearchEvent::RunEnd { best_value, distinct_evals, wall_nanos: 0 }
            }
            other => other,
        })
        .collect()
}

/// Zeroes every occurrence of a `"key":<digits>` member in place.
fn zero_field(json: &mut String, key: &str) {
    let needle = format!("\"{key}\":");
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let start = from + pos + needle.len();
        let end =
            json[start..].find(|c: char| !c.is_ascii_digit()).map_or(json.len(), |off| start + off);
        json.replace_range(start..end, "0");
        from = start;
    }
}

/// The logical-report contract, mirroring [`normalize`]: splice out the
/// `subprocess` tally (the child lifecycle is the *only* block allowed to
/// differ across the process boundary) and zero the wall-clock span
/// payloads plus the batching/contention counters (the report's analog of
/// the filtered `eval_batch` / shard-contention events — all legitimately
/// worker-dependent); everything else must match byte for byte.
fn normalized_report(report: &RunReport) -> String {
    let json = report.to_json();
    let start = json.find("\"subprocess\":{").expect("schema-7 report has a subprocess block");
    let end = start + json[start..].find('}').expect("tally closes") + 1;
    let mut out = format!("{}{}", &json[..start], &json[end..]);
    for key in [
        "wall_nanos",
        "total_nanos",
        "max_nanos",
        "eval_batches",
        "batched_evals",
        "max_batch",
        "shard_contentions",
    ] {
        zero_field(&mut out, key);
    }
    out
}

fn request_log(log: &Path) -> BTreeSet<(u64, u32)> {
    std::fs::read_to_string(log)
        .expect("mock-synth request log readable")
        .lines()
        .map(|line| {
            let mut parts = line.split_whitespace();
            let hash = parts.next().and_then(|h| h.parse().ok()).expect("hash field");
            let attempt = parts.next().and_then(|a| a.parse().ok()).expect("attempt field");
            (hash, attempt)
        })
        .collect()
}

#[test]
fn clean_subprocess_searches_match_in_process_at_every_worker_count() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let hints = fmax_hints();
    let seed = 5u64;

    // In-process reference, with the event stream and report captured.
    let sink = InMemorySink::new();
    let (reference, ref_report) = Nautilus::new(&model)
        .with_observer(&sink)
        .run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
        .unwrap();
    let ref_stream = normalize(sink.events());
    let ref_report_json = normalized_report(&ref_report);
    assert_eq!(
        ref_report.subprocess,
        nautilus::SubprocessTally::default(),
        "an in-process run must report an empty subprocess block"
    );

    for workers in [1usize, 2, 8] {
        let sink = InMemorySink::new();
        let (outcome, report): (SearchOutcome, RunReport) = Nautilus::new(&model)
            .with_observer(&sink)
            .with_eval_workers(workers)
            .with_subprocess_evaluator(router_tool_config(tool()))
            .run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
            .unwrap();
        assert_eq!(outcome, reference, "subprocess outcome diverged at {workers} workers");
        assert_eq!(
            normalized_report(&report),
            ref_report_json,
            "subprocess report diverged at {workers} workers"
        );
        assert_eq!(
            normalize(sink.events()),
            ref_stream,
            "subprocess event stream diverged at {workers} workers"
        );
        let s = &report.subprocess;
        assert!(s.spawned >= 1, "children must be spawned: {s:?}");
        assert_eq!(s.killed, 0, "a clean run kills no children: {s:?}");
        assert!(s.reconciles(), "kill/respawn ledger out of balance: {s:?}");
    }
}

#[test]
fn children_crashing_every_k_requests_never_change_the_answer() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let seed = 7u64;

    let reference = Nautilus::new(&model).run_baseline(&query, seed).unwrap();

    // Every child leaks until it dies on its 120th request — without
    // replying, the messiest exit there is. The transparent transport
    // retry must absorb each death invisibly.
    let config = SubprocessConfig::new(tool())
        .args(["--model", "router", "--crash-after", "120"])
        .with_pool_size(1);
    let (outcome, report) = Nautilus::new(&model)
        .with_subprocess_evaluator(config)
        .run_baseline_reported(&query, seed)
        .unwrap();
    assert_eq!(outcome, reference, "crash-storm outcome diverged from in-process");
    assert_eq!(outcome.faults.evals_failed, 0, "transport deaths must stay invisible to retries");
    let s = &report.subprocess;
    assert!(s.killed >= 1, "a 120-request crash cadence must kill at least once: {s:?}");
    assert_eq!(s.killed, s.respawned, "every kill must respawn: {s:?}");
    assert!(s.reconciles());
}

#[test]
fn garbage_replies_are_rejected_recovered_and_deterministic() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let seed = 9u64;

    // 3% of replies are garbage bursts: undecodable bytes instead of a
    // frame. Each must surface as a corrupted-eval failure, kill the
    // child, and be recovered by a retry (the garbage draw mixes the
    // attempt, mirroring retryable fault kinds).
    let run = |workers: usize| {
        let config = SubprocessConfig::new(tool())
            .args(["--model", "router", "--garbage-rate", "0.03", "--garbage-seed", "9"])
            .with_pool_size(2);
        Nautilus::new(&model)
            .with_retry_policy(RetryPolicy::default())
            .with_eval_workers(workers)
            .with_subprocess_evaluator(config)
            .run_baseline_reported(&query, seed)
            .unwrap()
    };
    let (outcome, report) = run(1);
    assert!(outcome.best_value.is_finite());
    assert!(outcome.faults.evals_failed > 0, "a 3% garbage rate must record failures");
    assert!(outcome.faults.reconciles());
    let s = &report.subprocess;
    assert!(s.protocol_errors >= 1, "garbage must be counted as protocol errors: {s:?}");
    assert_eq!(s.killed, s.respawned, "every garbage kill must respawn: {s:?}");
    assert_eq!(report.faults.evals_failed(), outcome.faults.evals_failed);

    let (again, _) = run(2);
    assert_eq!(again, outcome, "garbage recovery diverged across worker counts");
}

#[test]
fn malformed_handshakes_fail_the_run_cleanly() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);

    // A tool that exits after half a magic number: a truncated frame.
    let truncated = SubprocessConfig::new("/bin/sh").args(["-c", "printf NAUT"]);
    let err = Nautilus::new(&model)
        .with_subprocess_evaluator(truncated)
        .run_baseline(&query, 1)
        .unwrap_err();
    assert!(matches!(err, NautilusError::Subprocess(_)), "unexpected error: {err}");

    // A tool that greets with garbage: a clean exit, wrong protocol.
    let garbage = SubprocessConfig::new("/bin/sh").args(["-c", "echo not-a-nautproc-tool"]);
    let err = Nautilus::new(&model)
        .with_subprocess_evaluator(garbage)
        .run_baseline(&query, 1)
        .unwrap_err();
    assert!(matches!(err, NautilusError::Subprocess(_)), "unexpected error: {err}");

    // A tool that never starts at all.
    let missing = SubprocessConfig::new("/nonexistent/mock-synth");
    let err = Nautilus::new(&model)
        .with_subprocess_evaluator(missing)
        .run_baseline(&query, 1)
        .unwrap_err();
    assert!(err.to_string().contains("failed to spawn"), "unexpected error: {err}");
}

#[test]
#[ignore = "heavy subprocess transient storm with real child deaths; scripts/check.sh runs it via --include-ignored"]
fn transient_storm_of_real_child_deaths_matches_in_process_chaos() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let hints = fmax_hints();
    let seed = 3u64;

    // In-process twin: the standard 10% transient chaos plan.
    let plan = FaultPlan::new(seed).with_transient_rate(0.10);
    let sink = InMemorySink::new();
    let (reference, ref_report) = Nautilus::new(&model)
        .with_observer(&sink)
        .with_fault_plan(plan)
        .with_retry_policy(RetryPolicy::default())
        .run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
        .unwrap();
    let ref_stream = normalize(sink.events());
    assert!(reference.faults.evals_failed > 0, "a 10% storm must record failures");

    // Subprocess twin: the same seeded plan decided child-side, every
    // injected transient a real process death (dying gasp, nonzero exit),
    // the parent respawning as it retries. Workers=2 also crosses the
    // parallel merge path.
    let sink = InMemorySink::new();
    let (outcome, report) = Nautilus::new(&model)
        .with_observer(&sink)
        .with_retry_policy(RetryPolicy::default())
        .with_eval_workers(2)
        .with_subprocess_evaluator(chaos_tool_config(tool(), seed))
        .run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
        .unwrap();
    assert_eq!(outcome, reference, "subprocess chaos outcome diverged from in-process");
    assert_eq!(
        normalized_report(&report),
        normalized_report(&ref_report),
        "subprocess chaos report diverged from in-process"
    );
    assert_eq!(normalize(sink.events()), ref_stream, "subprocess chaos event stream diverged");
    let s = &report.subprocess;
    assert!(s.killed >= 1, "dying-gasp transients must kill children: {s:?}");
    assert_eq!(s.killed, s.respawned, "every death must respawn: {s:?}");
    assert!(s.reconciles());
}

#[test]
#[ignore = "heavy supervised mixed storm (crashes + real hangs past the I/O deadline); scripts/check.sh runs it via --include-ignored"]
fn mixed_storm_with_real_hangs_matches_in_process_and_guided_still_wins() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let hints = fmax_hints();
    let seed = 3u64;

    // In-process twin of the supervised hang storm (10% transients + 10%
    // hangs under the default watchdog/hedging/breaker policy).
    let plan = FaultPlan::new(seed).with_transient_rate(0.10).with_hang_rate(0.10);
    let in_process = |guided: bool| {
        let engine = Nautilus::new(&model)
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::default())
            .with_supervision(SupervisePolicy::default());
        if guided {
            engine.run_guided(&query, &hints, Some(Confidence::STRONG), seed)
        } else {
            engine.run_baseline(&query, seed)
        }
        .unwrap()
    };
    let subprocess = |guided: bool| {
        let engine = Nautilus::new(&model)
            .with_retry_policy(RetryPolicy::default())
            .with_supervision(SupervisePolicy::default())
            .with_eval_workers(2)
            .with_subprocess_evaluator(storm_tool_config(tool(), seed));
        if guided {
            engine.run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
        } else {
            engine.run_baseline_reported(&query, seed)
        }
        .unwrap()
    };

    let ref_baseline = in_process(false);
    let ref_guided = in_process(true);
    let (sub_baseline, baseline_report) = subprocess(false);
    let (sub_guided, guided_report) = subprocess(true);

    // Byte-identical across the boundary, health counters included: every
    // real hang was abandoned at the I/O deadline and classified exactly
    // like its virtual in-process twin.
    assert_eq!(sub_baseline, ref_baseline, "storm baseline diverged across the boundary");
    assert_eq!(sub_guided, ref_guided, "storm guided run diverged across the boundary");
    for (outcome, report) in [(&sub_baseline, &baseline_report), (&sub_guided, &guided_report)] {
        assert!(outcome.health.watchdog_fired > 0, "hangs must fire the watchdog");
        assert!(outcome.health.reconciles(), "hedge identity broken: {:?}", outcome.health);
        assert!(outcome.faults.reconciles());
        let s = &report.subprocess;
        assert!(s.killed >= 1, "hanging children must be killed: {s:?}");
        assert_eq!(s.killed, s.respawned, "every kill must respawn: {s:?}");
        assert!(s.reconciles());
    }

    // Guidance still pays for itself on the 27,648-point router dataset
    // even when the synthesis tool is crashing and hanging under it.
    assert!(
        sub_guided.best_value >= sub_baseline.best_value,
        "guided ({}) fell behind baseline ({}) under the subprocess storm",
        sub_guided.best_value,
        sub_baseline.best_value
    );
}

#[test]
#[ignore = "heavy hang-victim quarantine run; scripts/check.sh runs it via --include-ignored"]
fn a_genome_that_always_hangs_is_quarantined_and_the_search_completes() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let seed = 5u64;

    // Pick a genome the clean run certainly evaluates: its winner.
    let clean = Nautilus::new(&model).run_baseline(&query, seed).unwrap();
    let genes: Vec<u32> = clean
        .best_genome
        .to_string()
        .trim_matches(['[', ']'])
        .split(',')
        .map(|g| g.parse().expect("genome display is comma-separated genes"))
        .collect();
    let victim = Genome::from_genes(genes);

    // The child goes silent forever on exactly that genome; the parent's
    // I/O deadline is the only way out. Retries hang again (the fate is
    // keyed on the genome), so the victim must end up quarantined.
    let config = SubprocessConfig::new(tool())
        .args(["--model", "router", "--hang-on-hash"])
        .arg(victim.stable_hash(0).to_string())
        .with_pool_size(1)
        .with_io_timeout(std::time::Duration::from_millis(200));
    let (outcome, report) = Nautilus::new(&model)
        .with_retry_policy(RetryPolicy::default())
        .with_supervision(SupervisePolicy::default())
        .with_subprocess_evaluator(config)
        .run_baseline_reported(&query, seed)
        .unwrap();

    assert!(outcome.best_value.is_finite(), "the search must survive its best genome hanging");
    assert_ne!(
        outcome.best_genome, clean.best_genome,
        "the hanging winner cannot win: it never returns a result"
    );
    assert!(outcome.health.watchdog_fired > 0, "hangs must fire the watchdog");
    assert!(outcome.faults.quarantined >= 1, "the hanging genome must be quarantined");
    assert!(outcome.faults.reconciles());
    let s = &report.subprocess;
    assert!(s.killed >= 1, "each hang must kill the wedged child: {s:?}");
    assert_eq!(s.killed, s.respawned);
    assert!(s.reconciles());
}

#[test]
#[ignore = "heavy checkpoint-resume-under-faults sweep; scripts/check.sh runs it via --include-ignored"]
fn quarantine_rides_checkpoints_across_the_subprocess_boundary() {
    let d = router_dataset();
    let model = d.as_model();
    let query = fmax_query(d);
    let seed = 11u64;
    let scratch =
        std::env::temp_dir().join(format!("nautilus-subproc-resume-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    // A storm with teeth: 10% transients plus 5% *persistent* rejections,
    // so the interrupted run quarantines genomes before the cut. The
    // child logs every (genome hash, attempt) it is asked to evaluate.
    let config = |log: &Path| {
        SubprocessConfig::new(tool())
            .args(["--model", "router", "--plan-seed"])
            .arg(seed.to_string())
            .args(["--transient-rate", "0.10", "--persistent-rate", "0.05", "--log"])
            .arg(log.display().to_string())
            .with_pool_size(1)
    };
    let engine = |log: &Path| {
        Nautilus::new(&model)
            .with_retry_policy(RetryPolicy::default())
            .with_subprocess_evaluator(config(log))
    };

    let straight_log = scratch.join("straight.log");
    let straight = engine(&straight_log).run_baseline(&query, seed).unwrap();
    assert!(straight.faults.quarantined > 0, "a 5% persistent rate must quarantine");

    let cut_log = scratch.join("cut.log");
    let ckpt = scratch.join("ckpt");
    let cut = engine(&cut_log)
        .with_checkpoints(&ckpt)
        .with_budget(RunBudget::new().with_max_generations(2))
        .run_baseline(&query, seed)
        .unwrap();
    assert!(cut.stop.is_interrupted(), "a 2-generation budget must interrupt the run");

    let resume_log = scratch.join("resume.log");
    let resumed = engine(&resume_log).resume_from(&query, None, &ckpt).unwrap();
    assert_eq!(resumed, straight, "resumed subprocess run diverged from the straight run");

    // The sharp edge: quarantine and cache state rode the checkpoint, so
    // the resumed children are asked for *exactly* the requests the
    // straight run makes after generation 2 — no quarantined genome is
    // ever re-synthesized, no cached genome re-evaluated.
    let straight_reqs = request_log(&straight_log);
    let cut_reqs = request_log(&cut_log);
    let resume_reqs = request_log(&resume_log);
    assert!(
        cut_reqs.is_disjoint(&resume_reqs),
        "resume re-requested work the checkpoint already recorded"
    );
    let mut union = cut_reqs;
    union.extend(&resume_reqs);
    assert_eq!(
        union, straight_reqs,
        "interrupt + resume must request exactly the straight run's evaluations"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
