//! Supervised evaluation: watchdog-enforced deadlines, straggler hedging,
//! and a circuit breaker with cache-only degraded mode.
//!
//! The retry layer in [`crate::fallible`] can only *observe* a slow
//! attempt after it returns; a genuinely hung backend wedges an eval
//! worker forever. This module adds preemptive supervision around the
//! engine's batched evaluation path:
//!
//! * **Watchdog** — every attempt carries a hard deadline
//!   ([`WatchdogPolicy::deadline_ms`]). An attempt that hangs, or
//!   finishes only after the deadline, is abandoned and surfaced as
//!   [`EvalFailure::Timeout`], feeding the existing retry/quarantine
//!   machinery. A late result is *discarded*, never cached.
//! * **Straggler hedging** — once a batch is mostly complete
//!   ([`HedgePolicy::completion_threshold`]) and an attempt has run
//!   longer than [`HedgePolicy::straggler_multiplier`] × the batch's
//!   running median, a hedged duplicate is dispatched and the first
//!   completion wins. The loser is charged to `hedges_wasted`, keeping
//!   the identity `hedges_issued == hedges_won + hedges_wasted`.
//! * **Circuit breaker** — a Closed→Open→HalfOpen health state machine
//!   over the backend. A sustained failure rate trips it open; while
//!   open the engine degrades to cache-only operation (misses are shed:
//!   quarantined without consuming retry budget). Half-open probes
//!   recover the breaker once the backend heals.
//!
//! # Determinism contract
//!
//! Supervision decisions never consult a wall clock. Each attempt
//! reports a deterministic *virtual* duration
//! ([`AttemptOutcome::Finished`]`::cost_ms`, derived by the fault plan
//! from the genome hash), or hangs symbolically
//! ([`AttemptOutcome::Hang`]). Watchdog conversion, hedge triggering
//! (first-completion-wins is decided purely by virtual completion
//! times) and breaker transitions (counter-driven, never clock-driven)
//! are therefore bit-for-bit identical at every `eval_workers` setting.
//! For genuinely hanging production backends, [`ReclaimableWorker`]
//! provides the real-thread watchdog with the same
//! abandoned-result guarantee via generation-stamped completion tokens.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::Duration;

use nautilus_obs::{HealthState, SearchEvent, SearchObserver, WireError, WireReader, WireWriter};

use crate::fallible::{retry_backoff, EvalFailure, EvalRecord, FallibleEvaluator, RetryPolicy};
use crate::genome::Genome;

/// Bit OR-ed into the attempt number of a hedged duplicate, so
/// deterministic fault injectors draw a *different* fate for the hedge
/// than for its straggling primary.
pub const HEDGE_ATTEMPT_BIT: u32 = 1 << 30;

/// The outcome of one supervised evaluation attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt produced a result after `cost_ms` of (virtual or
    /// measured) wall-clock work.
    Finished {
        /// The attempt's result, in [`FallibleEvaluator`] terms.
        result: Result<Option<f64>, EvalFailure>,
        /// How long the attempt ran, in milliseconds. Durations above
        /// the watchdog deadline mean the result arrived too late and
        /// will be discarded.
        cost_ms: u64,
    },
    /// The attempt never completes: only the watchdog deadline ends it.
    Hang,
}

/// An evaluator whose attempts can hang, supervised per attempt.
///
/// This is the supervision-aware sibling of [`FallibleEvaluator`]: in
/// addition to failing, an attempt may report its (virtual) duration or
/// hang outright. Implementations must be deterministic in
/// `(genome, attempt)` for the engine's cross-worker determinism
/// guarantee to hold.
pub trait SupervisableEvaluator: Send + Sync {
    /// Runs attempt `attempt` (1-based; hedges carry
    /// [`HEDGE_ATTEMPT_BIT`]) for `genome`.
    fn attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome;
}

/// Adapts any [`FallibleEvaluator`] into a [`SupervisableEvaluator`]
/// that never hangs and completes instantly (virtual duration 0).
pub struct NeverHangs<'a>(pub &'a dyn FallibleEvaluator);

impl std::fmt::Debug for NeverHangs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeverHangs").finish_non_exhaustive()
    }
}

impl SupervisableEvaluator for NeverHangs<'_> {
    fn attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome {
        AttemptOutcome::Finished { result: self.0.try_fitness(genome, attempt), cost_ms: 0 }
    }
}

/// Hard per-attempt deadline enforced by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchdogPolicy {
    /// Wall-clock (or virtual) milliseconds an attempt may run before it
    /// is abandoned as [`EvalFailure::Timeout`].
    pub deadline_ms: u64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy { deadline_ms: 10_000 }
    }
}

/// When to dispatch a hedged duplicate for a straggling attempt.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HedgePolicy {
    /// Fraction of the batch that must already be resolved before any
    /// hedge is considered (the median is meaningless early on).
    pub completion_threshold: f64,
    /// An attempt is a straggler once it has run longer than this
    /// multiple of the batch's running median attempt duration.
    pub straggler_multiplier: f64,
    /// Minimum completed-attempt duration samples before the running
    /// median is trusted.
    pub min_samples: usize,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy { completion_threshold: 0.5, straggler_multiplier: 2.0, min_samples: 5 }
    }
}

/// Circuit-breaker trip, cooldown and recovery thresholds.
///
/// The breaker is counter-driven, never clock-driven: cooldown is
/// measured in shed evaluations, not elapsed time, so transitions replay
/// identically at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BreakerPolicy {
    /// Sliding window length over recent effective attempts.
    pub window: usize,
    /// Minimum window occupancy before the failure rate is evaluated.
    pub min_samples: usize,
    /// Failure fraction within the window that trips Closed → Open.
    pub trip_failure_rate: f64,
    /// Evaluations shed while Open before the breaker half-opens.
    pub cooldown_sheds: u64,
    /// Probe evaluations admitted per batch while HalfOpen.
    pub probe_quota: u64,
    /// Consecutive probe successes that close the breaker.
    pub probes_to_close: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            window: 16,
            min_samples: 8,
            trip_failure_rate: 0.6,
            cooldown_sheds: 8,
            probe_quota: 3,
            probes_to_close: 3,
        }
    }
}

/// All supervision knobs in one bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SupervisePolicy {
    /// Per-attempt watchdog deadline.
    pub watchdog: WatchdogPolicy,
    /// Straggler-hedging thresholds.
    pub hedge: HedgePolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
}

impl SupervisePolicy {
    /// Checks the policy's invariants, returning a description of the
    /// first violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when any threshold is outside
    /// its meaningful range.
    pub fn validate(&self) -> Result<(), String> {
        if self.watchdog.deadline_ms == 0 {
            return Err("watchdog deadline_ms must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.hedge.completion_threshold) {
            return Err(format!(
                "hedge completion_threshold {} outside [0, 1]",
                self.hedge.completion_threshold
            ));
        }
        if !self.hedge.straggler_multiplier.is_finite() || self.hedge.straggler_multiplier < 1.0 {
            return Err(format!(
                "hedge straggler_multiplier {} must be finite and >= 1",
                self.hedge.straggler_multiplier
            ));
        }
        if self.hedge.min_samples == 0 {
            return Err("hedge min_samples must be at least 1".into());
        }
        let b = &self.breaker;
        if b.window == 0 {
            return Err("breaker window must be at least 1".into());
        }
        if b.min_samples == 0 || b.min_samples > b.window {
            return Err(format!(
                "breaker min_samples {} must be in 1..={}",
                b.min_samples, b.window
            ));
        }
        if !(b.trip_failure_rate > 0.0 && b.trip_failure_rate <= 1.0) {
            return Err(format!(
                "breaker trip_failure_rate {} outside (0, 1]",
                b.trip_failure_rate
            ));
        }
        if b.probe_quota == 0 {
            return Err("breaker probe_quota must be at least 1".into());
        }
        if b.probes_to_close == 0 {
            return Err("breaker probes_to_close must be at least 1".into());
        }
        Ok(())
    }
}

/// Whole-run supervision counters.
///
/// Invariant: `hedges_issued == hedges_won + hedges_wasted` — every hedge
/// resolves exactly once ([`SuperviseStats::reconciles`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SuperviseStats {
    /// Primary attempts run under supervision.
    pub attempts_supervised: u64,
    /// Attempts abandoned at the watchdog deadline.
    pub watchdog_fired: u64,
    /// Watchdog firings where the attempt completed late and its result
    /// was discarded.
    pub late_results_discarded: u64,
    /// Hedged duplicates dispatched.
    pub hedges_issued: u64,
    /// Hedges that beat their straggling primary.
    pub hedges_won: u64,
    /// Hedges that lost the completion race.
    pub hedges_wasted: u64,
    /// Breaker transitions into Open.
    pub breaker_trips: u64,
    /// Breaker recoveries (HalfOpen → Closed).
    pub breaker_recoveries: u64,
    /// Probe evaluations run while HalfOpen.
    pub breaker_probes: u64,
    /// Evaluations shed (quarantined on miss) while Open.
    pub evals_shed: u64,
}

impl SuperviseStats {
    /// Whether the hedging identity reconciles.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.hedges_issued == self.hedges_won + self.hedges_wasted
    }
}

/// How the breaker disposed of one admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Evaluate normally (breaker Closed).
    Evaluate,
    /// Evaluate as a half-open probe: the final record's success or
    /// failure drives recovery.
    Probe,
    /// Do not evaluate: quarantine the miss without consuming retry
    /// budget (breaker Open, or HalfOpen with the probe quota spent).
    Shed,
}

/// The Closed→Open→HalfOpen health state machine over the backend.
///
/// Counter-driven by design: the failure window advances per effective
/// attempt, cooldown per shed, recovery per probe — never per clock
/// tick — so the same event sequence replays the same transitions.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: HealthState,
    /// Recent effective-attempt outcomes while Closed (`true` = failed).
    window: VecDeque<bool>,
    sheds_in_open: u64,
    probe_successes: u64,
    probes_admitted_this_batch: u64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    #[must_use]
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: HealthState::Closed,
            window: VecDeque::new(),
            sheds_in_open: 0,
            probe_successes: 0,
            probes_admitted_this_batch: 0,
        }
    }

    /// Current health state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Resets per-batch admission state (the probe quota).
    pub fn begin_batch(&mut self) {
        self.probes_admitted_this_batch = 0;
    }

    /// Decides the fate of one cache miss, advancing cooldown/probe
    /// counters. Returns the admission plus any state transition taken
    /// at admission time (Open → HalfOpen once the cooldown elapses).
    pub fn admit(&mut self) -> (Admission, Option<(HealthState, HealthState)>) {
        let mut transition = None;
        if self.state == HealthState::Open && self.sheds_in_open >= self.policy.cooldown_sheds {
            self.state = HealthState::HalfOpen;
            self.probe_successes = 0;
            transition = Some((HealthState::Open, HealthState::HalfOpen));
        }
        let admission = match self.state {
            HealthState::Closed => Admission::Evaluate,
            HealthState::Open => {
                self.sheds_in_open += 1;
                Admission::Shed
            }
            HealthState::HalfOpen => {
                if self.probes_admitted_this_batch < self.policy.probe_quota {
                    self.probes_admitted_this_batch += 1;
                    Admission::Probe
                } else {
                    Admission::Shed
                }
            }
        };
        (admission, transition)
    }

    /// Records one effective attempt's outcome into the failure window.
    /// Only meaningful while Closed; returns the Closed → Open
    /// transition when the failure rate trips.
    pub fn record_outcome(&mut self, failed: bool) -> Option<(HealthState, HealthState)> {
        if self.state != HealthState::Closed {
            return None;
        }
        self.window.push_back(failed);
        while self.window.len() > self.policy.window {
            self.window.pop_front();
        }
        let failures = self.window.iter().filter(|f| **f).count();
        if self.window.len() >= self.policy.min_samples
            && failures as f64 / self.window.len() as f64 >= self.policy.trip_failure_rate
        {
            self.window.clear();
            self.sheds_in_open = 0;
            self.state = HealthState::Open;
            return Some((HealthState::Closed, HealthState::Open));
        }
        None
    }

    /// Records one probe result while HalfOpen: enough consecutive
    /// successes close the breaker, any failure re-opens it.
    pub fn record_probe(&mut self, success: bool) -> Option<(HealthState, HealthState)> {
        if self.state != HealthState::HalfOpen {
            return None;
        }
        if success {
            self.probe_successes += 1;
            if self.probe_successes >= self.policy.probes_to_close {
                self.state = HealthState::Closed;
                self.window.clear();
                return Some((HealthState::HalfOpen, HealthState::Closed));
            }
            None
        } else {
            self.state = HealthState::Open;
            self.sheds_in_open = 0;
            self.probe_successes = 0;
            Some((HealthState::HalfOpen, HealthState::Open))
        }
    }
}

/// Immutable supervision front-end the engine borrows: the evaluator
/// plus the policy bundle. Mutable per-run state lives in
/// [`SuperviseSession`], which the engine creates (or restores from a
/// checkpoint aux blob) inside each run.
pub struct Supervisor<'a> {
    eval: &'a dyn SupervisableEvaluator,
    policy: SupervisePolicy,
}

impl<'a> Supervisor<'a> {
    /// Supervises `eval` with the default policy.
    #[must_use]
    pub fn new(eval: &'a dyn SupervisableEvaluator) -> Self {
        Supervisor { eval, policy: SupervisePolicy::default() }
    }

    /// Replaces the policy bundle.
    #[must_use]
    pub fn with_policy(mut self, policy: SupervisePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active policy bundle.
    #[must_use]
    pub fn policy(&self) -> &SupervisePolicy {
        &self.policy
    }

    /// The supervised evaluator.
    #[must_use]
    pub fn evaluator(&self) -> &'a dyn SupervisableEvaluator {
        self.eval
    }

    /// Worker-side precomputation: runs attempts `1..=max_attempts` for
    /// `genome`, stopping at the first terminal outcome (a success that
    /// beats the deadline, or a non-retryable failure).
    ///
    /// The merge loop ([`SuperviseSession::resolve`]) replays these
    /// outcomes in deterministic first-occurrence order; hedges and
    /// post-hedge retries beyond the precomputed slice are evaluated
    /// inline there.
    #[must_use]
    pub fn precompute(&self, retry: &RetryPolicy, genome: &Genome) -> Vec<AttemptOutcome> {
        let max_attempts = retry.max_attempts.max(1);
        let deadline = self.policy.watchdog.deadline_ms;
        let mut out = Vec::new();
        for attempt in 1..=max_attempts {
            let outcome = self.eval.attempt(genome, attempt);
            let terminal = match &outcome {
                AttemptOutcome::Hang => false,
                AttemptOutcome::Finished { result, cost_ms } => match result {
                    Ok(_) => *cost_ms <= deadline,
                    Err(e) => !e.is_retryable(),
                },
            };
            out.push(outcome);
            if terminal {
                break;
            }
        }
        out
    }
}

impl std::fmt::Debug for Supervisor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor").field("policy", &self.policy).finish_non_exhaustive()
    }
}

/// Version tag for the [`SuperviseSession::snapshot_bytes`] wire format.
const SESSION_SNAPSHOT_VERSION: u32 = 1;

/// Mutable per-run supervision state: the circuit breaker, whole-run
/// counters, and per-batch hedging state.
///
/// The engine drives it per scoring batch: [`SuperviseSession::begin_batch`],
/// then one [`SuperviseSession::admit`] per distinct cache miss (in
/// first-occurrence order), then one [`SuperviseSession::resolve`] per
/// admitted miss (same order). All observer events are emitted here, on
/// the merge thread, so streams replay identically at any worker count.
#[derive(Debug)]
pub struct SuperviseSession {
    policy: SupervisePolicy,
    breaker: CircuitBreaker,
    stats: SuperviseStats,
    // Per-batch hedging state (reset by `begin_batch`; deliberately not
    // persisted — checkpoints land on generation boundaries, between
    // batches).
    admitted_total: usize,
    resolved_genomes: usize,
    /// Sorted effective-attempt durations observed this batch.
    durations: Vec<u64>,
}

impl SuperviseSession {
    /// A fresh session (breaker Closed, all counters zero).
    #[must_use]
    pub fn new(policy: SupervisePolicy) -> Self {
        SuperviseSession {
            breaker: CircuitBreaker::new(policy.breaker),
            policy,
            stats: SuperviseStats::default(),
            admitted_total: 0,
            resolved_genomes: 0,
            durations: Vec::new(),
        }
    }

    /// Whole-run supervision counters so far.
    #[must_use]
    pub fn stats(&self) -> SuperviseStats {
        self.stats
    }

    /// Current breaker health state.
    #[must_use]
    pub fn health(&self) -> HealthState {
        self.breaker.state()
    }

    /// Starts a new scoring batch, resetting hedging state and the probe
    /// quota.
    pub fn begin_batch(&mut self) {
        self.admitted_total = 0;
        self.resolved_genomes = 0;
        self.durations.clear();
        self.breaker.begin_batch();
    }

    /// Decides the fate of one cache miss at batch start. Emits breaker
    /// transitions and [`SearchEvent::EvalShed`] on the spot; the caller
    /// quarantines shed genomes without evaluating them.
    pub fn admit(&mut self, obs: &dyn SearchObserver) -> Admission {
        let (admission, transition) = self.breaker.admit();
        if let Some((from, to)) = transition {
            self.note_transition(from, to, obs);
        }
        match admission {
            Admission::Shed => {
                self.stats.evals_shed += 1;
                if obs.enabled() {
                    obs.on_event(&SearchEvent::EvalShed);
                }
            }
            Admission::Evaluate | Admission::Probe => self.admitted_total += 1,
        }
        admission
    }

    /// Runs the supervised (virtual-time) retry loop for one admitted
    /// miss, consuming worker-precomputed outcomes and evaluating hedges
    /// and post-hedge retries inline.
    ///
    /// Mirrors [`crate::fallible::evaluate_with_retries`] except that
    /// (a) deadlines are enforced preemptively — a late success is
    /// always discarded, never salvaged, because the watchdog already
    /// abandoned the attempt — and (b) backoffs are recorded but never
    /// slept: supervised time is virtual.
    pub fn resolve(
        &mut self,
        eval: &dyn SupervisableEvaluator,
        retry: &RetryPolicy,
        genome: &Genome,
        precomputed: &[AttemptOutcome],
        probe: bool,
        obs: &dyn SearchObserver,
    ) -> EvalRecord {
        let deadline = self.policy.watchdog.deadline_ms;
        let max_attempts = retry.max_attempts.max(1);
        let mut failures = Vec::new();
        let mut backoffs_nanos = Vec::new();
        let mut value: Option<Option<f64>> = None;
        for attempt in 1..=max_attempts {
            self.stats.attempts_supervised += 1;
            let outcome = precomputed
                .get(attempt as usize - 1)
                .cloned()
                .unwrap_or_else(|| eval.attempt(genome, attempt));
            let (mut dur, mut result, mut fired) = watchdog_convert(outcome, deadline);

            // Straggler hedging: first completion wins, decided purely
            // by virtual completion times (a hedge issued at `t_trig`
            // finishing after `t_trig + dur_hedge` beats a primary
            // finishing after `dur`). A hedge that hangs can never win:
            // its completion time is at least `t_trig + deadline`, and
            // the primary's is capped at `deadline`.
            let hedged = self.hedge_trigger(dur);
            if let Some(t_trig) = hedged {
                self.stats.hedges_issued += 1;
                if obs.enabled() {
                    obs.on_event(&SearchEvent::HedgeIssued { attempt });
                }
                let hedge = eval.attempt(genome, attempt | HEDGE_ATTEMPT_BIT);
                let (dur_h, result_h, fired_h) = watchdog_convert(hedge, deadline);
                let won = t_trig.saturating_add(dur_h) < dur;
                if won {
                    self.stats.hedges_won += 1;
                    dur = t_trig.saturating_add(dur_h);
                    result = result_h;
                    fired = fired_h;
                } else {
                    self.stats.hedges_wasted += 1;
                }
                if let Some(late) = fired {
                    self.stats.watchdog_fired += 1;
                    if late {
                        self.stats.late_results_discarded += 1;
                    }
                    if obs.enabled() {
                        obs.on_event(&SearchEvent::WatchdogFired {
                            attempt,
                            limit_ms: deadline,
                            late_result_discarded: late,
                        });
                    }
                }
                if obs.enabled() {
                    obs.on_event(&SearchEvent::HedgeResolved { won });
                }
            } else if let Some(late) = fired {
                self.stats.watchdog_fired += 1;
                if late {
                    self.stats.late_results_discarded += 1;
                }
                if obs.enabled() {
                    obs.on_event(&SearchEvent::WatchdogFired {
                        attempt,
                        limit_ms: deadline,
                        late_result_discarded: late,
                    });
                }
            }

            // Mirror the wall-clock loop: garbage metrics never enter
            // the cache as fitness.
            if let Ok(Some(v)) = result {
                if !v.is_finite() {
                    result = Err(EvalFailure::Corrupted(format!("non-finite fitness {v}")));
                }
            }

            self.note_duration(dur);
            if let Some((from, to)) = self.breaker.record_outcome(result.is_err()) {
                self.note_transition(from, to, obs);
            }

            match result {
                Ok(v) => {
                    value = Some(v);
                    break;
                }
                Err(failure) => {
                    let retryable = failure.is_retryable();
                    failures.push(failure);
                    if !retryable || attempt == max_attempts {
                        break;
                    }
                    backoffs_nanos.push(retry_backoff(retry, genome, attempt));
                }
            }
        }
        self.resolved_genomes += 1;
        let record = EvalRecord { value, failures, backoffs_nanos };
        if probe {
            self.stats.breaker_probes += 1;
            let success = record.value.is_some();
            if let Some((from, to)) = self.breaker.record_probe(success) {
                self.note_transition(from, to, obs);
            }
        }
        record
    }

    /// Serializes the breaker state and whole-run counters for the
    /// checkpoint aux blob. Per-batch hedging state is excluded:
    /// checkpoints land on generation boundaries, between batches.
    #[must_use]
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(SESSION_SNAPSHOT_VERSION);
        w.u32(match self.breaker.state {
            HealthState::Closed => 0,
            HealthState::Open => 1,
            HealthState::HalfOpen => 2,
        });
        w.usize(self.breaker.window.len());
        for failed in &self.breaker.window {
            w.bool(*failed);
        }
        w.u64(self.breaker.sheds_in_open);
        w.u64(self.breaker.probe_successes);
        let s = &self.stats;
        w.u64(s.attempts_supervised);
        w.u64(s.watchdog_fired);
        w.u64(s.late_results_discarded);
        w.u64(s.hedges_issued);
        w.u64(s.hedges_won);
        w.u64(s.hedges_wasted);
        w.u64(s.breaker_trips);
        w.u64(s.breaker_recoveries);
        w.u64(s.breaker_probes);
        w.u64(s.evals_shed);
        w.into_bytes()
    }

    /// Reconstructs a session from [`SuperviseSession::snapshot_bytes`]
    /// output, under the given policy.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, malformed or
    /// unknown-version input.
    pub fn restore_bytes(policy: SupervisePolicy, bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let version = r.u32()?;
        if version != SESSION_SNAPSHOT_VERSION {
            return Err(WireError(format!("unknown supervise snapshot version {version}")));
        }
        let state = match r.u32()? {
            0 => HealthState::Closed,
            1 => HealthState::Open,
            2 => HealthState::HalfOpen,
            other => return Err(WireError(format!("unknown breaker state tag {other}"))),
        };
        let n = r.len_prefix()?;
        let mut window = VecDeque::with_capacity(n.min(1024));
        for _ in 0..n {
            window.push_back(r.bool()?);
        }
        let sheds_in_open = r.u64()?;
        let probe_successes = r.u64()?;
        let stats = SuperviseStats {
            attempts_supervised: r.u64()?,
            watchdog_fired: r.u64()?,
            late_results_discarded: r.u64()?,
            hedges_issued: r.u64()?,
            hedges_won: r.u64()?,
            hedges_wasted: r.u64()?,
            breaker_trips: r.u64()?,
            breaker_recoveries: r.u64()?,
            breaker_probes: r.u64()?,
            evals_shed: r.u64()?,
        };
        r.finish()?;
        Ok(SuperviseSession {
            breaker: CircuitBreaker {
                policy: policy.breaker,
                state,
                window,
                sheds_in_open,
                probe_successes,
                probes_admitted_this_batch: 0,
            },
            policy,
            stats,
            admitted_total: 0,
            resolved_genomes: 0,
            durations: Vec::new(),
        })
    }

    /// Updates trip/recovery counters and emits the transition event.
    fn note_transition(&mut self, from: HealthState, to: HealthState, obs: &dyn SearchObserver) {
        if to == HealthState::Open {
            self.stats.breaker_trips += 1;
        }
        if from == HealthState::HalfOpen && to == HealthState::Closed {
            self.stats.breaker_recoveries += 1;
        }
        if obs.enabled() {
            obs.on_event(&SearchEvent::BreakerTransition { from, to });
        }
    }

    /// Whether to hedge an attempt of effective duration `dur`; returns
    /// the virtual hedge-issue time `straggler_multiplier × median`.
    fn hedge_trigger(&self, dur: u64) -> Option<u64> {
        let h = &self.policy.hedge;
        if self.admitted_total == 0 || self.durations.len() < h.min_samples {
            return None;
        }
        if (self.resolved_genomes as f64) < h.completion_threshold * self.admitted_total as f64 {
            return None;
        }
        let median = self.durations[self.durations.len() / 2] as f64;
        let threshold = h.straggler_multiplier * median;
        ((dur as f64) > threshold).then_some(threshold as u64)
    }

    /// Records one effective attempt duration into the sorted batch
    /// sample set.
    fn note_duration(&mut self, dur: u64) {
        let idx = self.durations.partition_point(|&d| d <= dur);
        self.durations.insert(idx, dur);
    }
}

/// Converts a raw attempt outcome under the watchdog deadline into
/// `(effective duration, result, watchdog_fired)`, where the firing
/// flag carries `late_result_discarded`.
///
/// Every effective duration is capped at the deadline: a hang or a late
/// completion both end — for supervision purposes — exactly when the
/// watchdog fires.
fn watchdog_convert(
    outcome: AttemptOutcome,
    deadline_ms: u64,
) -> (u64, Result<Option<f64>, EvalFailure>, Option<bool>) {
    match outcome {
        AttemptOutcome::Hang => (
            deadline_ms,
            Err(EvalFailure::Timeout { elapsed_ms: deadline_ms, limit_ms: deadline_ms }),
            Some(false),
        ),
        AttemptOutcome::Finished { cost_ms, .. } if cost_ms > deadline_ms => (
            deadline_ms,
            Err(EvalFailure::Timeout { elapsed_ms: cost_ms, limit_ms: deadline_ms }),
            Some(true),
        ),
        AttemptOutcome::Finished { result, cost_ms } => (cost_ms, result, None),
    }
}

/// A real-thread watchdog for genuinely hanging production backends.
///
/// Each call runs the closure on a fresh thread and waits at most the
/// deadline. On expiry the thread is *detached* (its eventual result is
/// discarded) and `None` is returned. Results carry a generation-stamped
/// completion token: a call's channel and epoch are both fresh, so a
/// late result from an abandoned call can never be mistaken for the
/// current call's — it is dropped when the stale channel is.
#[derive(Debug)]
pub struct ReclaimableWorker {
    deadline: Duration,
    epoch: u64,
}

impl ReclaimableWorker {
    /// A worker enforcing `deadline` per call.
    #[must_use]
    pub fn new(deadline: Duration) -> Self {
        ReclaimableWorker { deadline, epoch: 0 }
    }

    /// Runs `f` with the deadline; `None` means the watchdog fired and
    /// the (possibly still running) thread was abandoned.
    pub fn run<T, F>(&mut self, f: F) -> Option<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.epoch += 1;
        let epoch = self.epoch;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let value = f();
            // The receiver may be long gone (watchdog fired); a send
            // error just drops the late result, which is the point.
            let _ = tx.send((epoch, value));
        });
        match rx.recv_timeout(self.deadline) {
            Ok((e, value)) if e == self.epoch => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallible::FnFallible;
    use nautilus_obs::InMemorySink;

    fn g(x: u32) -> Genome {
        Genome::from_genes(vec![x])
    }

    /// A scripted evaluator: outcome per (genome gene, attempt).
    struct Scripted<F: Fn(u32, u32) -> AttemptOutcome + Send + Sync>(F);

    impl<F: Fn(u32, u32) -> AttemptOutcome + Send + Sync> SupervisableEvaluator for Scripted<F> {
        fn attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome {
            (self.0)(genome.gene_at(0), attempt)
        }
    }

    fn ok(v: f64, cost_ms: u64) -> AttemptOutcome {
        AttemptOutcome::Finished { result: Ok(Some(v)), cost_ms }
    }

    fn fail_transient(cost_ms: u64) -> AttemptOutcome {
        AttemptOutcome::Finished { result: Err(EvalFailure::Transient("boom".into())), cost_ms }
    }

    fn policy() -> SupervisePolicy {
        SupervisePolicy {
            watchdog: WatchdogPolicy { deadline_ms: 1_000 },
            ..SupervisePolicy::default()
        }
    }

    #[test]
    fn default_policy_is_valid() {
        assert!(SupervisePolicy::default().validate().is_ok());
    }

    #[test]
    fn invalid_policies_are_described() {
        let mut p = SupervisePolicy::default();
        p.watchdog.deadline_ms = 0;
        assert!(p.validate().unwrap_err().contains("deadline_ms"));
        let mut p = SupervisePolicy::default();
        p.hedge.straggler_multiplier = 0.5;
        assert!(p.validate().unwrap_err().contains("straggler_multiplier"));
        let mut p = SupervisePolicy::default();
        p.breaker.min_samples = 100;
        assert!(p.validate().unwrap_err().contains("min_samples"));
        let mut p = SupervisePolicy::default();
        p.breaker.trip_failure_rate = 0.0;
        assert!(p.validate().unwrap_err().contains("trip_failure_rate"));
    }

    #[test]
    fn watchdog_converts_hangs_and_late_results_to_timeouts() {
        let (dur, result, fired) = watchdog_convert(AttemptOutcome::Hang, 500);
        assert_eq!(dur, 500);
        assert_eq!(result, Err(EvalFailure::Timeout { elapsed_ms: 500, limit_ms: 500 }));
        assert_eq!(fired, Some(false));

        let (dur, result, fired) = watchdog_convert(ok(1.0, 700), 500);
        assert_eq!(dur, 500, "effective duration is capped at the deadline");
        assert_eq!(result, Err(EvalFailure::Timeout { elapsed_ms: 700, limit_ms: 500 }));
        assert_eq!(fired, Some(true), "a late completion is a discarded result");

        let (dur, result, fired) = watchdog_convert(ok(1.0, 500), 500);
        assert_eq!(dur, 500);
        assert_eq!(result, Ok(Some(1.0)));
        assert_eq!(fired, None, "finishing exactly at the deadline is in time");
    }

    #[test]
    fn never_hangs_adapter_is_transparent() {
        let inner = FnFallible::new(|g: &Genome, _| Ok(Some(f64::from(g.gene_at(0)))));
        let eval = NeverHangs(&inner);
        assert_eq!(eval.attempt(&g(7), 1), ok(7.0, 0));
    }

    #[test]
    fn resolve_retries_hangs_as_timeouts_until_exhaustion() {
        let eval = Scripted(|_, _| AttemptOutcome::Hang);
        let mut session = SuperviseSession::new(policy());
        session.begin_batch();
        let obs = nautilus_obs::noop();
        assert_eq!(session.admit(obs), Admission::Evaluate);
        let pre = Supervisor::new(&eval).with_policy(policy());
        let outcomes = pre.precompute(&RetryPolicy::default(), &g(1));
        assert_eq!(outcomes.len(), 3, "hangs are retryable: all attempts precomputed");
        let record = session.resolve(&eval, &RetryPolicy::default(), &g(1), &outcomes, false, obs);
        assert!(record.is_quarantined());
        assert_eq!(record.failures.len(), 3);
        assert!(record
            .failures
            .iter()
            .all(|f| matches!(f, EvalFailure::Timeout { elapsed_ms: 1_000, limit_ms: 1_000 })));
        let stats = session.stats();
        assert_eq!(stats.watchdog_fired, 3);
        assert_eq!(stats.late_results_discarded, 0);
        assert_eq!(stats.attempts_supervised, 3);
    }

    #[test]
    fn resolve_discards_a_late_result_and_recovers_on_retry() {
        let eval = Scripted(|_, attempt| if attempt == 1 { ok(5.0, 2_000) } else { ok(5.0, 10) });
        let mut session = SuperviseSession::new(policy());
        session.begin_batch();
        let obs = nautilus_obs::noop();
        assert_eq!(session.admit(obs), Admission::Evaluate);
        let record = session.resolve(&eval, &RetryPolicy::default(), &g(1), &[], false, obs);
        assert_eq!(record.value, Some(Some(5.0)));
        assert_eq!(record.failures.len(), 1, "the late attempt is a recorded timeout");
        let stats = session.stats();
        assert_eq!(stats.watchdog_fired, 1);
        assert_eq!(stats.late_results_discarded, 1);
    }

    #[test]
    fn hedging_rescues_a_straggler_and_reconciles() {
        // Gene 9 straggles on its primary attempt but its hedge (attempt
        // tagged with HEDGE_ATTEMPT_BIT) completes instantly.
        let eval = Scripted(|gene, attempt| {
            if gene == 9 && attempt & HEDGE_ATTEMPT_BIT == 0 {
                ok(1.0, 900)
            } else {
                ok(1.0, 10)
            }
        });
        let mut p = policy();
        p.hedge =
            HedgePolicy { completion_threshold: 0.5, straggler_multiplier: 2.0, min_samples: 3 };
        let mut session = SuperviseSession::new(p);
        session.begin_batch();
        let sink = InMemorySink::new();
        let retry = RetryPolicy::default();
        // 8 fast genomes build the median, then the straggler.
        for _ in 1..=9 {
            assert_eq!(session.admit(&sink), Admission::Evaluate);
        }
        for x in 1..=8u32 {
            let r = session.resolve(&eval, &retry, &g(x), &[], false, &sink);
            assert_eq!(r.value, Some(Some(1.0)));
        }
        let r = session.resolve(&eval, &retry, &g(9), &[], false, &sink);
        assert_eq!(r.value, Some(Some(1.0)));
        let stats = session.stats();
        assert_eq!(stats.hedges_issued, 1);
        assert_eq!(stats.hedges_won, 1, "the fast hedge must win the race");
        assert_eq!(stats.hedges_wasted, 0);
        assert!(stats.reconciles());
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(e, SearchEvent::HedgeIssued { attempt: 1 })));
        assert!(events.iter().any(|e| matches!(e, SearchEvent::HedgeResolved { won: true })));
    }

    #[test]
    fn a_losing_hedge_is_charged_as_wasted() {
        // The straggler's hedge is just as slow: the primary wins.
        let eval = Scripted(|gene, _| if gene == 9 { ok(1.0, 900) } else { ok(1.0, 100) });
        let mut p = policy();
        p.hedge =
            HedgePolicy { completion_threshold: 0.5, straggler_multiplier: 2.0, min_samples: 3 };
        let mut session = SuperviseSession::new(p);
        session.begin_batch();
        let obs = nautilus_obs::noop();
        let retry = RetryPolicy::default();
        for _ in 1..=9 {
            assert_eq!(session.admit(obs), Admission::Evaluate);
        }
        for x in 1..=8u32 {
            let _ = session.resolve(&eval, &retry, &g(x), &[], false, obs);
        }
        let r = session.resolve(&eval, &retry, &g(9), &[], false, obs);
        assert_eq!(r.value, Some(Some(1.0)));
        let stats = session.stats();
        assert_eq!(stats.hedges_issued, 1);
        assert_eq!(stats.hedges_won, 0);
        assert_eq!(stats.hedges_wasted, 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn no_hedge_before_the_completion_threshold_or_median_warmup() {
        let eval = Scripted(|_, _| ok(1.0, 900));
        let mut session = SuperviseSession::new(policy());
        session.begin_batch();
        let obs = nautilus_obs::noop();
        let retry = RetryPolicy::default();
        for _ in 0..4 {
            assert_eq!(session.admit(obs), Admission::Evaluate);
        }
        for x in 0..4u32 {
            let _ = session.resolve(&eval, &retry, &g(x), &[], false, obs);
        }
        assert_eq!(session.stats().hedges_issued, 0, "uniform durations never straggle");
    }

    #[test]
    fn breaker_trips_sheds_and_recovers() {
        let p = SupervisePolicy {
            breaker: BreakerPolicy {
                window: 4,
                min_samples: 4,
                trip_failure_rate: 0.75,
                cooldown_sheds: 2,
                probe_quota: 2,
                probes_to_close: 2,
            },
            ..SupervisePolicy::default()
        };
        let failing = Scripted(|_, _| AttemptOutcome::Finished {
            result: Err(EvalFailure::Persistent("down".into())),
            cost_ms: 10,
        });
        let healthy = Scripted(|_, _| ok(2.0, 10));
        let mut session = SuperviseSession::new(p);
        let sink = InMemorySink::new();
        let retry = RetryPolicy::none();

        // Batch 1: four persistent failures trip the breaker.
        session.begin_batch();
        for x in 0..4u32 {
            assert_eq!(session.admit(&sink), Admission::Evaluate);
            let r = session.resolve(&failing, &retry, &g(x), &[], false, &sink);
            assert!(r.is_quarantined());
        }
        assert_eq!(session.health(), HealthState::Open);
        assert_eq!(session.stats().breaker_trips, 1);

        // Batch 2: everything is shed (cooldown_sheds = 2).
        session.begin_batch();
        assert_eq!(session.admit(&sink), Admission::Shed);
        assert_eq!(session.admit(&sink), Admission::Shed);
        assert_eq!(session.stats().evals_shed, 2);

        // Batch 3: cooldown elapsed → half-open, probes admitted up to
        // the quota, the rest shed.
        session.begin_batch();
        assert_eq!(session.admit(&sink), Admission::Probe);
        assert_eq!(session.admit(&sink), Admission::Probe);
        assert_eq!(session.admit(&sink), Admission::Shed);
        assert_eq!(session.health(), HealthState::HalfOpen);
        // Both probes succeed against the healed backend → Closed.
        let r = session.resolve(&healthy, &retry, &g(10), &[], true, &sink);
        assert_eq!(r.value, Some(Some(2.0)));
        assert_eq!(session.health(), HealthState::HalfOpen);
        let r = session.resolve(&healthy, &retry, &g(11), &[], true, &sink);
        assert_eq!(r.value, Some(Some(2.0)));
        assert_eq!(session.health(), HealthState::Closed);
        let stats = session.stats();
        assert_eq!(stats.breaker_recoveries, 1);
        assert_eq!(stats.breaker_probes, 2);

        let transitions: Vec<(HealthState, HealthState)> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                SearchEvent::BreakerTransition { from, to } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                (HealthState::Closed, HealthState::Open),
                (HealthState::Open, HealthState::HalfOpen),
                (HealthState::HalfOpen, HealthState::Closed),
            ]
        );
    }

    #[test]
    fn a_failing_probe_reopens_the_breaker() {
        let p = SupervisePolicy {
            breaker: BreakerPolicy {
                window: 2,
                min_samples: 2,
                trip_failure_rate: 1.0,
                cooldown_sheds: 1,
                probe_quota: 1,
                probes_to_close: 1,
            },
            ..SupervisePolicy::default()
        };
        let failing = Scripted(|_, _| AttemptOutcome::Finished {
            result: Err(EvalFailure::Persistent("down".into())),
            cost_ms: 10,
        });
        let mut session = SuperviseSession::new(p);
        let obs = nautilus_obs::noop();
        let retry = RetryPolicy::none();
        session.begin_batch();
        for x in 0..2u32 {
            assert_eq!(session.admit(obs), Admission::Evaluate);
            let _ = session.resolve(&failing, &retry, &g(x), &[], false, obs);
        }
        assert_eq!(session.health(), HealthState::Open);
        session.begin_batch();
        assert_eq!(session.admit(obs), Admission::Shed);
        session.begin_batch();
        assert_eq!(session.admit(obs), Admission::Probe);
        let _ = session.resolve(&failing, &retry, &g(9), &[], true, obs);
        assert_eq!(session.health(), HealthState::Open, "a failing probe re-opens");
        assert_eq!(session.stats().breaker_trips, 2);
        assert_eq!(session.stats().breaker_recoveries, 0);
    }

    #[test]
    fn session_snapshot_round_trips() {
        let mut p = SupervisePolicy::default();
        p.breaker =
            BreakerPolicy { window: 4, min_samples: 2, trip_failure_rate: 0.5, ..p.breaker };
        let failing = Scripted(|_, _| AttemptOutcome::Finished {
            result: Err(EvalFailure::Persistent("down".into())),
            cost_ms: 10,
        });
        let mut session = SuperviseSession::new(p);
        let obs = nautilus_obs::noop();
        session.begin_batch();
        for x in 0..3u32 {
            if session.admit(obs) == Admission::Evaluate {
                let _ = session.resolve(&failing, &RetryPolicy::none(), &g(x), &[], false, obs);
            }
        }
        let bytes = session.snapshot_bytes();
        let restored = SuperviseSession::restore_bytes(p, &bytes).expect("snapshot restores");
        assert_eq!(restored.snapshot_bytes(), bytes, "round-trip is byte-identical");
        assert_eq!(restored.health(), session.health());
        assert_eq!(restored.stats(), session.stats());
        // Truncations and version garbage are rejected.
        for cut in 0..bytes.len() {
            assert!(
                SuperviseSession::restore_bytes(p, &bytes[..cut]).is_err(),
                "truncation at {cut} silently restored"
            );
        }
        let mut versioned = bytes.clone();
        versioned[0] = 0xFF;
        assert!(SuperviseSession::restore_bytes(p, &versioned).is_err());
    }

    #[test]
    fn precompute_stops_at_the_first_terminal_outcome() {
        let eval =
            Scripted(|_, attempt| if attempt == 1 { fail_transient(10) } else { ok(1.0, 10) });
        let sup = Supervisor::new(&eval).with_policy(policy());
        let outcomes = sup.precompute(&RetryPolicy::default(), &g(1));
        assert_eq!(outcomes.len(), 2, "success on attempt 2 is terminal");

        let persistent = Scripted(|_, _| AttemptOutcome::Finished {
            result: Err(EvalFailure::Persistent("no".into())),
            cost_ms: 10,
        });
        let sup = Supervisor::new(&persistent).with_policy(policy());
        assert_eq!(sup.precompute(&RetryPolicy::default(), &g(1)).len(), 1);

        // A late success is NOT terminal: the watchdog discards it.
        let late = Scripted(|_, attempt| if attempt == 1 { ok(1.0, 5_000) } else { ok(1.0, 10) });
        let sup = Supervisor::new(&late).with_policy(policy());
        assert_eq!(sup.precompute(&RetryPolicy::default(), &g(1)).len(), 2);
    }

    #[test]
    fn reclaimable_worker_returns_in_time_results_and_abandons_hangs() {
        let mut worker = ReclaimableWorker::new(Duration::from_secs(5));
        assert_eq!(worker.run(|| 42), Some(42));

        let mut strict = ReclaimableWorker::new(Duration::from_millis(20));
        let hung = strict.run(|| {
            std::thread::sleep(Duration::from_secs(60));
            1
        });
        assert_eq!(hung, None, "the watchdog must reclaim the hung call");
        // The worker stays usable after abandoning a thread, and a stale
        // result can never leak into a later call.
        assert_eq!(strict.run(|| 7), Some(7));
    }

    #[test]
    fn reclaimable_worker_hammer_stays_epoch_consistent() {
        // TSan target: interleave hanging and instant calls; every
        // returned value must belong to the issuing call.
        let mut worker = ReclaimableWorker::new(Duration::from_millis(10));
        for i in 0..20u64 {
            if i % 3 == 0 {
                let out = worker.run(move || {
                    std::thread::sleep(Duration::from_millis(200));
                    i
                });
                assert_eq!(out, None, "slow call {i} must be abandoned");
            } else {
                assert_eq!(worker.run(move || i), Some(i), "fast call {i} must round-trip");
            }
        }
    }
}
