//! Run budgets and graceful shutdown.
//!
//! Long searches need to stop *cleanly*: at a generation boundary, with a
//! final checkpoint written and the partial history intact, rather than
//! mid-generation via `SIGKILL` or a panic. [`RunBudget`] expresses the
//! stopping rules — generation cap, distinct-evaluation cap, wall-clock
//! deadline, cooperative cancellation — and the engine consults it once
//! per generation boundary. The reason a run stopped is reported as a
//! [`StopReason`] on [`GaRun`](crate::GaRun) (and surfaced by the core
//! crate on `SearchOutcome`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why a run returned.
///
/// [`StopReason::Completed`] is the ordinary case: every generation in
/// [`GaSettings::generations`](crate::GaSettings::generations) was scored.
/// Every other variant means the run was interrupted at a generation
/// boundary by its [`RunBudget`]; the outcome then holds a *partial*
/// history (shorter trace) and, when checkpointing is enabled, a final
/// checkpoint from which the run can be resumed to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum StopReason {
    /// The run scored all configured generations.
    #[default]
    Completed,
    /// `max_generations` boundaries were reached.
    GenerationBudget,
    /// The distinct-evaluation cap was reached.
    EvalBudget,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The cooperative cancel flag was raised (e.g. from a SIGINT handler).
    Cancelled,
}

impl StopReason {
    /// Stable snake_case label (used in telemetry and digests).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::GenerationBudget => "generation_budget",
            StopReason::EvalBudget => "eval_budget",
            StopReason::DeadlineExceeded => "deadline_exceeded",
            StopReason::Cancelled => "cancelled",
        }
    }

    /// Whether the run stopped early (anything but [`StopReason::Completed`]).
    #[must_use]
    pub fn is_interrupted(self) -> bool {
        self != StopReason::Completed
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Injectable monotonic clock: elapsed time since an origin of the
/// caller's choosing. Tests substitute a fake so deadline behaviour is
/// deterministic; the default samples [`std::time::Instant`].
pub type SharedClock = Arc<dyn Fn() -> Duration + Send + Sync>;

/// Stopping rules for a run, checked at each generation boundary.
///
/// The default budget is unlimited. Limits compose; the first one hit (in
/// the order cancel > deadline > evaluations > generations) names the
/// [`StopReason`]. The deadline is measured from the moment the run (or a
/// resume) starts, via the injectable clock.
///
/// ```
/// use nautilus_ga::{RunBudget, StopReason};
/// use std::time::Duration;
/// let budget = RunBudget::new().with_max_generations(2);
/// assert_eq!(budget.stop_reason(2, 0, Duration::ZERO), StopReason::Completed);
/// assert_eq!(budget.stop_reason(3, 0, Duration::ZERO), StopReason::GenerationBudget);
/// ```
#[derive(Clone, Default)]
pub struct RunBudget {
    max_generations: Option<u32>,
    max_evaluations: Option<u64>,
    deadline: Option<Duration>,
    clock: Option<SharedClock>,
    cancel: Option<Arc<AtomicBool>>,
}

impl RunBudget {
    /// An unlimited budget (never stops a run early).
    #[must_use]
    pub fn new() -> RunBudget {
        RunBudget::default()
    }

    /// Stops once `n` breeding generations have been scored: the outcome
    /// then holds generations `0..=n` and a resume continues at `n + 1`.
    #[must_use]
    pub fn with_max_generations(mut self, n: u32) -> Self {
        self.max_generations = Some(n);
        self
    }

    /// Stops at the first boundary where the cache holds at least `n`
    /// distinct feasible evaluations (synthesis jobs).
    #[must_use]
    pub fn with_max_evaluations(mut self, n: u64) -> Self {
        self.max_evaluations = Some(n);
        self
    }

    /// Stops at the first boundary after `deadline` of wall-clock time.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Substitutes the clock used to measure the deadline (elapsed time
    /// since run start). Intended for deterministic tests.
    #[must_use]
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Installs a cooperative cancel flag. Any thread (or a signal
    /// handler) storing `true` stops the run at the next boundary with
    /// [`StopReason::Cancelled`].
    #[must_use]
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The installed cancel flag, if any.
    #[must_use]
    pub fn cancel_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.cancel.as_ref()
    }

    /// Whether no stopping rule is configured at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_generations.is_none()
            && self.max_evaluations.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }

    /// Starts measuring elapsed time for this run's deadline.
    #[must_use]
    pub fn start_timer(&self) -> BudgetTimer {
        match &self.clock {
            Some(clock) => BudgetTimer::Injected { clock: Arc::clone(clock), origin: clock() },
            None => BudgetTimer::Real(std::time::Instant::now()),
        }
    }

    /// Decides whether the run should stop before scoring
    /// `next_generation`, given `distinct_evals` feasible evaluations so
    /// far and `elapsed` run time. Returns [`StopReason::Completed`] when
    /// every limit still has room.
    #[must_use]
    pub fn stop_reason(
        &self,
        next_generation: u32,
        distinct_evals: u64,
        elapsed: Duration,
    ) -> StopReason {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Acquire) {
                return StopReason::Cancelled;
            }
        }
        if let Some(deadline) = self.deadline {
            if elapsed >= deadline {
                return StopReason::DeadlineExceeded;
            }
        }
        if let Some(max) = self.max_evaluations {
            if distinct_evals >= max {
                return StopReason::EvalBudget;
            }
        }
        if let Some(max) = self.max_generations {
            if next_generation > max {
                return StopReason::GenerationBudget;
            }
        }
        StopReason::Completed
    }
}

impl std::fmt::Debug for RunBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunBudget")
            .field("max_generations", &self.max_generations)
            .field("max_evaluations", &self.max_evaluations)
            .field("deadline", &self.deadline)
            .field("injected_clock", &self.clock.is_some())
            .field("cancellable", &self.cancel.is_some())
            .finish()
    }
}

/// Elapsed-time source for one run, created by [`RunBudget::start_timer`].
#[derive(Clone)]
pub enum BudgetTimer {
    /// Real wall clock.
    Real(std::time::Instant),
    /// Injected clock with its origin sample.
    Injected {
        /// The substituted clock.
        clock: SharedClock,
        /// Clock reading at run start.
        origin: Duration,
    },
}

impl BudgetTimer {
    /// Time elapsed since the run (or resume) started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        match self {
            BudgetTimer::Real(start) => start.elapsed(),
            BudgetTimer::Injected { clock, origin } => clock().saturating_sub(*origin),
        }
    }
}

impl std::fmt::Debug for BudgetTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetTimer::Real(start) => f.debug_tuple("Real").field(start).finish(),
            BudgetTimer::Injected { origin, .. } => {
                f.debug_struct("Injected").field("origin", origin).finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn unlimited_budget_never_stops() {
        let b = RunBudget::new();
        assert!(b.is_unlimited());
        assert_eq!(b.stop_reason(u32::MAX, u64::MAX, Duration::MAX), StopReason::Completed);
    }

    #[test]
    fn generation_budget_stops_strictly_after_the_cap() {
        let b = RunBudget::new().with_max_generations(5);
        assert!(!b.is_unlimited());
        assert_eq!(b.stop_reason(5, 0, Duration::ZERO), StopReason::Completed);
        assert_eq!(b.stop_reason(6, 0, Duration::ZERO), StopReason::GenerationBudget);
    }

    #[test]
    fn eval_budget_stops_at_or_past_the_cap() {
        let b = RunBudget::new().with_max_evaluations(100);
        assert_eq!(b.stop_reason(1, 99, Duration::ZERO), StopReason::Completed);
        assert_eq!(b.stop_reason(1, 100, Duration::ZERO), StopReason::EvalBudget);
        assert_eq!(b.stop_reason(1, 250, Duration::ZERO), StopReason::EvalBudget);
    }

    #[test]
    fn deadline_uses_the_injected_clock() {
        let now = Arc::new(Mutex::new(Duration::from_secs(100)));
        let reader = Arc::clone(&now);
        let clock: SharedClock = Arc::new(move || *reader.lock().unwrap());
        let b = RunBudget::new().with_deadline(Duration::from_secs(10)).with_clock(clock);
        let timer = b.start_timer();
        assert_eq!(b.stop_reason(1, 0, timer.elapsed()), StopReason::Completed);
        *now.lock().unwrap() = Duration::from_secs(109);
        assert_eq!(b.stop_reason(1, 0, timer.elapsed()), StopReason::Completed);
        *now.lock().unwrap() = Duration::from_secs(110);
        assert_eq!(b.stop_reason(1, 0, timer.elapsed()), StopReason::DeadlineExceeded);
    }

    #[test]
    fn deadline_landing_exactly_on_a_generation_boundary_stops() {
        // elapsed == deadline at the boundary check is a stop, not a
        // keep-going: the comparison is `>=`, so a run whose clock lands
        // exactly on the deadline at a boundary never sneaks in another
        // generation.
        let now = Arc::new(Mutex::new(Duration::ZERO));
        let reader = Arc::clone(&now);
        let clock: SharedClock = Arc::new(move || *reader.lock().unwrap());
        let b = RunBudget::new().with_deadline(Duration::from_secs(10)).with_clock(clock);
        let timer = b.start_timer();
        *now.lock().unwrap() = Duration::from_secs(10);
        assert_eq!(timer.elapsed(), Duration::from_secs(10), "clock landed exactly on deadline");
        assert_eq!(b.stop_reason(3, 0, timer.elapsed()), StopReason::DeadlineExceeded);
        // One nanosecond earlier the run continues.
        *now.lock().unwrap() = Duration::from_secs(10) - Duration::from_nanos(1);
        assert_eq!(b.stop_reason(3, 0, timer.elapsed()), StopReason::Completed);
    }

    #[test]
    fn restarted_timer_measures_from_the_resume_not_the_original_origin() {
        // A resumed run calls start_timer() afresh: the deadline budgets
        // the *resumed* process, so a run stopped by DeadlineExceeded does
        // not instantly re-stop on resume.
        let now = Arc::new(Mutex::new(Duration::from_secs(50)));
        let reader = Arc::clone(&now);
        let clock: SharedClock = Arc::new(move || *reader.lock().unwrap());
        let b = RunBudget::new().with_deadline(Duration::from_secs(10)).with_clock(clock);

        let first = b.start_timer();
        *now.lock().unwrap() = Duration::from_secs(60);
        assert_eq!(b.stop_reason(1, 0, first.elapsed()), StopReason::DeadlineExceeded);

        // The "resume": a fresh timer against the same (advanced) clock.
        let resumed = b.start_timer();
        assert_eq!(resumed.elapsed(), Duration::ZERO);
        assert_eq!(b.stop_reason(1, 0, resumed.elapsed()), StopReason::Completed);
        *now.lock().unwrap() = Duration::from_secs(69);
        assert_eq!(b.stop_reason(1, 0, resumed.elapsed()), StopReason::Completed);
        *now.lock().unwrap() = Duration::from_secs(70);
        assert_eq!(b.stop_reason(1, 0, resumed.elapsed()), StopReason::DeadlineExceeded);
    }

    #[test]
    fn cancel_flag_takes_priority_over_every_other_limit() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = RunBudget::new()
            .with_max_generations(0)
            .with_max_evaluations(0)
            .with_cancel_flag(Arc::clone(&flag));
        assert_eq!(b.stop_reason(1, 1, Duration::ZERO), StopReason::EvalBudget);
        flag.store(true, Ordering::Release);
        assert_eq!(b.stop_reason(1, 1, Duration::ZERO), StopReason::Cancelled);
        assert!(b.cancel_flag().is_some());
    }

    #[test]
    fn stop_reason_labels_are_stable() {
        let all = [
            StopReason::Completed,
            StopReason::GenerationBudget,
            StopReason::EvalBudget,
            StopReason::DeadlineExceeded,
            StopReason::Cancelled,
        ];
        let labels: Vec<&str> = all.iter().map(|r| r.as_str()).collect();
        assert_eq!(
            labels,
            ["completed", "generation_budget", "eval_budget", "deadline_exceeded", "cancelled"]
        );
        assert!(!StopReason::Completed.is_interrupted());
        assert!(all[1..].iter().all(|r| r.is_interrupted()));
        assert_eq!(StopReason::default(), StopReason::Completed);
        assert_eq!(format!("{}", StopReason::Cancelled), "cancelled");
    }

    #[test]
    fn real_timer_elapsed_is_monotone() {
        let b = RunBudget::new();
        let timer = b.start_timer();
        let a = timer.elapsed();
        let c = timer.elapsed();
        assert!(c >= a);
        assert!(format!("{timer:?}").contains("Real"));
    }
}
