//! # nautilus-ga — baseline genetic algorithm over IP parameter spaces
//!
//! This crate is the GA substrate of the Nautilus (DAC 2015) reproduction.
//! It provides everything the paper's Section 2 ("Background: Genetic
//! Algorithms") requires:
//!
//! * **Genetic representation** — [`ParamSpace`] describes a hardware IP's
//!   discrete parameter lattice (integer ranges, power-of-two ranges,
//!   categorical choices, feature flags); a [`Genome`] stores one domain
//!   index per parameter.
//! * **Genetic operators** — per-gene [`UniformMutation`] and localized
//!   [`StepMutation`]; [`OnePointCrossover`], [`TwoPointCrossover`] and
//!   [`UniformCrossover`]; [`Tournament`], [`RankRoulette`] and
//!   [`Truncation`] parent selection. All are trait objects so the
//!   `nautilus` crate can substitute *guided* operators.
//! * **Fitness** — [`FitnessFn`] with an explicit optimization
//!   [`Direction`] and infeasibility support.
//! * **The engine** — [`GaEngine`] runs the generational loop with elitism
//!   and records per-generation [`GenStats`]. All evaluations go through an
//!   [`EvalCache`], whose distinct-miss count is the paper's "# designs
//!   evaluated" cost metric.
//!
//! ## Example
//!
//! ```
//! use nautilus_ga::{Direction, FnFitness, GaEngine, Genome, ParamSpace};
//! # fn main() -> Result<(), nautilus_ga::GaError> {
//! let space = ParamSpace::builder()
//!     .int_list("buffer_depth", [1, 2, 4, 8, 16])
//!     .pow2("flit_width", 5, 7)
//!     .choices("allocator", ["round_robin", "matrix", "wavefront"])
//!     .build()?;
//!
//! // A toy "synthesis model": LUTs grow with depth * width.
//! let luts = FnFitness::new(Direction::Minimize, move |g: &Genome| {
//!     Some((g.gene_at(0) as f64 + 1.0) * (g.gene_at(1) as f64 + 1.0) * 100.0)
//! });
//!
//! let run = GaEngine::new(&space, &luts).run(0xC0FFEE)?;
//! println!("best {} after {} synthesis jobs", run.best_value, run.total_evals());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod budget;
mod cache;
pub mod checkpoint;
pub mod durable;
mod engine;
mod error;
mod fallible;
mod fitness;
mod genome;
pub mod ops;
mod param;
pub mod pool;
pub mod rng;
mod select;
mod space;
mod stats;
mod supervise;

pub use arena::PopArena;
pub use budget::{BudgetTimer, RunBudget, SharedClock, StopReason};
pub use cache::{CacheSnapshot, CacheStats, EvalCache};
pub use checkpoint::{CheckpointError, CheckpointStore, Recovery, SearchState, WriteReceipt};
pub use durable::{fault_label, DurableIo, IoFaultKind, IoFaultPlan, WritePoint};
pub use engine::{AuxSnapshotFn, GaEngine, GaRun, GaSettings, GenStats, AUX_BREAKER};
pub use error::{GaError, Result};
pub use fallible::{
    evaluate_with_retries, retry_backoff, EvalFailure, EvalRecord, FallibleEvaluator, FaultStats,
    FnFallible, RetryPolicy,
};
pub use fitness::{Direction, FitnessFn, FnFitness, GeneRows};
pub use genome::Genome;
pub use ops::{
    CrossoverOp, MutationOp, OnePointCrossover, OpCtx, StepMutation, TwoPointCrossover,
    UniformCrossover, UniformMutation,
};
pub use param::{ParamDef, ParamDomain, ParamId};
pub use pool::{BatchTicket, EvalPool};
pub use select::{
    FitnessProportional, RankRoulette, ScoredGenome, Selector, Tournament, Truncation,
};
pub use space::{DesignPoint, FullSweep, ParamSpace, ParamSpaceBuilder};
pub use stats::{pearson, spearman, Summary};
pub use supervise::{
    Admission, AttemptOutcome, BreakerPolicy, CircuitBreaker, HedgePolicy, NeverHangs,
    ReclaimableWorker, SupervisableEvaluator, SupervisePolicy, SuperviseSession, SuperviseStats,
    Supervisor, WatchdogPolicy, HEDGE_ATTEMPT_BIT,
};
pub use value::ParamValue;

mod value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParamSpace>();
        assert_send_sync::<Genome>();
        assert_send_sync::<EvalCache>();
        assert_send_sync::<GaSettings>();
        assert_send_sync::<GaError>();
        assert_send_sync::<Box<dyn MutationOp>>();
        assert_send_sync::<Box<dyn CrossoverOp>>();
        assert_send_sync::<Box<dyn Selector>>();
        assert_send_sync::<EvalFailure>();
        assert_send_sync::<RetryPolicy>();
        assert_send_sync::<FaultStats>();
        assert_send_sync::<Box<dyn FallibleEvaluator>>();
        assert_send_sync::<Box<dyn SupervisableEvaluator>>();
        assert_send_sync::<SupervisePolicy>();
        assert_send_sync::<SuperviseStats>();
        assert_send_sync::<CircuitBreaker>();
        assert_send_sync::<DurableIo>();
        assert_send_sync::<IoFaultPlan>();
    }
}
