//! Deterministic seeding and hashing utilities.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed.
//! Experiments that average over many runs derive per-run seeds with
//! [`derive_seed`], and surrogate cost models derive *stateless* per-design
//! "synthesis noise" from [`splitmix64`] so that a design point always
//! synthesizes to the same numbers, independent of search order.

/// Advances `x` through one round of the SplitMix64 permutation.
///
/// SplitMix64 is a small, high-quality 64-bit mixing function (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA'14). It is used
/// here as a hash, not as a sequential generator.
///
/// ```
/// use nautilus_ga::rng::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
#[inline]
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for logical stream `stream` from `base`.
///
/// Used to fan one experiment seed out into per-run, per-thread, or
/// per-strategy seeds without correlation between streams.
///
/// ```
/// use nautilus_ga::rng::derive_seed;
/// let a = derive_seed(7, 0);
/// let b = derive_seed(7, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(7, 0));
/// ```
#[inline]
#[must_use]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Maps a hash to a float uniformly distributed in `[0, 1)`.
///
/// ```
/// use nautilus_ga::rng::{mix_to_unit, splitmix64};
/// let u = mix_to_unit(splitmix64(123));
/// assert!((0.0..1.0).contains(&u));
/// ```
#[inline]
#[must_use]
pub fn mix_to_unit(h: u64) -> f64 {
    // 53 high bits -> [0,1) with full double precision.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a hash to a float uniformly distributed in `[-1, 1)`.
#[inline]
#[must_use]
pub fn mix_to_signed_unit(h: u64) -> f64 {
    mix_to_unit(h) * 2.0 - 1.0
}

/// Combines hash inputs into one 64-bit hash (order dependent).
///
/// ```
/// use nautilus_ga::rng::hash_combine;
/// assert_ne!(hash_combine(1, 2), hash_combine(2, 1));
/// ```
#[inline]
#[must_use]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    splitmix64(a ^ b.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Hashes a slice of gene indices together with a `salt`.
///
/// Cost models use this to produce deterministic per-design noise that is
/// uncorrelated between metrics (different salts).
#[must_use]
pub fn hash_genes(genes: &[u32], salt: u64) -> u64 {
    let mut h = splitmix64(salt);
    for (i, &g) in genes.iter().enumerate() {
        h = hash_combine(h, splitmix64((g as u64) << 32 | i as u64));
    }
    h
}

/// The engine's serializable random source: xoshiro256** seeded via
/// SplitMix64.
///
/// [`GaEngine`](crate::GaEngine) owns its whole random stream through this
/// type rather than an opaque library generator so that the exact stream
/// position can be captured into a checkpoint ([`SearchRng::state`]) and
/// restored on resume ([`SearchRng::from_state`]) — a resumed run then
/// draws the very same numbers an uninterrupted run would have drawn.
/// The stream is workspace-owned and stable across library versions;
/// checkpoint compatibility depends on that.
///
/// ```
/// use nautilus_ga::rng::SearchRng;
/// use rand::Rng as _;
/// let mut a = SearchRng::seed_from_u64(42);
/// let saved = a.state();
/// let expect: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
/// let mut b = SearchRng::from_state(saved);
/// let replay: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
/// assert_eq!(expect, replay);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRng {
    s: [u64; 4],
}

impl SearchRng {
    /// Expands a 64-bit seed into the full generator state with four
    /// rounds of SplitMix64, exactly like `rand::rngs::StdRng` in this
    /// workspace's offline build.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SearchRng {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SearchRng { s: [next(), next(), next(), next()] }
    }

    /// The current stream position, suitable for checkpointing.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at a previously captured stream position.
    ///
    /// The all-zero state is the xoshiro fixed point (it only ever emits
    /// zero); it cannot arise from [`SearchRng::seed_from_u64`], so a
    /// restored checkpoint never hits it.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> SearchRng {
        SearchRng { s }
    }
}

impl rand::Rng for SearchRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_eq!(a, splitmix64(0));
        assert_ne!(a, b);
        // Avalanche sanity: flipping one input bit flips many output bits.
        let diff = (a ^ b).count_ones();
        assert!(diff > 16, "weak diffusion: {diff} bits");
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams() {
        let base = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000 {
            assert!(seen.insert(derive_seed(base, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn unit_mapping_stays_in_range() {
        for i in 0..10_000u64 {
            let u = mix_to_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u), "{u} out of range");
            let s = mix_to_signed_unit(splitmix64(i));
            assert!((-1.0..1.0).contains(&s), "{s} out of range");
        }
    }

    #[test]
    fn unit_mapping_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| mix_to_unit(splitmix64(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn hash_genes_sensitive_to_position_value_and_salt() {
        let a = hash_genes(&[1, 2, 3], 0);
        assert_ne!(a, hash_genes(&[3, 2, 1], 0));
        assert_ne!(a, hash_genes(&[1, 2, 3], 1));
        assert_ne!(a, hash_genes(&[1, 2], 0));
        assert_eq!(a, hash_genes(&[1, 2, 3], 0));
    }

    #[test]
    fn search_rng_matches_the_std_rng_stream() {
        use rand::Rng as _;
        use rand::SeedableRng as _;
        // Seed compatibility: runs recorded before the engine switched to
        // SearchRng must replay identically (offline StdRng stream).
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let mut std = rand::rngs::StdRng::seed_from_u64(seed);
            let mut own = SearchRng::seed_from_u64(seed);
            for i in 0..512 {
                assert_eq!(std.next_u64(), own.next_u64(), "diverged at seed {seed} draw {i}");
            }
        }
    }

    #[test]
    fn search_rng_state_round_trips_mid_stream() {
        use rand::Rng as _;
        let mut rng = SearchRng::seed_from_u64(1234);
        for _ in 0..37 {
            rng.next_u64();
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut resumed = SearchRng::from_state(saved);
        let replay: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, replay, "resumed stream must continue exactly");
    }

    #[test]
    fn search_rng_ext_methods_work_through_the_trait() {
        let mut rng = SearchRng::seed_from_u64(5);
        let u: f64 = rand::RngExt::random(&mut rng);
        assert!((0.0..1.0).contains(&u));
        let v = rand::RngExt::random_range(&mut rng, 0u32..10);
        assert!(v < 10);
    }
}
