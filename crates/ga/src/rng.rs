//! Deterministic seeding and hashing utilities.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed.
//! Experiments that average over many runs derive per-run seeds with
//! [`derive_seed`], and surrogate cost models derive *stateless* per-design
//! "synthesis noise" from [`splitmix64`] so that a design point always
//! synthesizes to the same numbers, independent of search order.

/// Advances `x` through one round of the SplitMix64 permutation.
///
/// SplitMix64 is a small, high-quality 64-bit mixing function (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA'14). It is used
/// here as a hash, not as a sequential generator.
///
/// ```
/// use nautilus_ga::rng::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
#[inline]
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for logical stream `stream` from `base`.
///
/// Used to fan one experiment seed out into per-run, per-thread, or
/// per-strategy seeds without correlation between streams.
///
/// ```
/// use nautilus_ga::rng::derive_seed;
/// let a = derive_seed(7, 0);
/// let b = derive_seed(7, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(7, 0));
/// ```
#[inline]
#[must_use]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Maps a hash to a float uniformly distributed in `[0, 1)`.
///
/// ```
/// use nautilus_ga::rng::{mix_to_unit, splitmix64};
/// let u = mix_to_unit(splitmix64(123));
/// assert!((0.0..1.0).contains(&u));
/// ```
#[inline]
#[must_use]
pub fn mix_to_unit(h: u64) -> f64 {
    // 53 high bits -> [0,1) with full double precision.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a hash to a float uniformly distributed in `[-1, 1)`.
#[inline]
#[must_use]
pub fn mix_to_signed_unit(h: u64) -> f64 {
    mix_to_unit(h) * 2.0 - 1.0
}

/// Combines hash inputs into one 64-bit hash (order dependent).
///
/// ```
/// use nautilus_ga::rng::hash_combine;
/// assert_ne!(hash_combine(1, 2), hash_combine(2, 1));
/// ```
#[inline]
#[must_use]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    splitmix64(a ^ b.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Hashes a slice of gene indices together with a `salt`.
///
/// Cost models use this to produce deterministic per-design noise that is
/// uncorrelated between metrics (different salts).
#[must_use]
pub fn hash_genes(genes: &[u32], salt: u64) -> u64 {
    let mut h = splitmix64(salt);
    for (i, &g) in genes.iter().enumerate() {
        h = hash_combine(h, splitmix64((g as u64) << 32 | i as u64));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_eq!(a, splitmix64(0));
        assert_ne!(a, b);
        // Avalanche sanity: flipping one input bit flips many output bits.
        let diff = (a ^ b).count_ones();
        assert!(diff > 16, "weak diffusion: {diff} bits");
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams() {
        let base = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000 {
            assert!(seen.insert(derive_seed(base, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn unit_mapping_stays_in_range() {
        for i in 0..10_000u64 {
            let u = mix_to_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u), "{u} out of range");
            let s = mix_to_signed_unit(splitmix64(i));
            assert!((-1.0..1.0).contains(&s), "{s} out of range");
        }
    }

    #[test]
    fn unit_mapping_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| mix_to_unit(splitmix64(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn hash_genes_sensitive_to_position_value_and_salt() {
        let a = hash_genes(&[1, 2, 3], 0);
        assert_ne!(a, hash_genes(&[3, 2, 1], 0));
        assert_ne!(a, hash_genes(&[1, 2, 3], 1));
        assert_ne!(a, hash_genes(&[1, 2], 0));
        assert_eq!(a, hash_genes(&[1, 2, 3], 0));
    }
}
