//! Durable checkpoint/resume for the generational GA.
//!
//! A [`SearchState`] captures everything the engine needs to continue a
//! run deterministically from a generation boundary: the RNG stream
//! position, the breeding population, the full evaluation cache (with the
//! quarantine set), fault counters, per-generation history, and a set of
//! opaque auxiliary blobs for higher layers (the `nautilus` crate stores
//! its report snapshot and synthesis-job offsets there). Resuming from a
//! checkpoint and running to completion produces *byte-identical* results
//! to an uninterrupted run at any worker count.
//!
//! # On-disk record layout
//!
//! ```text
//! +----------+---------------+----------------+--------+-------------+
//! | MAGIC(8) | schema u32 LE | body_len u64 LE| body   | crc32 u32 LE|
//! +----------+---------------+----------------+--------+-------------+
//! ```
//!
//! * `MAGIC` is the fixed tag `b"NAUTCKPT"`.
//! * `schema` is [`SCHEMA_VERSION`]; readers reject versions they do not
//!   understand rather than guessing at field layouts.
//! * `body` is the wire-encoded [`SearchState`] (little-endian, length-
//!   prefixed; see `nautilus_obs::wire`).
//! * `crc32` is the CRC-32 (IEEE) of *everything before it* (magic,
//!   schema, length, body), so header corruption is caught too.
//!
//! Writes are crash-safe: the record is written to a dot-prefixed
//! temporary in the same directory, `fsync`ed, atomically renamed into
//! place, and the directory is `fsync`ed. A crash at any instant leaves
//! either the old file set or the new one — never a half-written record
//! under a final name.
//!
//! # Retention
//!
//! [`CheckpointStore`] keeps the newest `keep_last` generation files
//! (`ckpt-XXXXXXXX.nckpt`, default 3) plus a pinned `best.nckpt` holding
//! the checkpoint whose best-so-far value was strongest. Recovery scans
//! generation files newest-first, falling back across corrupt or
//! truncated files (each reported, never silently skipped) and finally to
//! `best.nckpt`.

use std::fs;
use std::path::{Path, PathBuf};

use nautilus_obs::{SearchEvent, SearchObserver, WireError, WireReader, WireWriter};

use crate::cache::CacheSnapshot;
use crate::durable::DurableIo;
use crate::engine::{GaSettings, GenStats};
use crate::fallible::FaultStats;
use crate::genome::Genome;

/// Fixed 8-byte tag opening every checkpoint record.
pub const MAGIC: &[u8; 8] = b"NAUTCKPT";

/// Current checkpoint schema version. Bump on any layout change; readers
/// reject unknown versions outright (schema evolution happens by explicit
/// migration, never by guessing).
pub const SCHEMA_VERSION: u32 = 1;

/// File extension for checkpoint records.
pub const EXTENSION: &str = "nckpt";

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) of `bytes`.
///
/// Bitwise implementation — checkpoints are small and written at
/// generation cadence, so a lookup table buys nothing measurable.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Errors from checkpoint encoding, decoding, or storage.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
    /// The record does not start with [`MAGIC`].
    BadMagic,
    /// The record's schema version is not one this build understands.
    UnsupportedVersion(u32),
    /// The record ends before its declared length.
    Truncated,
    /// The CRC-32 over the record does not match its trailer.
    BadCrc {
        /// Checksum recomputed from the record contents.
        computed: u32,
        /// Checksum stored in the record trailer.
        stored: u32,
    },
    /// The body failed structural decoding despite a valid checksum.
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o failure: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint schema version {v}")
            }
            CheckpointError::Truncated => write!(f, "truncated checkpoint record"),
            CheckpointError::BadCrc { computed, stored } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, stored {stored:#010x}")
            }
            CheckpointError::Malformed(reason) => write!(f, "malformed checkpoint body: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Malformed(e.0)
    }
}

/// The complete deterministic state of a GA run at a generation boundary.
///
/// `generation` is the *next* generation to score: a state checkpointed
/// after breeding generation `g`'s offspring carries `generation == g + 1`
/// and the freshly bred population. Resuming scores that population and
/// continues exactly as the uninterrupted run would have.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchState {
    /// Seed the run was started with (identifies the logical run).
    pub seed: u64,
    /// Strategy label from the engine.
    pub run_label: String,
    /// Scalar settings of the run (validated for compatibility on resume).
    pub settings: GaSettings,
    /// Next generation to score (always ≥ 1: the earliest boundary is
    /// after generation 0 has been scored and bred).
    pub generation: u32,
    /// RNG stream position (xoshiro256** state words).
    pub rng: [u64; 4],
    /// The population awaiting scoring.
    pub population: Vec<Genome>,
    /// Per-generation history accumulated so far.
    pub history: Vec<GenStats>,
    /// Best genome found so far, if any generation had a feasible member.
    pub best_genome: Option<Genome>,
    /// Raw metric value of `best_genome` (direction's worst value if none).
    pub best_value: f64,
    /// Sampling attempts consumed building the initial population.
    pub init_attempts: usize,
    /// Full evaluation-cache dump (entries, quarantine set, counters).
    pub cache: CacheSnapshot,
    /// Failure/retry/quarantine counters.
    pub faults: FaultStats,
    /// Opaque auxiliary blobs for higher layers, keyed by name (e.g.
    /// `"obs.report"`, `"synth.jobs"`). Preserved byte-for-byte.
    pub aux: Vec<(String, Vec<u8>)>,
}

impl SearchState {
    /// The auxiliary blob stored under `key`, if any.
    #[must_use]
    pub fn aux_blob(&self, key: &str) -> Option<&[u8]> {
        self.aux.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_slice())
    }

    /// Encodes the state as a complete checkpoint record (header, body,
    /// CRC trailer) ready to be written to disk.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = WireWriter::new();
        body.u64(self.seed);
        body.str(&self.run_label);
        body.usize(self.settings.population);
        body.u32(self.settings.generations);
        body.f64(self.settings.crossover_rate);
        body.usize(self.settings.elitism);
        body.usize(self.settings.init_retries);
        body.usize(self.settings.eval_workers);
        body.u32(self.generation);
        for word in &self.rng {
            body.u64(*word);
        }
        encode_genomes(&mut body, &self.population);
        body.usize(self.history.len());
        for h in &self.history {
            body.u32(h.generation);
            body.u64(h.distinct_evals);
            body.f64(h.best_value);
            body.f64(h.mean_value);
            body.f64(h.best_so_far);
        }
        match &self.best_genome {
            Some(g) => {
                body.bool(true);
                encode_genome(&mut body, g);
            }
            None => body.bool(false),
        }
        body.f64(self.best_value);
        body.usize(self.init_attempts);
        body.usize(self.cache.entries.len());
        for (g, v) in &self.cache.entries {
            encode_genome(&mut body, g);
            match v {
                Some(x) => {
                    body.bool(true);
                    body.f64(*x);
                }
                None => body.bool(false),
            }
        }
        encode_genomes(&mut body, &self.cache.quarantined);
        body.u64(self.cache.hits);
        body.u64(self.cache.feasible_misses);
        body.u64(self.cache.infeasible_misses);
        body.u64(self.faults.evals_failed);
        body.u64(self.faults.retries);
        body.u64(self.faults.retries_recovered);
        body.u64(self.faults.quarantined);
        for n in &self.faults.failed_attempts {
            body.u64(*n);
        }
        body.usize(self.aux.len());
        for (key, blob) in &self.aux {
            body.str(key);
            body.bytes(blob);
        }
        let body = body.into_bytes();

        let mut record = Vec::with_capacity(MAGIC.len() + 12 + body.len() + 4);
        record.extend_from_slice(MAGIC);
        record.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        record.extend_from_slice(&(body.len() as u64).to_le_bytes());
        record.extend_from_slice(&body);
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        record
    }

    /// Decodes and validates a checkpoint record produced by
    /// [`SearchState::encode`].
    ///
    /// # Errors
    ///
    /// Any deviation — wrong magic, unknown schema, truncation, checksum
    /// mismatch, structural garbage — is an error; corruption is never
    /// silently accepted.
    pub fn decode(record: &[u8]) -> Result<SearchState, CheckpointError> {
        let header = MAGIC.len() + 4 + 8;
        if record.len() < header + 4 {
            return Err(if record.len() >= MAGIC.len() && &record[..MAGIC.len()] != MAGIC {
                CheckpointError::BadMagic
            } else {
                CheckpointError::Truncated
            });
        }
        if &record[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let schema = u32::from_le_bytes(record[8..12].try_into().expect("4 bytes"));
        if schema != SCHEMA_VERSION {
            return Err(CheckpointError::UnsupportedVersion(schema));
        }
        let body_len = u64::from_le_bytes(record[12..20].try_into().expect("8 bytes"));
        let Ok(body_len) = usize::try_from(body_len) else {
            return Err(CheckpointError::Truncated);
        };
        let expected = header
            .checked_add(body_len)
            .and_then(|n| n.checked_add(4))
            .ok_or(CheckpointError::Truncated)?;
        if record.len() != expected {
            return Err(CheckpointError::Truncated);
        }
        let crc_offset = header + body_len;
        let stored =
            u32::from_le_bytes(record[crc_offset..crc_offset + 4].try_into().expect("4 bytes"));
        let computed = crc32(&record[..crc_offset]);
        if computed != stored {
            return Err(CheckpointError::BadCrc { computed, stored });
        }

        let mut r = WireReader::new(&record[header..crc_offset]);
        let seed = r.u64()?;
        let run_label = r.str()?;
        let settings = GaSettings {
            population: r.len_prefix()?,
            generations: r.u32()?,
            crossover_rate: r.f64()?,
            elitism: r.len_prefix()?,
            init_retries: r.len_prefix()?,
            eval_workers: r.len_prefix()?,
        };
        let generation = r.u32()?;
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = r.u64()?;
        }
        let population = decode_genomes(&mut r)?;
        let n_history = r.len_prefix()?;
        let mut history = Vec::with_capacity(n_history.min(4096));
        for _ in 0..n_history {
            history.push(GenStats {
                generation: r.u32()?,
                distinct_evals: r.u64()?,
                best_value: r.f64()?,
                mean_value: r.f64()?,
                best_so_far: r.f64()?,
            });
        }
        let best_genome = if r.bool()? { Some(decode_genome(&mut r)?) } else { None };
        let best_value = r.f64()?;
        let init_attempts = r.len_prefix()?;
        let n_entries = r.len_prefix()?;
        let mut entries = Vec::with_capacity(n_entries.min(4096));
        for _ in 0..n_entries {
            let g = decode_genome(&mut r)?;
            let v = if r.bool()? { Some(r.f64()?) } else { None };
            entries.push((g, v));
        }
        let quarantined = decode_genomes(&mut r)?;
        let cache = CacheSnapshot {
            entries,
            quarantined,
            hits: r.u64()?,
            feasible_misses: r.u64()?,
            infeasible_misses: r.u64()?,
        };
        let mut faults = FaultStats {
            evals_failed: r.u64()?,
            retries: r.u64()?,
            retries_recovered: r.u64()?,
            quarantined: r.u64()?,
            ..FaultStats::default()
        };
        for slot in &mut faults.failed_attempts {
            *slot = r.u64()?;
        }
        let n_aux = r.len_prefix()?;
        let mut aux = Vec::with_capacity(n_aux.min(64));
        for _ in 0..n_aux {
            let key = r.str()?;
            let blob = r.bytes()?.to_vec();
            aux.push((key, blob));
        }
        r.finish()?;
        Ok(SearchState {
            seed,
            run_label,
            settings,
            generation,
            rng,
            population,
            history,
            best_genome,
            best_value,
            init_attempts,
            cache,
            faults,
            aux,
        })
    }
}

fn encode_genome(w: &mut WireWriter, g: &Genome) {
    w.usize(g.len());
    for &gene in g.genes() {
        w.u32(gene);
    }
}

fn decode_genome(r: &mut WireReader<'_>) -> Result<Genome, WireError> {
    let n = r.len_prefix()?;
    if n > r.remaining() / 4 {
        return Err(WireError(format!("genome length {n} exceeds record")));
    }
    let mut genes = Vec::with_capacity(n);
    for _ in 0..n {
        genes.push(r.u32()?);
    }
    Ok(Genome::from_genes(genes))
}

fn encode_genomes(w: &mut WireWriter, gs: &[Genome]) {
    w.usize(gs.len());
    for g in gs {
        encode_genome(w, g);
    }
}

fn decode_genomes(r: &mut WireReader<'_>) -> Result<Vec<Genome>, WireError> {
    let n = r.len_prefix()?;
    let mut gs = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        gs.push(decode_genome(r)?);
    }
    Ok(gs)
}

/// Receipt returned by a successful [`CheckpointStore::write`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Final path of the durable checkpoint file.
    pub path: PathBuf,
    /// Size of the record in bytes.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent encoding, writing, syncing, renaming.
    pub write_nanos: u64,
}

/// Outcome of scanning a checkpoint directory for the newest intact state.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The newest state that decoded and validated, if any.
    pub state: Option<SearchState>,
    /// Path the state was loaded from.
    pub path: Option<PathBuf>,
    /// Files that failed validation, newest-first, with the reason each
    /// was skipped.
    pub skipped: Vec<(PathBuf, String)>,
}

impl Recovery {
    /// Replays this recovery's telemetry onto `obs`: one
    /// [`SearchEvent::CheckpointCorruptSkipped`] per rejected file, then a
    /// [`SearchEvent::CheckpointRestored`] if a state was loaded.
    ///
    /// Useful when the observer is assembled *after* recovery — e.g. a
    /// report builder restored from the recovered state's own aux blob.
    pub fn replay(&self, obs: &dyn SearchObserver) {
        if !obs.enabled() {
            return;
        }
        for (path, reason) in &self.skipped {
            obs.on_event(&SearchEvent::CheckpointCorruptSkipped {
                path: path.display().to_string(),
                reason: reason.clone(),
            });
        }
        if let (Some(state), Some(path)) = (&self.state, &self.path) {
            obs.on_event(&SearchEvent::CheckpointRestored {
                generation: state.generation,
                path: path.display().to_string(),
            });
        }
    }
}

/// A directory of durable, versioned, checksummed checkpoint records with
/// keep-last-K retention and a pinned best-so-far record.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep_last: usize,
    io: DurableIo,
}

impl CheckpointStore {
    /// Opens (creating if needed) `dir` as a checkpoint directory with the
    /// default retention of 3 generation files.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, keep_last: 3, io: DurableIo::real() })
    }

    /// Routes this store's durable writes through `io` — the fault
    /// injection / census handle of [`crate::durable`]. The default is
    /// the pass-through real-filesystem handle.
    #[must_use]
    pub fn with_io(mut self, io: DurableIo) -> CheckpointStore {
        self.io = io;
        self
    }

    /// Sets how many generation checkpoints to retain (minimum 1). The
    /// pinned `best.nckpt` is kept in addition to this budget.
    #[must_use]
    pub fn with_keep_last(mut self, keep_last: usize) -> CheckpointStore {
        self.keep_last = keep_last.max(1);
        self
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn generation_path(&self, generation: u32) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:08}.{EXTENSION}"))
    }

    fn best_path(&self) -> PathBuf {
        self.dir.join(format!("best.{EXTENSION}"))
    }

    /// Durably writes `state` as `ckpt-GGGGGGGG.nckpt`, applies retention,
    /// and — when `pin_best` — also refreshes `best.nckpt` with the same
    /// record.
    ///
    /// Crash-safety: record bytes go to a dot-prefixed temporary, which is
    /// `fsync`ed, renamed over the final name, after which the directory
    /// entry is `fsync`ed. A crash mid-write leaves a stray `.tmp` (cleaned
    /// by the next recovery scan), never a corrupt final file from this
    /// code path.
    ///
    /// A *failed* write (disk full, permission error, blocked rename)
    /// removes its temporary before returning, so repeated failures
    /// cannot litter the directory, and never touches the finished
    /// checkpoints already present: the store stays fully recoverable to
    /// its pre-failure state.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on any filesystem failure.
    pub fn write(
        &self,
        state: &SearchState,
        pin_best: bool,
    ) -> Result<WriteReceipt, CheckpointError> {
        let started = std::time::Instant::now();
        let record = state.encode();
        let final_path = self.generation_path(state.generation);
        self.write_atomic(&final_path, &record, "ckpt.gen")?;
        if pin_best {
            self.write_atomic(&self.best_path(), &record, "ckpt.best")?;
        }
        self.apply_retention()?;
        Ok(WriteReceipt {
            path: final_path,
            bytes: record.len() as u64,
            write_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        })
    }

    fn write_atomic(
        &self,
        final_path: &Path,
        record: &[u8],
        site: &str,
    ) -> Result<(), CheckpointError> {
        let file_name = final_path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| CheckpointError::Malformed("non-utf8 checkpoint name".into()))?;
        // The tmp/fsync/rename/dir-fsync discipline (and its cleanup on
        // failure) lives in [`DurableIo`], shared with every other
        // durable writer in the workspace and fault-injectable there.
        self.io.write_atomic(&self.dir, file_name, record, site)?;
        Ok(())
    }

    fn apply_retention(&self) -> Result<(), CheckpointError> {
        let mut files = self.checkpoint_files()?;
        while files.len() > self.keep_last {
            let (path, _) = files.remove(0); // oldest first
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Generation checkpoint files present, sorted oldest-first by
    /// generation number (ignores `best.nckpt` and temporaries).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the directory cannot be read.
    pub fn checkpoint_files(&self) -> Result<Vec<(PathBuf, u32)>, CheckpointError> {
        let mut files = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(stem) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(&format!(".{EXTENSION}")))
            else {
                continue;
            };
            if let Ok(generation) = stem.parse::<u32>() {
                files.push((path, generation));
            }
        }
        files.sort_by_key(|&(_, generation)| generation);
        Ok(files)
    }

    /// Loads and validates one specific checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and every validation error from
    /// [`SearchState::decode`].
    pub fn load(&self, path: &Path) -> Result<SearchState, CheckpointError> {
        let record = fs::read(path)?;
        SearchState::decode(&record)
    }

    /// Scans for the newest intact checkpoint: generation files
    /// newest-first, then `best.nckpt`. Corrupt or truncated files are
    /// recorded in [`Recovery::skipped`] (never silently accepted) and the
    /// scan falls back to the next candidate. Stray `.tmp` files from
    /// interrupted writes are removed.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] only for directory-level failures;
    /// per-file problems become `skipped` entries.
    pub fn recover(&self) -> Result<Recovery, CheckpointError> {
        // Clean up interrupted writes first: a `.tmp` never counts as a
        // checkpoint (the rename that publishes it did not happen).
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with('.') && n.ends_with(".tmp"))
            {
                let _ = fs::remove_file(&path);
            }
        }
        let mut recovery = Recovery::default();
        let mut candidates: Vec<PathBuf> =
            self.checkpoint_files()?.into_iter().rev().map(|(p, _)| p).collect();
        let best = self.best_path();
        if best.exists() {
            candidates.push(best);
        }
        for path in candidates {
            match self.load(&path) {
                Ok(state) => {
                    recovery.state = Some(state);
                    recovery.path = Some(path);
                    break;
                }
                Err(err) => recovery.skipped.push((path, err.to_string())),
            }
        }
        Ok(recovery)
    }

    /// Like [`CheckpointStore::recover`], additionally reporting progress
    /// on `obs`: one [`SearchEvent::CheckpointCorruptSkipped`] per rejected
    /// file and a [`SearchEvent::CheckpointRestored`] for the state loaded.
    ///
    /// # Errors
    ///
    /// Same as [`CheckpointStore::recover`].
    pub fn recover_observed(&self, obs: &dyn SearchObserver) -> Result<Recovery, CheckpointError> {
        let recovery = self.recover()?;
        recovery.replay(obs);
        Ok(recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> SearchState {
        SearchState {
            seed: 42,
            run_label: "guided".into(),
            settings: GaSettings { population: 4, generations: 10, ..GaSettings::default() },
            generation: 3,
            rng: [1, 2, 3, 4],
            population: vec![Genome::from_genes(vec![0, 1, 2]), Genome::from_genes(vec![3, 4, 5])],
            history: vec![
                GenStats {
                    generation: 0,
                    distinct_evals: 4,
                    best_value: 9.0,
                    mean_value: 12.0,
                    best_so_far: 9.0,
                },
                GenStats {
                    generation: 1,
                    distinct_evals: 6,
                    best_value: f64::NAN,
                    mean_value: f64::NAN,
                    best_so_far: 9.0,
                },
            ],
            best_genome: Some(Genome::from_genes(vec![0, 1, 2])),
            best_value: 9.0,
            init_attempts: 7,
            cache: CacheSnapshot {
                entries: vec![
                    (Genome::from_genes(vec![0, 1, 2]), Some(9.0)),
                    (Genome::from_genes(vec![9, 9, 9]), None),
                ],
                quarantined: vec![Genome::from_genes(vec![9, 9, 9])],
                hits: 11,
                feasible_misses: 5,
                infeasible_misses: 2,
            },
            faults: FaultStats {
                evals_failed: 1,
                retries: 2,
                retries_recovered: 0,
                quarantined: 1,
                failed_attempts: [1, 0, 0, 2],
            },
            aux: vec![("obs.report".into(), vec![1, 2, 3]), ("synth.jobs".into(), vec![])],
        }
    }

    fn states_equal(a: &SearchState, b: &SearchState) -> bool {
        // PartialEq on SearchState is false for NaN history entries;
        // compare via the encoded bytes, which are canonical.
        a.encode() == b.encode()
    }

    #[test]
    fn encode_decode_round_trips_including_nan() {
        let state = sample_state();
        let record = state.encode();
        let decoded = SearchState::decode(&record).expect("round trip");
        assert!(states_equal(&state, &decoded));
        assert!(decoded.history[1].best_value.is_nan(), "NaN must survive");
        assert_eq!(decoded.aux_blob("obs.report"), Some(&[1u8, 2, 3][..]));
        assert_eq!(decoded.aux_blob("synth.jobs"), Some(&[][..]));
        assert_eq!(decoded.aux_blob("missing"), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_prefix_truncation_is_detected() {
        let record = sample_state().encode();
        for cut in 0..record.len() {
            assert!(
                SearchState::decode(&record[..cut]).is_err(),
                "truncation at {cut}/{} silently accepted",
                record.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Deterministic sweep: flipping any one bit anywhere in the record
        // must fail validation (magic / version / length / CRC), never decode
        // to a different state. Complements the proptest variant, which only
        // samples in environments where proptest strategies execute.
        let record = sample_state().encode();
        for byte in 0..record.len() {
            for bit in 0..8 {
                let mut corrupt = record.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    SearchState::decode(&corrupt).is_err(),
                    "bit {bit} of byte {byte}/{} flipped without detection",
                    record.len()
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_bad_version_are_rejected() {
        let mut record = sample_state().encode();
        record[0] ^= 0xFF;
        assert!(matches!(SearchState::decode(&record), Err(CheckpointError::BadMagic)));
        let mut record = sample_state().encode();
        record[8] = 0xFF; // schema version byte
        assert!(matches!(
            SearchState::decode(&record),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn store_writes_loads_and_applies_retention() {
        let dir = tempdir("store-retention");
        let store = CheckpointStore::create(&dir).unwrap().with_keep_last(2);
        let mut state = sample_state();
        for generation in 1..=5 {
            state.generation = generation;
            let receipt = store.write(&state, generation == 3).unwrap();
            assert!(receipt.path.exists());
            assert_eq!(receipt.bytes, state.encode().len() as u64);
        }
        let files = store.checkpoint_files().unwrap();
        let gens: Vec<u32> = files.iter().map(|&(_, generation)| generation).collect();
        assert_eq!(gens, vec![4, 5], "keep-last-2 retention");
        assert!(store.dir().join("best.nckpt").exists(), "pinned best survives retention");
        let best = store.load(&store.dir().join("best.nckpt")).unwrap();
        assert_eq!(best.generation, 3);
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.state.unwrap().generation, 5);
        assert!(recovered.skipped.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_skips_corrupt_newest_and_cleans_tmp_files() {
        let dir = tempdir("store-recovery");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut state = sample_state();
        state.generation = 1;
        store.write(&state, false).unwrap();
        state.generation = 2;
        store.write(&state, false).unwrap();
        // Corrupt the newest file's body and strand a fake tmp write.
        let newest = store.dir().join("ckpt-00000002.nckpt");
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let stray = store.dir().join(".ckpt-00000003.nckpt.tmp");
        std::fs::write(&stray, b"partial").unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.state.as_ref().unwrap().generation, 1, "fell back past corruption");
        assert_eq!(recovery.skipped.len(), 1);
        assert!(recovery.skipped[0].1.contains("checksum"), "{:?}", recovery.skipped);
        assert!(!stray.exists(), "stray tmp cleaned");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_cleans_up_tmp_and_preserves_store() {
        let dir = tempdir("store-blocked-write");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut state = sample_state();
        state.generation = 1;
        store.write(&state, false).unwrap();

        // Block the next generation's final path with a non-empty directory:
        // `fs::rename` over it fails on every platform, even as root (where
        // permission bits alone would not stop a write).
        let blocked = store.dir().join("ckpt-00000002.nckpt");
        std::fs::create_dir(&blocked).unwrap();
        std::fs::write(blocked.join("occupied"), b"x").unwrap();

        state.generation = 2;
        let err = store.write(&state, false).expect_err("blocked rename must surface");
        assert!(matches!(err, CheckpointError::Io(_)), "unexpected error: {err}");
        // No half-written temporary may survive the failure...
        assert!(
            !store.dir().join(".ckpt-00000002.nckpt.tmp").exists(),
            "failed write left a stray .tmp behind"
        );
        // ...and the checkpoints that already existed stay fully readable.
        std::fs::remove_file(blocked.join("occupied")).unwrap();
        std::fs::remove_dir(&blocked).unwrap();
        let recovery = store.recover().unwrap();
        let recovered = recovery.state.expect("earlier checkpoint intact");
        assert_eq!(recovered.generation, 1);
        state.generation = 1;
        assert!(states_equal(&recovered, &state));
        assert!(recovery.skipped.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_faults_surface_typed_and_leave_the_store_recoverable() {
        use crate::durable::{DurableIo, IoFaultKind, IoFaultPlan};
        for (i, kind) in IoFaultKind::ALL.into_iter().enumerate() {
            let dir = tempdir(&format!("store-injected-{i}"));
            let io = DurableIo::with_plan(IoFaultPlan::new().fail_at(1, kind));
            let store = CheckpointStore::create(&dir).unwrap().with_io(io.clone());
            let mut state = sample_state();
            state.generation = 1;
            store.write(&state, false).unwrap(); // write point 0: clean

            state.generation = 2;
            let err = store.write(&state, false).expect_err("injected fault must surface");
            assert!(matches!(err, CheckpointError::Io(_)), "unexpected error: {err}");
            assert!(err.to_string().contains(kind.label()), "{err}");
            assert_eq!(io.injected_faults(), 1);

            // Whatever the fault broke, recovery lands on an intact state:
            // generation 1 for data-path faults, generation 2 when only
            // the directory-entry fsync failed (the rename itself landed).
            let recovery = store.recover().unwrap();
            let recovered = recovery.state.expect("store recoverable after fault");
            match kind {
                IoFaultKind::DirSyncFail => assert_eq!(recovered.generation, 2),
                _ => assert_eq!(recovered.generation, 1),
            }
            assert!(recovery.skipped.is_empty(), "no corrupt record: {:?}", recovery.skipped);
            // The recovery scan swept any torn-write residue.
            assert!(
                !store.dir().join(".ckpt-00000002.nckpt.tmp").exists(),
                "{kind:?} residue survived recovery"
            );
            // And the store keeps working with the plan spent.
            state.generation = 3;
            store.write(&state, false).unwrap();
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn failed_tmp_create_is_a_clean_error() {
        let dir = tempdir("store-blocked-tmp");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut state = sample_state();
        state.generation = 1;
        store.write(&state, false).unwrap();

        // Occupy the dot-tmp path itself so `File::create` fails before any
        // bytes are staged.
        let tmp = store.dir().join(".ckpt-00000002.nckpt.tmp");
        std::fs::create_dir(&tmp).unwrap();

        state.generation = 2;
        let err = store.write(&state, false).expect_err("blocked tmp create must surface");
        assert!(matches!(err, CheckpointError::Io(_)), "unexpected error: {err}");
        std::fs::remove_dir(&tmp).unwrap();
        let recovery = store.recover().unwrap();
        assert_eq!(recovery.state.expect("earlier checkpoint intact").generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_only_directory_fails_cleanly_without_corrupting_store() {
        use std::os::unix::fs::PermissionsExt;
        let dir = tempdir("store-readonly");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut state = sample_state();
        state.generation = 1;
        store.write(&state, false).unwrap();

        let mut perms = std::fs::metadata(&dir).unwrap().permissions();
        perms.set_mode(0o555);
        std::fs::set_permissions(&dir, perms).unwrap();
        // Root ignores permission bits; probe before asserting anything.
        let probe = dir.join(".perm-probe");
        if std::fs::write(&probe, b"x").is_ok() {
            std::fs::remove_file(&probe).ok();
        } else {
            state.generation = 2;
            let err = store.write(&state, false).expect_err("read-only dir must surface");
            assert!(matches!(err, CheckpointError::Io(_)), "unexpected error: {err}");
            assert!(!store.dir().join(".ckpt-00000002.nckpt.tmp").exists());
        }
        let mut perms = std::fs::metadata(&dir).unwrap().permissions();
        perms.set_mode(0o755);
        std::fs::set_permissions(&dir, perms).unwrap();
        let recovery = store.recover().unwrap();
        assert_eq!(recovery.state.expect("earlier checkpoint intact").generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_recovers_to_nothing() {
        let dir = tempdir("store-empty");
        let store = CheckpointStore::create(&dir).unwrap();
        let recovery = store.recover().unwrap();
        assert!(recovery.state.is_none());
        assert!(recovery.skipped.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("nautilus-ckpt-{tag}-{pid}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
