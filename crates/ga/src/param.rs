//! Parameter definitions: identifiers and finite value domains.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{GaError, Result};
use crate::value::ParamValue;

/// Index of a parameter within a [`crate::ParamSpace`].
///
/// `ParamId`s are only meaningful relative to the space that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Returns the zero-based position of this parameter in its space.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// The id at position `index` of `space`, if in range.
    ///
    /// ```
    /// use nautilus_ga::{ParamId, ParamSpace};
    /// # fn main() -> Result<(), nautilus_ga::GaError> {
    /// let space = ParamSpace::builder().flag("a").flag("b").build()?;
    /// assert!(ParamId::try_from_index(&space, 1).is_some());
    /// assert!(ParamId::try_from_index(&space, 2).is_none());
    /// # Ok(()) }
    /// ```
    #[must_use]
    pub fn try_from_index(space: &crate::space::ParamSpace, index: usize) -> Option<ParamId> {
        (index < space.num_params()).then_some(ParamId(index))
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The finite, ordered domain of values a parameter ranges over.
///
/// Hardware IP parameter spaces are discrete lattices: integer ranges with a
/// stride (buffer depths), power-of-two ranges (flit widths, FFT sizes),
/// categorical choices (allocator microarchitectures), and boolean feature
/// flags. Every domain enumerates its values in a fixed order; genomes store
/// the *index* of the chosen value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ParamDomain {
    /// Integers `lo, lo+step, ..., <= hi` (inclusive of `lo`, `hi` reached
    /// only if aligned).
    IntRange {
        /// Smallest value.
        lo: i64,
        /// Largest admissible value.
        hi: i64,
        /// Positive stride between consecutive values.
        step: i64,
    },
    /// Powers of two `2^lo_log2 ..= 2^hi_log2`.
    Pow2 {
        /// Exponent of the smallest value.
        lo_log2: u32,
        /// Exponent of the largest value.
        hi_log2: u32,
    },
    /// An explicit list of integers, in the declared (author) order.
    IntList(Vec<i64>),
    /// Named categorical choices, in the declared (author) order.
    Choices(Vec<String>),
    /// A boolean flag; index 0 is `false`, index 1 is `true`.
    Flag,
}

impl ParamDomain {
    /// Number of distinct values in the domain.
    ///
    /// ```
    /// use nautilus_ga::ParamDomain;
    /// assert_eq!(ParamDomain::IntRange { lo: 1, hi: 16, step: 5 }.cardinality(), 4);
    /// assert_eq!(ParamDomain::Pow2 { lo_log2: 4, hi_log2: 7 }.cardinality(), 4);
    /// assert_eq!(ParamDomain::Flag.cardinality(), 2);
    /// ```
    #[must_use]
    pub fn cardinality(&self) -> usize {
        match self {
            ParamDomain::IntRange { lo, hi, step } => {
                if hi < lo || *step <= 0 {
                    0
                } else {
                    ((hi - lo) / step + 1) as usize
                }
            }
            ParamDomain::Pow2 { lo_log2, hi_log2 } => {
                if hi_log2 < lo_log2 {
                    0
                } else {
                    (hi_log2 - lo_log2 + 1) as usize
                }
            }
            ParamDomain::IntList(vs) => vs.len(),
            ParamDomain::Choices(cs) => cs.len(),
            ParamDomain::Flag => 2,
        }
    }

    /// The value at position `idx` in the domain's order.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.cardinality()`.
    #[must_use]
    pub fn value(&self, idx: usize) -> ParamValue {
        assert!(
            idx < self.cardinality(),
            "index {idx} out of bounds for domain of {} values",
            self.cardinality()
        );
        match self {
            ParamDomain::IntRange { lo, step, .. } => ParamValue::Int(lo + step * idx as i64),
            ParamDomain::Pow2 { lo_log2, .. } => ParamValue::Int(1i64 << (lo_log2 + idx as u32)),
            ParamDomain::IntList(vs) => ParamValue::Int(vs[idx]),
            ParamDomain::Choices(cs) => ParamValue::Sym(cs[idx].clone()),
            ParamDomain::Flag => ParamValue::Bool(idx == 1),
        }
    }

    /// The position of `v` within the domain, if present.
    #[must_use]
    pub fn index_of(&self, v: &ParamValue) -> Option<usize> {
        match (self, v) {
            (ParamDomain::IntRange { lo, hi, step }, ParamValue::Int(x)) => {
                if x < lo || x > hi || (x - lo) % step != 0 {
                    None
                } else {
                    Some(((x - lo) / step) as usize)
                }
            }
            (ParamDomain::Pow2 { lo_log2, hi_log2 }, ParamValue::Int(x)) => {
                if *x <= 0 || (x & (x - 1)) != 0 {
                    return None;
                }
                let l = x.trailing_zeros();
                if l < *lo_log2 || l > *hi_log2 {
                    None
                } else {
                    Some((l - lo_log2) as usize)
                }
            }
            (ParamDomain::IntList(vs), ParamValue::Int(x)) => vs.iter().position(|v| v == x),
            (ParamDomain::Choices(cs), ParamValue::Sym(s)) => cs.iter().position(|c| c == s),
            (ParamDomain::Flag, ParamValue::Bool(b)) => Some(usize::from(*b)),
            _ => None,
        }
    }

    /// Whether the domain's declared order is numerically meaningful.
    ///
    /// Integer, power-of-two and flag domains are intrinsically ordered;
    /// categorical [`ParamDomain::Choices`] are ordered only in the sense of
    /// their declaration order, which an IP author may or may not intend as a
    /// monotone axis (the Nautilus *ordering* auxiliary hint makes it so).
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        !matches!(self, ParamDomain::Choices(_))
    }

    /// Validates internal consistency, reporting against parameter `name`.
    pub(crate) fn validate(&self, name: &str) -> Result<()> {
        match self {
            ParamDomain::IntRange { lo, hi, step } => {
                if *step <= 0 {
                    return Err(GaError::InvalidRange {
                        param: name.to_owned(),
                        reason: format!("step {step} must be positive"),
                    });
                }
                if hi < lo {
                    return Err(GaError::InvalidRange {
                        param: name.to_owned(),
                        reason: format!("lo {lo} exceeds hi {hi}"),
                    });
                }
                Ok(())
            }
            ParamDomain::Pow2 { lo_log2, hi_log2 } => {
                if hi_log2 < lo_log2 {
                    return Err(GaError::InvalidRange {
                        param: name.to_owned(),
                        reason: format!("lo_log2 {lo_log2} exceeds hi_log2 {hi_log2}"),
                    });
                }
                if *hi_log2 >= 63 {
                    return Err(GaError::InvalidRange {
                        param: name.to_owned(),
                        reason: "hi_log2 must be < 63".to_owned(),
                    });
                }
                Ok(())
            }
            ParamDomain::IntList(vs) => {
                if vs.is_empty() {
                    return Err(GaError::EmptyDomain(name.to_owned()));
                }
                let mut seen = std::collections::HashSet::new();
                for v in vs {
                    if !seen.insert(v) {
                        return Err(GaError::InvalidRange {
                            param: name.to_owned(),
                            reason: format!("duplicate value {v}"),
                        });
                    }
                }
                Ok(())
            }
            ParamDomain::Choices(cs) => {
                if cs.is_empty() {
                    return Err(GaError::EmptyDomain(name.to_owned()));
                }
                let mut seen = std::collections::HashSet::new();
                for c in cs {
                    if !seen.insert(c) {
                        return Err(GaError::InvalidRange {
                            param: name.to_owned(),
                            reason: format!("duplicate choice `{c}`"),
                        });
                    }
                }
                Ok(())
            }
            ParamDomain::Flag => Ok(()),
        }
    }
}

/// A named parameter together with its value domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    name: String,
    domain: ParamDomain,
}

impl ParamDef {
    /// Creates a definition; validation happens when the space is built.
    #[must_use]
    pub fn new(name: impl Into<String>, domain: ParamDomain) -> Self {
        ParamDef { name: name.into(), domain }
    }

    /// The parameter's name as shown to IP users.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's value domain.
    #[must_use]
    pub fn domain(&self) -> &ParamDomain {
        &self.domain
    }

    /// Shorthand for `self.domain().cardinality()`.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.domain.cardinality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_enumeration_matches_cardinality() {
        let d = ParamDomain::IntRange { lo: 2, hi: 11, step: 3 };
        assert_eq!(d.cardinality(), 4);
        let vals: Vec<i64> = (0..4).map(|i| d.value(i).as_i64().unwrap()).collect();
        assert_eq!(vals, vec![2, 5, 8, 11]);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(d.index_of(&ParamValue::Int(*v)), Some(i));
        }
        assert_eq!(d.index_of(&ParamValue::Int(3)), None); // off-stride
        assert_eq!(d.index_of(&ParamValue::Int(14)), None); // out of range
    }

    #[test]
    fn pow2_round_trips() {
        let d = ParamDomain::Pow2 { lo_log2: 5, hi_log2: 8 };
        assert_eq!(d.cardinality(), 4);
        assert_eq!(d.value(0), ParamValue::Int(32));
        assert_eq!(d.value(3), ParamValue::Int(256));
        assert_eq!(d.index_of(&ParamValue::Int(64)), Some(1));
        assert_eq!(d.index_of(&ParamValue::Int(48)), None);
        assert_eq!(d.index_of(&ParamValue::Int(16)), None);
        assert_eq!(d.index_of(&ParamValue::Int(512)), None);
    }

    #[test]
    fn choices_round_trip_and_order() {
        let d = ParamDomain::Choices(vec!["rr".into(), "matrix".into(), "wavefront".into()]);
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.value(1), ParamValue::Sym("matrix".into()));
        assert_eq!(d.index_of(&ParamValue::Sym("wavefront".into())), Some(2));
        assert_eq!(d.index_of(&ParamValue::Sym("xbar".into())), None);
        assert!(!d.is_numeric());
    }

    #[test]
    fn int_list_preserves_author_order() {
        let d = ParamDomain::IntList(vec![1, 2, 3, 4, 6, 8, 12, 16]);
        assert_eq!(d.cardinality(), 8);
        assert_eq!(d.value(4), ParamValue::Int(6));
        assert_eq!(d.index_of(&ParamValue::Int(12)), Some(6));
        assert_eq!(d.index_of(&ParamValue::Int(5)), None);
        assert!(d.is_numeric());
    }

    #[test]
    fn flag_values() {
        let d = ParamDomain::Flag;
        assert_eq!(d.value(0), ParamValue::Bool(false));
        assert_eq!(d.value(1), ParamValue::Bool(true));
        assert_eq!(d.index_of(&ParamValue::Bool(true)), Some(1));
        assert_eq!(d.index_of(&ParamValue::Int(1)), None);
    }

    #[test]
    fn validation_rejects_bad_domains() {
        assert!(ParamDomain::IntRange { lo: 5, hi: 1, step: 1 }.validate("x").is_err());
        assert!(ParamDomain::IntRange { lo: 1, hi: 5, step: 0 }.validate("x").is_err());
        assert!(ParamDomain::Pow2 { lo_log2: 4, hi_log2: 2 }.validate("x").is_err());
        assert!(ParamDomain::Choices(vec![]).validate("x").is_err());
        assert!(ParamDomain::IntList(vec![]).validate("x").is_err());
        assert!(ParamDomain::IntList(vec![1, 2, 1]).validate("x").is_err());
        assert!(ParamDomain::Choices(vec!["a".into(), "a".into()]).validate("x").is_err());
        assert!(ParamDomain::Flag.validate("x").is_ok());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn value_panics_out_of_bounds() {
        let _ = ParamDomain::Flag.value(2);
    }
}
