//! Evaluation cache: the accounting heart of the reproduction.
//!
//! The paper measures search cost as the number of **distinct** design
//! points evaluated, "since each evaluation requires running computationally
//! expensive CAD tools"; a GA that revisits a previously synthesized point
//! pays nothing. Every search strategy in this workspace evaluates through
//! an [`EvalCache`] so those counts are directly comparable.

use std::collections::{HashMap, HashSet};

use crate::genome::Genome;

/// Memoizes fitness evaluations and counts distinct evaluations.
///
/// `None` entries record *infeasible* points (the generator refused the
/// parameter combination); these are tracked separately because a failed
/// generator run is typically much cheaper than a full synthesis job.
/// Quarantined genomes (every evaluation attempt failed) are also stored
/// as `None` — they score like infeasible points and are never
/// re-evaluated — but counted on their own ledger.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    map: HashMap<Genome, Option<f64>>,
    quarantined: HashSet<Genome>,
    hits: u64,
    feasible_misses: u64,
    infeasible_misses: u64,
}

impl EvalCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Looks `genome` up, evaluating and memoizing with `eval` on a miss.
    pub fn get_or_eval(
        &mut self,
        genome: &Genome,
        eval: impl FnOnce(&Genome) -> Option<f64>,
    ) -> Option<f64> {
        if let Some(v) = self.map.get(genome) {
            self.hits += 1;
            return *v;
        }
        let v = eval(genome);
        match v {
            Some(_) => self.feasible_misses += 1,
            None => self.infeasible_misses += 1,
        }
        self.map.insert(genome.clone(), v);
        v
    }

    /// Returns the cached value without evaluating.
    #[must_use]
    pub fn peek(&self, genome: &Genome) -> Option<Option<f64>> {
        self.map.get(genome).copied()
    }

    /// [`EvalCache::peek`] keyed by a raw gene row — no `Genome`
    /// allocation, used by the structure-of-arrays scoring path.
    #[must_use]
    pub fn peek_genes(&self, genes: &[u32]) -> Option<Option<f64>> {
        self.map.get(genes).copied()
    }

    /// [`EvalCache::lookup`] keyed by a raw gene row: counts a hit when
    /// present, without allocating a `Genome`.
    pub fn lookup_genes(&mut self, genes: &[u32]) -> Option<Option<f64>> {
        let v = self.map.get(genes).copied();
        if v.is_some() {
            self.hits += 1;
        }
        v
    }

    /// Looks `genome` up, counting a cache hit when present.
    ///
    /// This is the lookup half of [`EvalCache::get_or_eval`]: it updates
    /// the hit counter exactly as `get_or_eval` would on a hit, but never
    /// evaluates. Batch evaluation uses it (together with
    /// [`EvalCache::insert_evaluated`]) to keep counters bit-identical to
    /// the serial path.
    pub fn lookup(&mut self, genome: &Genome) -> Option<Option<f64>> {
        let v = self.map.get(genome).copied();
        if v.is_some() {
            self.hits += 1;
        }
        v
    }

    /// Memoizes an externally computed evaluation, counting the miss
    /// exactly as [`EvalCache::get_or_eval`] would have.
    ///
    /// Batch evaluation computes values off-cache (on worker threads) and
    /// inserts them in deterministic first-occurrence order; an already
    /// present genome is left untouched (no counter changes), mirroring
    /// the fact that the serial path would never have re-evaluated it.
    pub fn insert_evaluated(&mut self, genome: &Genome, value: Option<f64>) {
        if self.map.contains_key(genome) {
            return;
        }
        match value {
            Some(_) => self.feasible_misses += 1,
            None => self.infeasible_misses += 1,
        }
        self.map.insert(genome.clone(), value);
    }

    /// [`EvalCache::insert_evaluated`] keyed by a raw gene row: the
    /// owning [`Genome`] is only allocated on an actual insert, so the
    /// structure-of-arrays merge path pays nothing for re-inserts.
    pub fn insert_evaluated_genes(&mut self, genes: &[u32], value: Option<f64>) {
        if self.map.contains_key(genes) {
            return;
        }
        match value {
            Some(_) => self.feasible_misses += 1,
            None => self.infeasible_misses += 1,
        }
        self.map.insert(Genome::from_genes(genes.to_vec()), value);
    }

    /// [`EvalCache::insert_quarantined`] keyed by a raw gene row.
    pub fn insert_quarantined_genes(&mut self, genes: &[u32]) {
        if self.map.contains_key(genes) {
            return;
        }
        let genome = Genome::from_genes(genes.to_vec());
        self.map.insert(genome.clone(), None);
        self.quarantined.insert(genome);
    }

    /// Quarantines `genome`: every evaluation attempt failed, so it is
    /// memoized as infeasible-scoring (`None`) and never re-evaluated,
    /// but counted on its own ledger — a quarantined point consumed retry
    /// attempts, not a completed generator run.
    ///
    /// Idempotent: a genome already present (evaluated or quarantined) is
    /// left untouched.
    pub fn insert_quarantined(&mut self, genome: &Genome) {
        if self.map.contains_key(genome) {
            return;
        }
        self.map.insert(genome.clone(), None);
        self.quarantined.insert(genome.clone());
    }

    /// Whether `genome` was quarantined.
    #[must_use]
    pub fn is_quarantined(&self, genome: &Genome) -> bool {
        self.quarantined.contains(genome)
    }

    /// Number of quarantined genomes.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Number of distinct *feasible* design points evaluated so far.
    ///
    /// This is the paper's "# designs evaluated" x-axis: each one stands for
    /// a synthesis job costing minutes to hours of EDA time.
    #[must_use]
    pub fn distinct_evals(&self) -> u64 {
        self.feasible_misses
    }

    /// Number of distinct infeasible points encountered.
    #[must_use]
    pub fn infeasible_evals(&self) -> u64 {
        self.infeasible_misses
    }

    /// Number of lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups (hits plus misses of both kinds).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.feasible_misses + self.infeasible_misses
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been evaluated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// An immutable snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            distinct_evals: self.feasible_misses,
            infeasible_evals: self.infeasible_misses,
            quarantined: self.quarantined.len() as u64,
        }
    }

    /// A complete, deterministic snapshot of the cache: every memoized
    /// entry, the quarantine set, and all counters.
    ///
    /// Entries are sorted by genome so the same cache state always
    /// produces the same snapshot regardless of `HashMap` iteration
    /// order — checkpoints of identical runs must be byte-identical.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries: Vec<(Genome, Option<f64>)> =
            self.map.iter().map(|(g, v)| (g.clone(), *v)).collect();
        entries.sort_by(|a, b| a.0.genes().cmp(b.0.genes()));
        let mut quarantined: Vec<Genome> = self.quarantined.iter().cloned().collect();
        quarantined.sort_by(|a, b| a.genes().cmp(b.genes()));
        CacheSnapshot {
            entries,
            quarantined,
            hits: self.hits,
            feasible_misses: self.feasible_misses,
            infeasible_misses: self.infeasible_misses,
        }
    }

    /// Rebuilds a cache from a [`CacheSnapshot`], restoring entries,
    /// quarantine membership and counters exactly.
    #[must_use]
    pub fn restore(snapshot: &CacheSnapshot) -> EvalCache {
        EvalCache {
            map: snapshot.entries.iter().cloned().collect(),
            quarantined: snapshot.quarantined.iter().cloned().collect(),
            hits: snapshot.hits,
            feasible_misses: snapshot.feasible_misses,
            infeasible_misses: snapshot.infeasible_misses,
        }
    }
}

/// A deterministic, order-stable dump of an [`EvalCache`], used by the
/// checkpoint subsystem.
///
/// `entries` and `quarantined` are sorted by genome; counters are carried
/// verbatim so `EvalCache::restore(&c.snapshot())` reproduces `c` exactly
/// (same `stats()`, same memoized values, same quarantine behavior).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheSnapshot {
    /// Memoized `(genome, fitness)` pairs, sorted by genome; `None` marks
    /// infeasible or quarantined points.
    pub entries: Vec<(Genome, Option<f64>)>,
    /// Quarantined genomes (a subset of `entries` keys), sorted.
    pub quarantined: Vec<Genome>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Distinct feasible evaluations.
    pub feasible_misses: u64,
    /// Distinct infeasible evaluations (excluding quarantines).
    pub infeasible_misses: u64,
}

/// Snapshot of [`EvalCache`] counters, attached to run results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered without an evaluation.
    pub hits: u64,
    /// Distinct feasible design points evaluated (synthesis jobs).
    pub distinct_evals: u64,
    /// Distinct infeasible design points encountered.
    pub infeasible_evals: u64,
    /// Genomes quarantined after every evaluation attempt failed.
    pub quarantined: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: u32) -> Genome {
        Genome::from_genes(vec![x])
    }

    #[test]
    fn second_lookup_is_a_hit_and_does_not_reevaluate() {
        let mut c = EvalCache::new();
        let mut calls = 0;
        let v1 = c.get_or_eval(&g(1), |_| {
            calls += 1;
            Some(5.0)
        });
        let v2 = c.get_or_eval(&g(1), |_| {
            calls += 1;
            Some(99.0)
        });
        assert_eq!(v1, Some(5.0));
        assert_eq!(v2, Some(5.0));
        assert_eq!(calls, 1);
        assert_eq!(c.distinct_evals(), 1);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.lookups(), 2);
    }

    #[test]
    fn infeasible_points_are_memoized_and_counted_separately() {
        let mut c = EvalCache::new();
        assert_eq!(c.get_or_eval(&g(7), |_| None), None);
        assert_eq!(c.get_or_eval(&g(7), |_| Some(1.0)), None, "memoized as infeasible");
        assert_eq!(c.distinct_evals(), 0);
        assert_eq!(c.infeasible_evals(), 1);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn distinct_counting_over_many_points() {
        let mut c = EvalCache::new();
        for i in 0..10 {
            for _ in 0..3 {
                c.get_or_eval(&g(i), |_| Some(f64::from(i)));
            }
        }
        assert_eq!(c.distinct_evals(), 10);
        assert_eq!(c.hits(), 20);
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
    }

    #[test]
    fn peek_does_not_count_as_lookup() {
        let mut c = EvalCache::new();
        assert_eq!(c.peek(&g(0)), None);
        c.get_or_eval(&g(0), |_| Some(2.0));
        assert_eq!(c.peek(&g(0)), Some(Some(2.0)));
        assert_eq!(c.lookups(), 1);
    }

    #[test]
    fn stats_snapshot_matches_counters() {
        let mut c = EvalCache::new();
        c.get_or_eval(&g(0), |_| Some(1.0));
        c.get_or_eval(&g(0), |_| Some(1.0));
        c.get_or_eval(&g(1), |_| None);
        let s = c.stats();
        assert_eq!(
            s,
            CacheStats { hits: 1, distinct_evals: 1, infeasible_evals: 1, quarantined: 0 }
        );
    }

    #[test]
    fn quarantined_genomes_score_infeasible_and_are_never_reevaluated() {
        let mut c = EvalCache::new();
        c.insert_quarantined(&g(9));
        assert!(c.is_quarantined(&g(9)));
        assert_eq!(c.peek(&g(9)), Some(None), "quarantine memoizes an infeasible score");
        assert_eq!(c.quarantined(), 1);
        // Quarantine is a separate ledger, not an infeasible generator run.
        assert_eq!(c.infeasible_evals(), 0);
        assert_eq!(c.distinct_evals(), 0);
        // Re-quarantining or re-evaluating is a no-op.
        c.insert_quarantined(&g(9));
        c.insert_evaluated(&g(9), Some(5.0));
        assert_eq!(c.peek(&g(9)), Some(None));
        assert_eq!(c.quarantined(), 1);
        // A later lookup is an ordinary cache hit.
        assert_eq!(c.lookup(&g(9)), Some(None));
        assert_eq!(c.hits(), 1);
        // An evaluated genome cannot be retroactively quarantined.
        c.insert_evaluated(&g(1), Some(2.0));
        c.insert_quarantined(&g(1));
        assert!(!c.is_quarantined(&g(1)));
        assert_eq!(c.peek(&g(1)), Some(Some(2.0)));
        assert_eq!(c.stats().quarantined, 1);
    }

    #[test]
    fn snapshot_restore_round_trips_entries_quarantine_and_counters() {
        let mut c = EvalCache::new();
        c.get_or_eval(&g(3), |_| Some(7.5));
        c.get_or_eval(&g(3), |_| Some(99.0)); // hit
        c.get_or_eval(&g(1), |_| None);
        c.insert_quarantined(&g(2));
        let snap = c.snapshot();
        // Sorted by genome regardless of HashMap iteration order.
        let keys: Vec<u32> = snap.entries.iter().map(|(g, _)| g.gene_at(0)).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(snap.quarantined.len(), 1);

        let r = EvalCache::restore(&snap);
        assert_eq!(r.stats(), c.stats());
        assert_eq!(r.peek(&g(3)), Some(Some(7.5)));
        assert_eq!(r.peek(&g(1)), Some(None));
        assert!(r.is_quarantined(&g(2)));
        assert!(!r.is_quarantined(&g(1)));
        assert_eq!(r.snapshot(), snap, "snapshot of a restore is identical");
    }

    #[test]
    fn lookup_accounting_identity_holds() {
        // Every lookup is exactly one of: hit, feasible miss, infeasible
        // miss. Quarantine inserts are not lookups (they come from the
        // retry pipeline), so they must not disturb the identity.
        let mut c = EvalCache::new();
        let mut expected_lookups = 0u64;
        for i in 0..50u32 {
            for _ in 0..=(i % 3) {
                c.get_or_eval(&g(i % 17), |_| if i % 5 == 0 { None } else { Some(f64::from(i)) });
                expected_lookups += 1;
            }
            if i % 7 == 0 {
                c.insert_quarantined(&g(1000 + i));
            }
        }
        let s = c.stats();
        assert_eq!(c.lookups(), expected_lookups);
        assert_eq!(s.hits + s.distinct_evals + s.infeasible_evals, expected_lookups);
    }
}
