//! Persistent evaluation worker pool.
//!
//! The batched scoring path used to spawn and join a fresh
//! `std::thread::scope` every generation, which dominated the
//! `batch_dispatch` phase (thread creation, stack setup and teardown per
//! generation). [`EvalPool`] keeps the helper threads alive for the whole
//! run, parked on a condvar between generations; dispatching a batch is
//! one mutex acquire plus a wake, independent of batch size.
//!
//! ## Execution model
//!
//! A *job* is a `Fn(usize)` taking a worker slot. The merge thread calls
//! [`EvalPool::dispatch`] (publishes the job and wakes `participants`
//! helpers, slots `1..=participants`), then runs `job(0)` itself so every
//! configured worker — including the submitting thread — drains work, and
//! finally blocks in [`BatchTicket::wait`] until all helpers finished.
//! Work distribution (a chunked atomic cursor) lives inside the job
//! closure; the pool only coordinates lifecycle.
//!
//! ## Safety
//!
//! The job is handed to the helper threads as a lifetime-erased raw
//! pointer (the same trick rayon's scoped pools use). This is sound
//! because the pointer is only dereferenced between `dispatch` and the
//! matching `wait`, and [`BatchTicket`] both borrows the job for its
//! lifetime and waits in `drop`, so the closure (and everything it
//! borrows) strictly outlives every use — even if the merge thread
//! panics mid-batch.
//!
//! A helper that panics inside the job records the fact and survives (the
//! panic is caught so the pool stays usable and `wait` cannot deadlock);
//! `wait` re-raises it on the merge thread as `"evaluation worker
//! panicked"`, matching the old scoped-thread behavior.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lifetime-erased shared job pointer. Only valid between a dispatch and
/// its wait; see the module-level safety notes.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (so `&job` may be shared across threads)
// and the pointer is only dereferenced while the submitter keeps the
// closure alive (enforced by `BatchTicket`'s borrow + blocking drop).
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Currently published job, if a batch is in flight.
    job: Option<JobPtr>,
    /// Bumped once per dispatch; helpers run each epoch at most once.
    epoch: u64,
    /// Helpers participating in the current epoch (slots `1..=n`).
    participants: usize,
    /// Participating helpers that have not finished the current job yet.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Helpers park here between batches.
    work_ready: Condvar,
    /// The submitter parks here until `active` drains to zero.
    work_done: Condvar,
    /// Set by a helper whose job invocation panicked.
    panicked: AtomicBool,
}

/// A persistent pool of parked evaluation helper threads.
///
/// `EvalPool::new(0)` is valid and threadless: `dispatch` publishes
/// nothing and `wait` returns immediately, so a single-worker engine pays
/// no synchronization at all while sharing the same code path.
pub struct EvalPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl EvalPool {
    /// Spawns `helpers` parked worker threads (slots `1..=helpers`).
    #[must_use]
    pub fn new(helpers: usize) -> EvalPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                participants: 0,
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..=helpers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("eval-pool-{slot}"))
                    .spawn(move || helper_loop(&shared, slot))
                    .expect("spawn evaluation pool worker")
            })
            .collect();
        EvalPool { shared, handles }
    }

    /// Helper threads owned by the pool.
    #[must_use]
    pub fn helpers(&self) -> usize {
        self.handles.len()
    }

    /// Publishes `job` to `participants` helpers (clamped to the pool
    /// size) and wakes them. Returns a ticket whose
    /// [`wait`](BatchTicket::wait) must be called (or dropped) before the
    /// job's borrows end; the submitting thread should run `job(0)` in
    /// between so it drains work instead of idling.
    ///
    /// Equivalent to [`publish`](EvalPool::publish) followed by
    /// [`BatchTicket::wake`].
    ///
    /// # Panics
    ///
    /// Panics if a batch is already in flight (the engine's merge thread
    /// is the only submitter, so this indicates a bug).
    pub fn dispatch<'p, 'j>(
        &'p self,
        job: &'j (dyn Fn(usize) + Sync),
        participants: usize,
    ) -> BatchTicket<'p, 'j> {
        let ticket = self.publish(job, participants);
        ticket.wake();
        ticket
    }

    /// Publishes `job` without waking the helpers: one mutex acquire plus
    /// a few stores, O(1) in batch size. The caller must follow up with
    /// [`BatchTicket::wake`] — until then the helpers stay parked (they
    /// only observe the new epoch on a wake).
    ///
    /// Split from [`dispatch`](EvalPool::dispatch) so callers that
    /// attribute time to phases can bill the publish separately from the
    /// wake: on a single-core host, `notify_all` typically preempts the
    /// submitter in favor of the woken helpers, so the wake call blocks
    /// for helper *compute* time, which is wait, not dispatch work.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already in flight.
    pub fn publish<'p, 'j>(
        &'p self,
        job: &'j (dyn Fn(usize) + Sync),
        participants: usize,
    ) -> BatchTicket<'p, 'j> {
        let participants = participants.min(self.handles.len());
        if participants > 0 {
            // SAFETY: erases `'j` so the pointer can live in PoolState.
            // The returned ticket borrows the job for `'j` and drains all
            // helpers in drop, so no helper dereferences it after `'j`.
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
            let mut st = self.shared.state.lock().expect("pool lock");
            assert!(st.job.is_none() && st.active == 0, "batch already in flight");
            st.job = Some(JobPtr(erased as *const _));
            st.epoch += 1;
            st.participants = participants;
            st.active = participants;
        }
        BatchTicket { pool: self, dispatched: participants > 0, _job: std::marker::PhantomData }
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool").field("helpers", &self.handles.len()).finish()
    }
}

/// Receipt for one dispatched batch; completing it (via [`wait`] or drop)
/// is what makes the lifetime-erased job pointer sound.
///
/// [`wait`]: BatchTicket::wait
#[must_use = "a dispatched batch must be waited on"]
pub struct BatchTicket<'p, 'j> {
    pool: &'p EvalPool,
    dispatched: bool,
    /// Borrows the job so it cannot be dropped before the batch drains.
    _job: std::marker::PhantomData<&'j (dyn Fn(usize) + Sync)>,
}

impl BatchTicket<'_, '_> {
    /// Wakes the helpers parked on the batch published by
    /// [`EvalPool::publish`]. Idempotent; a no-op for a threadless batch.
    pub fn wake(&self) {
        if self.dispatched {
            self.pool.shared.work_ready.notify_all();
        }
    }

    /// Blocks until every participating helper finished the job, then
    /// propagates any helper panic.
    ///
    /// # Panics
    ///
    /// Panics with `"evaluation worker panicked"` if a helper's job
    /// invocation panicked.
    pub fn wait(mut self) {
        self.finish();
        if self.pool.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("evaluation worker panicked");
        }
    }

    fn finish(&mut self) {
        if !self.dispatched {
            return;
        }
        self.dispatched = false;
        let shared = &self.pool.shared;
        let mut st = shared.state.lock().expect("pool lock");
        while st.active > 0 {
            st = shared.work_done.wait(st).expect("pool lock");
        }
        st.job = None;
    }
}

impl Drop for BatchTicket<'_, '_> {
    fn drop(&mut self) {
        // Unwinding through the merge thread must still drain helpers
        // before the job's borrows die; panics here stay recorded for the
        // next wait() rather than double-panicking.
        self.finish();
    }
}

impl std::fmt::Debug for BatchTicket<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchTicket").field("dispatched", &self.dispatched).finish()
    }
}

fn helper_loop(shared: &Shared, slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if slot <= st.participants {
                        break st.job.expect("published epoch carries a job");
                    }
                    // Not participating in this batch: keep waiting.
                }
                st = shared.work_ready.wait(st).expect("pool lock");
            }
        };
        // SAFETY: the submitter blocks in BatchTicket::finish until this
        // helper decrements `active` below, so the closure outlives this
        // call; see the module-level notes.
        let run = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(slot) }));
        if run.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        let mut st = shared.state.lock().expect("pool lock");
        st.active -= 1;
        if st.active == 0 {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn threadless_pool_is_a_no_op() {
        let pool = EvalPool::new(0);
        assert_eq!(pool.helpers(), 0);
        let hits = AtomicUsize::new(0);
        let job = |_slot: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        let ticket = pool.dispatch(&job, 4);
        job(0); // the submitter still drains work itself
        ticket.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn publish_then_wake_runs_each_helper_exactly_once() {
        let pool = EvalPool::new(2);
        let hits = AtomicUsize::new(0);
        let job = |_slot: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        let ticket = pool.publish(&job, 2);
        ticket.wake();
        ticket.wake(); // idempotent: helpers run each epoch at most once
        job(0);
        ticket.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn helpers_drain_a_shared_cursor_across_many_batches() {
        let pool = EvalPool::new(3);
        for round in 0..50usize {
            let n = 1 + (round * 7) % 23;
            let cursor = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let job = |_slot: usize| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                done.fetch_add(1, Ordering::Relaxed);
            };
            let ticket = pool.dispatch(&job, usize::MAX);
            job(0);
            ticket.wait();
            assert_eq!(done.load(Ordering::Relaxed), n, "round {round}");
        }
    }

    #[test]
    fn participant_clamp_excludes_idle_helpers() {
        let pool = EvalPool::new(4);
        let max_slot = AtomicUsize::new(0);
        let job = |slot: usize| {
            max_slot.fetch_max(slot, Ordering::Relaxed);
        };
        let ticket = pool.dispatch(&job, 2);
        job(0);
        ticket.wait();
        assert!(max_slot.load(Ordering::Relaxed) <= 2);
        // The excluded helpers must still accept the next epoch.
        let all = AtomicUsize::new(0);
        let job = |_slot: usize| {
            all.fetch_add(1, Ordering::Relaxed);
        };
        let ticket = pool.dispatch(&job, 4);
        job(0);
        ticket.wait();
        assert_eq!(all.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn helper_panic_is_reraised_on_wait_and_pool_survives() {
        let pool = EvalPool::new(2);
        let job = |slot: usize| {
            if slot == 1 {
                panic!("boom");
            }
        };
        let ticket = pool.dispatch(&job, 2);
        let caught = catch_unwind(AssertUnwindSafe(|| ticket.wait()));
        assert!(caught.is_err(), "helper panic must propagate to wait()");
        // The pool remains fully usable afterwards.
        let ok = AtomicUsize::new(0);
        let job = |_slot: usize| {
            ok.fetch_add(1, Ordering::Relaxed);
        };
        let ticket = pool.dispatch(&job, 2);
        job(0);
        ticket.wait();
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn dropping_a_ticket_still_drains_the_batch() {
        let pool = EvalPool::new(2);
        let done = AtomicUsize::new(0);
        let job = |_slot: usize| {
            done.fetch_add(1, Ordering::Relaxed);
        };
        let ticket = pool.dispatch(&job, 2);
        drop(ticket); // e.g. merge thread unwinding
        assert_eq!(done.load(Ordering::Relaxed), 2, "drop must block until helpers finish");
        // And the next batch proceeds normally.
        let ticket = pool.dispatch(&job, 2);
        ticket.wait();
        assert_eq!(done.load(Ordering::Relaxed), 4);
    }
}
