//! Concrete parameter values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A concrete value a parameter can take.
///
/// Values are produced by decoding a [`crate::Genome`] against a
/// [`crate::ParamSpace`] and consumed by cost models and user-facing reports.
///
/// ```
/// use nautilus_ga::ParamValue;
/// let v = ParamValue::Int(8);
/// assert_eq!(v.as_i64(), Some(8));
/// assert_eq!(v.to_string(), "8");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamValue {
    /// An integer value (covers plain ranges and power-of-two domains).
    Int(i64),
    /// A boolean flag.
    Bool(bool),
    /// A symbolic/categorical value, e.g. an allocator architecture name.
    Sym(String),
}

impl ParamValue {
    /// Returns the integer payload, if this is an [`ParamValue::Int`].
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`ParamValue::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the symbolic payload, if this is a [`ParamValue::Sym`].
    #[must_use]
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            ParamValue::Sym(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Sym(s) => f.write_str(s),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Sym(v.to_owned())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(ParamValue::Int(3).as_i64(), Some(3));
        assert_eq!(ParamValue::Int(3).as_bool(), None);
        assert_eq!(ParamValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ParamValue::Sym("wavefront".into()).as_sym(), Some("wavefront"));
        assert_eq!(ParamValue::Sym("x".into()).as_i64(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ParamValue::Int(-5).to_string(), "-5");
        assert_eq!(ParamValue::Bool(false).to_string(), "false");
        assert_eq!(ParamValue::Sym("mesh".into()).to_string(), "mesh");
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(ParamValue::from(7i64), ParamValue::Int(7));
        assert_eq!(ParamValue::from(true), ParamValue::Bool(true));
        assert_eq!(ParamValue::from("abc"), ParamValue::Sym("abc".into()));
        assert_eq!(ParamValue::from(String::from("s")), ParamValue::Sym("s".into()));
    }
}
