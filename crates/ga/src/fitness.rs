//! Fitness functions and optimization direction.

use crate::genome::Genome;

/// Whether a query wants the metric pushed up or down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Larger metric values are better (e.g. frequency, throughput/LUT).
    Maximize,
    /// Smaller metric values are better (e.g. LUTs, area-delay product).
    Minimize,
}

impl Direction {
    /// Whether `a` is strictly better than `b` under this direction.
    ///
    /// ```
    /// use nautilus_ga::Direction;
    /// assert!(Direction::Maximize.is_better(2.0, 1.0));
    /// assert!(Direction::Minimize.is_better(1.0, 2.0));
    /// ```
    #[must_use]
    pub fn is_better(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Maximize => a > b,
            Direction::Minimize => a < b,
        }
    }

    /// Maps a raw metric value into higher-is-better score space.
    #[must_use]
    pub fn to_score(self, value: f64) -> f64 {
        match self {
            Direction::Maximize => value,
            Direction::Minimize => -value,
        }
    }

    /// Inverse of [`Direction::to_score`].
    #[must_use]
    pub fn from_score(self, score: f64) -> f64 {
        match self {
            Direction::Maximize => score,
            Direction::Minimize => -score,
        }
    }

    /// The better of two raw values.
    #[must_use]
    pub fn best_of(self, a: f64, b: f64) -> f64 {
        if self.is_better(a, b) {
            a
        } else {
            b
        }
    }

    /// The worst-possible raw value under this direction.
    #[must_use]
    pub fn worst_value(self) -> f64 {
        match self {
            Direction::Maximize => f64::NEG_INFINITY,
            Direction::Minimize => f64::INFINITY,
        }
    }
}

/// A fitness function over genomes.
///
/// In IP optimization each evaluation corresponds to a (simulated) synthesis
/// job; the engine always evaluates through a cache so revisited design
/// points are free, exactly as in the paper's methodology.
///
/// Returning `None` marks the design point *infeasible* (the generator
/// rejects that parameter combination); the engine assigns it the worst
/// possible score so it cannot survive selection.
pub trait FitnessFn: Send + Sync {
    /// The optimization direction of [`FitnessFn::fitness`] values.
    fn direction(&self) -> Direction;

    /// Evaluates the raw metric value for `genome`, or `None` if infeasible.
    fn fitness(&self, genome: &Genome) -> Option<f64>;

    /// Evaluates a contiguous batch of gene rows, appending one result per
    /// row to `out` in row order.
    ///
    /// The default rehydrates one reused scratch [`Genome`] per row and
    /// calls [`FitnessFn::fitness`], so observable behavior (values,
    /// emitted telemetry, call order) is exactly the per-point path.
    /// Implementations backed by batchable cost models override this to
    /// evaluate the whole slice without per-point dispatch; overrides must
    /// preserve row order for both results and any telemetry they emit —
    /// the engine's cross-worker determinism depends on it.
    fn fitness_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<f64>>) {
        let mut scratch = Genome::from_genes(Vec::with_capacity(rows.gene_len()));
        for row in rows.iter() {
            scratch.copy_from_slice(row);
            out.push(self.fitness(&scratch));
        }
    }
}

/// A borrowed structure-of-arrays view over genomes: `len()` rows of
/// `gene_len()` genes packed back to back in one contiguous slice.
///
/// This is the layout the batch evaluation entry points consume
/// ([`FitnessFn::fitness_rows`], the synthesis models' batch kernels):
/// contiguous, SIMD-friendly, and free to slice into per-worker chunks.
#[derive(Debug, Clone, Copy)]
pub struct GeneRows<'a> {
    genes: &'a [u32],
    gene_len: usize,
}

impl<'a> GeneRows<'a> {
    /// Wraps a flat gene buffer.
    ///
    /// # Panics
    ///
    /// Panics if `gene_len` is zero or does not divide `genes.len()`.
    #[must_use]
    pub fn new(genes: &'a [u32], gene_len: usize) -> GeneRows<'a> {
        assert!(gene_len > 0, "gene_len must be positive");
        assert_eq!(genes.len() % gene_len, 0, "flat buffer must hold whole rows");
        GeneRows { genes, gene_len }
    }

    /// Genes per row.
    #[must_use]
    pub fn gene_len(&self) -> usize {
        self.gene_len
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.genes.len() / self.gene_len
    }

    /// Whether the view holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// The `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &'a [u32] {
        &self.genes[i * self.gene_len..(i + 1) * self.gene_len]
    }

    /// The underlying contiguous gene slice.
    #[must_use]
    pub fn flat(&self) -> &'a [u32] {
        self.genes
    }

    /// A sub-view of rows `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice_rows(&self, start: usize, end: usize) -> GeneRows<'a> {
        GeneRows {
            genes: &self.genes[start * self.gene_len..end * self.gene_len],
            gene_len: self.gene_len,
        }
    }

    /// Iterates rows in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &'a [u32]> {
        self.genes.chunks_exact(self.gene_len)
    }
}

/// Adapter turning a closure into a [`FitnessFn`].
///
/// ```
/// use nautilus_ga::{FnFitness, Direction, FitnessFn, Genome};
/// let f = FnFitness::new(Direction::Maximize, |g: &Genome| {
///     Some(g.genes().iter().map(|&x| f64::from(x)).sum())
/// });
/// assert_eq!(f.fitness(&Genome::from_genes(vec![1, 2])), Some(3.0));
/// ```
pub struct FnFitness<F> {
    direction: Direction,
    f: F,
}

impl<F> FnFitness<F>
where
    F: Fn(&Genome) -> Option<f64> + Send + Sync,
{
    /// Wraps `f` with the given optimization direction.
    pub fn new(direction: Direction, f: F) -> Self {
        FnFitness { direction, f }
    }
}

impl<F> FitnessFn for FnFitness<F>
where
    F: Fn(&Genome) -> Option<f64> + Send + Sync,
{
    fn direction(&self) -> Direction {
        self.direction
    }

    fn fitness(&self, genome: &Genome) -> Option<f64> {
        (self.f)(genome)
    }
}

impl<F> std::fmt::Debug for FnFitness<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnFitness").field("direction", &self.direction).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_comparisons() {
        assert!(Direction::Maximize.is_better(3.0, 2.0));
        assert!(!Direction::Maximize.is_better(2.0, 2.0));
        assert!(Direction::Minimize.is_better(2.0, 3.0));
        assert_eq!(Direction::Maximize.best_of(1.0, 5.0), 5.0);
        assert_eq!(Direction::Minimize.best_of(1.0, 5.0), 1.0);
    }

    #[test]
    fn score_mapping_round_trips() {
        for d in [Direction::Maximize, Direction::Minimize] {
            for v in [-2.5, 0.0, 7.0] {
                assert_eq!(d.from_score(d.to_score(v)), v);
            }
        }
        // Score space is always higher-is-better.
        for d in [Direction::Maximize, Direction::Minimize] {
            let (good, bad) = match d {
                Direction::Maximize => (10.0, 1.0),
                Direction::Minimize => (1.0, 10.0),
            };
            assert!(d.to_score(good) > d.to_score(bad));
        }
    }

    #[test]
    fn worst_values_lose_to_everything() {
        assert!(Direction::Maximize.is_better(0.0, Direction::Maximize.worst_value()));
        assert!(Direction::Minimize.is_better(0.0, Direction::Minimize.worst_value()));
    }

    #[test]
    fn fn_fitness_reports_infeasible() {
        let f = FnFitness::new(Direction::Minimize, |g: &Genome| {
            if g.gene_at(0) == 0 {
                None
            } else {
                Some(f64::from(g.gene_at(0)))
            }
        });
        assert_eq!(f.fitness(&Genome::from_genes(vec![0])), None);
        assert_eq!(f.fitness(&Genome::from_genes(vec![4])), Some(4.0));
        assert_eq!(f.direction(), Direction::Minimize);
    }
}
