//! Fitness functions and optimization direction.

use crate::genome::Genome;

/// Whether a query wants the metric pushed up or down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Larger metric values are better (e.g. frequency, throughput/LUT).
    Maximize,
    /// Smaller metric values are better (e.g. LUTs, area-delay product).
    Minimize,
}

impl Direction {
    /// Whether `a` is strictly better than `b` under this direction.
    ///
    /// ```
    /// use nautilus_ga::Direction;
    /// assert!(Direction::Maximize.is_better(2.0, 1.0));
    /// assert!(Direction::Minimize.is_better(1.0, 2.0));
    /// ```
    #[must_use]
    pub fn is_better(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Maximize => a > b,
            Direction::Minimize => a < b,
        }
    }

    /// Maps a raw metric value into higher-is-better score space.
    #[must_use]
    pub fn to_score(self, value: f64) -> f64 {
        match self {
            Direction::Maximize => value,
            Direction::Minimize => -value,
        }
    }

    /// Inverse of [`Direction::to_score`].
    #[must_use]
    pub fn from_score(self, score: f64) -> f64 {
        match self {
            Direction::Maximize => score,
            Direction::Minimize => -score,
        }
    }

    /// The better of two raw values.
    #[must_use]
    pub fn best_of(self, a: f64, b: f64) -> f64 {
        if self.is_better(a, b) {
            a
        } else {
            b
        }
    }

    /// The worst-possible raw value under this direction.
    #[must_use]
    pub fn worst_value(self) -> f64 {
        match self {
            Direction::Maximize => f64::NEG_INFINITY,
            Direction::Minimize => f64::INFINITY,
        }
    }
}

/// A fitness function over genomes.
///
/// In IP optimization each evaluation corresponds to a (simulated) synthesis
/// job; the engine always evaluates through a cache so revisited design
/// points are free, exactly as in the paper's methodology.
///
/// Returning `None` marks the design point *infeasible* (the generator
/// rejects that parameter combination); the engine assigns it the worst
/// possible score so it cannot survive selection.
pub trait FitnessFn: Send + Sync {
    /// The optimization direction of [`FitnessFn::fitness`] values.
    fn direction(&self) -> Direction;

    /// Evaluates the raw metric value for `genome`, or `None` if infeasible.
    fn fitness(&self, genome: &Genome) -> Option<f64>;
}

/// Adapter turning a closure into a [`FitnessFn`].
///
/// ```
/// use nautilus_ga::{FnFitness, Direction, FitnessFn, Genome};
/// let f = FnFitness::new(Direction::Maximize, |g: &Genome| {
///     Some(g.genes().iter().map(|&x| f64::from(x)).sum())
/// });
/// assert_eq!(f.fitness(&Genome::from_genes(vec![1, 2])), Some(3.0));
/// ```
pub struct FnFitness<F> {
    direction: Direction,
    f: F,
}

impl<F> FnFitness<F>
where
    F: Fn(&Genome) -> Option<f64> + Send + Sync,
{
    /// Wraps `f` with the given optimization direction.
    pub fn new(direction: Direction, f: F) -> Self {
        FnFitness { direction, f }
    }
}

impl<F> FitnessFn for FnFitness<F>
where
    F: Fn(&Genome) -> Option<f64> + Send + Sync,
{
    fn direction(&self) -> Direction {
        self.direction
    }

    fn fitness(&self, genome: &Genome) -> Option<f64> {
        (self.f)(genome)
    }
}

impl<F> std::fmt::Debug for FnFitness<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnFitness").field("direction", &self.direction).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_comparisons() {
        assert!(Direction::Maximize.is_better(3.0, 2.0));
        assert!(!Direction::Maximize.is_better(2.0, 2.0));
        assert!(Direction::Minimize.is_better(2.0, 3.0));
        assert_eq!(Direction::Maximize.best_of(1.0, 5.0), 5.0);
        assert_eq!(Direction::Minimize.best_of(1.0, 5.0), 1.0);
    }

    #[test]
    fn score_mapping_round_trips() {
        for d in [Direction::Maximize, Direction::Minimize] {
            for v in [-2.5, 0.0, 7.0] {
                assert_eq!(d.from_score(d.to_score(v)), v);
            }
        }
        // Score space is always higher-is-better.
        for d in [Direction::Maximize, Direction::Minimize] {
            let (good, bad) = match d {
                Direction::Maximize => (10.0, 1.0),
                Direction::Minimize => (1.0, 10.0),
            };
            assert!(d.to_score(good) > d.to_score(bad));
        }
    }

    #[test]
    fn worst_values_lose_to_everything() {
        assert!(Direction::Maximize.is_better(0.0, Direction::Maximize.worst_value()));
        assert!(Direction::Minimize.is_better(0.0, Direction::Minimize.worst_value()));
    }

    #[test]
    fn fn_fitness_reports_infeasible() {
        let f = FnFitness::new(Direction::Minimize, |g: &Genome| {
            if g.gene_at(0) == 0 {
                None
            } else {
                Some(f64::from(g.gene_at(0)))
            }
        });
        assert_eq!(f.fitness(&Genome::from_genes(vec![0])), None);
        assert_eq!(f.fitness(&Genome::from_genes(vec![4])), Some(4.0));
        assert_eq!(f.direction(), Direction::Minimize);
    }
}
