//! The generational GA engine.

use nautilus_obs::{capture_events, Phase, SearchEvent, SearchObserver, SpanRecorder, Tracer};

use crate::arena::PopArena;
use crate::budget::{RunBudget, StopReason};
use crate::cache::{CacheStats, EvalCache};
use crate::checkpoint::{CheckpointStore, SearchState};
use crate::error::{GaError, Result};
use crate::fallible::{
    evaluate_with_retries, EvalRecord, FallibleEvaluator, FaultStats, RetryPolicy,
};
use crate::fitness::{FitnessFn, GeneRows};
use crate::genome::Genome;
use crate::ops::{CrossoverOp, MutationOp, OnePointCrossover, OpCtx, UniformMutation};
use crate::pool::EvalPool;
use crate::rng::SearchRng;
use crate::select::{ScoredGenome, Selector, Tournament};
use crate::space::ParamSpace;
use crate::supervise::{Admission, AttemptOutcome, SuperviseSession, SuperviseStats, Supervisor};

/// Checkpoint aux-blob key carrying the supervision session (circuit
/// breaker state plus whole-run health counters) across a resume.
pub const AUX_BREAKER: &str = "ga.breaker";

/// Callback producing auxiliary blobs to embed in every checkpoint (the
/// `nautilus` crate uses it to carry its report snapshot and synthesis-job
/// counters across a resume).
pub type AuxSnapshotFn<'a> = &'a (dyn Fn() -> Vec<(String, Vec<u8>)> + Send + Sync);

/// Scalar knobs of a GA run.
///
/// Defaults reproduce the paper's methodology: "an initial population of 10
/// samples, a mutation rate of 0.1 ... and run for 80 generations".
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaSettings {
    /// Population size (paper: 10).
    pub population: usize,
    /// Number of breeding generations (paper: 80).
    pub generations: u32,
    /// Probability that a selected pair recombines (vs. cloning).
    pub crossover_rate: f64,
    /// Number of best individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// Attempts per slot when sampling a feasible initial population.
    pub init_retries: usize,
    /// Worker threads for per-generation batch evaluation of cache misses.
    ///
    /// `1` (the default) keeps the original inline serial path. `0`
    /// derives the count from [`std::thread::available_parallelism`]. Any
    /// other value spreads each generation's distinct cache misses over
    /// that many workers: the merge thread plus `workers - 1` persistent
    /// pool helpers that stay parked between generations. Every setting
    /// produces bit-for-bit identical runs per seed: the RNG is never
    /// touched during evaluation and results are merged back into the
    /// cache in deterministic first-occurrence order.
    pub eval_workers: usize,
}

impl Default for GaSettings {
    fn default() -> Self {
        GaSettings {
            population: 10,
            generations: 80,
            crossover_rate: 0.9,
            elitism: 2,
            init_retries: 200,
            eval_workers: 1,
        }
    }
}

impl GaSettings {
    fn validate(&self) -> Result<()> {
        if self.population == 0 {
            return Err(GaError::InvalidConfig("population must be at least 1".into()));
        }
        if self.elitism >= self.population {
            return Err(GaError::InvalidConfig(format!(
                "elitism {} must be smaller than population {}",
                self.elitism, self.population
            )));
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(GaError::InvalidConfig(format!(
                "crossover_rate {} outside [0, 1]",
                self.crossover_rate
            )));
        }
        if self.init_retries == 0 {
            return Err(GaError::InvalidConfig("init_retries must be at least 1".into()));
        }
        Ok(())
    }
}

/// Per-generation statistics recorded by [`GaEngine::run`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GenStats {
    /// Generation number; 0 is the initial random population.
    pub generation: u32,
    /// Cumulative distinct feasible evaluations (synthesis jobs) so far.
    pub distinct_evals: u64,
    /// Best raw metric value among feasible members of this generation
    /// (NaN if the generation has no feasible member).
    pub best_value: f64,
    /// Mean raw metric value over feasible members (NaN if none).
    pub mean_value: f64,
    /// Best raw metric value seen in any generation up to this one.
    pub best_so_far: f64,
}

/// Result of one GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaRun {
    /// Per-generation history (`generations + 1` entries; entry 0 is the
    /// initial population).
    pub history: Vec<GenStats>,
    /// The best genome found across the whole run.
    pub best_genome: Genome,
    /// Its raw metric value.
    pub best_value: f64,
    /// Evaluation-cache counters for the run.
    pub cache: CacheStats,
    /// Failure/retry/quarantine counters (all zero unless a fallible
    /// evaluator was installed and faults actually occurred).
    pub faults: FaultStats,
    /// Supervision health counters (all zero unless a [`Supervisor`] was
    /// installed): watchdog firings, hedge outcomes, breaker transitions
    /// and shed evaluations.
    pub health: SuperviseStats,
    /// Why the run stopped: [`StopReason::Completed`] for a full run, any
    /// other value when a [`RunBudget`] halted it at a generation boundary
    /// (in which case `history` covers only the generations scored so far).
    pub stop: StopReason,
}

impl GaRun {
    /// Cumulative distinct evaluations at the end of the run.
    #[must_use]
    pub fn total_evals(&self) -> u64 {
        self.cache.distinct_evals
    }

    /// First generation whose `best_so_far` meets `pred`, with its
    /// cumulative evaluation count.
    pub fn first_generation_where(&self, mut pred: impl FnMut(f64) -> bool) -> Option<(u32, u64)> {
        self.history
            .iter()
            .find(|g| g.best_so_far.is_finite() && pred(g.best_so_far))
            .map(|g| (g.generation, g.distinct_evals))
    }
}

/// A generational genetic algorithm over a [`ParamSpace`].
///
/// The engine is deliberately oblivious (the paper's "baseline GA"): genes
/// mutate uniformly and nothing biases value choice. Guided behaviour comes
/// from swapping the operators — see the `nautilus` crate.
///
/// ```
/// use nautilus_ga::{GaEngine, FnFitness, Direction, ParamSpace};
/// # fn main() -> Result<(), nautilus_ga::GaError> {
/// let space = ParamSpace::builder().int("x", 0, 31, 1).int("y", 0, 31, 1).build()?;
/// // Minimize x^2 + y^2: optimum at (0, 0).
/// let fitness = FnFitness::new(Direction::Minimize, |g: &nautilus_ga::Genome| {
///     let (x, y) = (f64::from(g.gene_at(0)), f64::from(g.gene_at(1)));
///     Some(x * x + y * y)
/// });
/// let run = GaEngine::new(&space, &fitness).run(42)?;
/// assert!(run.best_value <= 2.0);
/// # Ok(()) }
/// ```
pub struct GaEngine<'a> {
    space: &'a ParamSpace,
    fitness: &'a dyn FitnessFn,
    settings: GaSettings,
    mutation: Box<dyn MutationOp>,
    crossover: Box<dyn CrossoverOp>,
    selector: Box<dyn Selector>,
    observer: &'a dyn SearchObserver,
    run_label: String,
    fallible: Option<&'a dyn FallibleEvaluator>,
    retry: RetryPolicy,
    budget: RunBudget,
    checkpoints: Option<CheckpointStore>,
    aux: Option<AuxSnapshotFn<'a>>,
    supervisor: Option<&'a Supervisor<'a>>,
    tracer: Option<&'a Tracer>,
}

impl<'a> GaEngine<'a> {
    /// Creates an engine with the paper's baseline defaults.
    #[must_use]
    pub fn new(space: &'a ParamSpace, fitness: &'a dyn FitnessFn) -> Self {
        GaEngine {
            space,
            fitness,
            settings: GaSettings::default(),
            mutation: Box::new(UniformMutation::default()),
            crossover: Box::new(OnePointCrossover),
            selector: Box::new(Tournament::default()),
            observer: nautilus_obs::noop(),
            run_label: "ga".to_owned(),
            fallible: None,
            retry: RetryPolicy::default(),
            budget: RunBudget::new(),
            checkpoints: None,
            aux: None,
            supervisor: None,
            tracer: None,
        }
    }

    /// Attaches a [`Tracer`]: the run records phase spans (scoring,
    /// breeding operators, cache lookups, miss evaluations, batch
    /// dispatch/merge, checkpoint I/O) onto per-thread tracks.
    ///
    /// Tracing is determinism-safe by construction — recorders never touch
    /// the RNG or the event stream, and workers buffer spans locally until
    /// the generation merge point — so a traced run is bit-for-bit
    /// identical to an untraced one.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &'a Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Replaces the scalar settings.
    #[must_use]
    pub fn with_settings(mut self, settings: GaSettings) -> Self {
        self.settings = settings;
        self
    }

    /// Replaces the mutation operator (how Nautilus installs guidance).
    #[must_use]
    pub fn with_mutation(mut self, op: Box<dyn MutationOp>) -> Self {
        self.mutation = op;
        self
    }

    /// Replaces the crossover operator.
    #[must_use]
    pub fn with_crossover(mut self, op: Box<dyn CrossoverOp>) -> Self {
        self.crossover = op;
        self
    }

    /// Replaces the parent selector.
    #[must_use]
    pub fn with_selector(mut self, sel: Box<dyn Selector>) -> Self {
        self.selector = sel;
        self
    }

    /// Routes run telemetry ([`SearchEvent`]s) to `observer`.
    ///
    /// The default is the disabled no-op observer, whose cost is one
    /// predictable branch per emission site.
    #[must_use]
    pub fn with_observer(mut self, observer: &'a dyn SearchObserver) -> Self {
        self.observer = observer;
        self
    }

    /// Sets the strategy label reported in [`SearchEvent::RunStart`]
    /// (default `"ga"`).
    #[must_use]
    pub fn with_run_label(mut self, label: impl Into<String>) -> Self {
        self.run_label = label.into();
        self
    }

    /// Routes every evaluation through a fallible boundary instead of the
    /// plain [`FitnessFn`].
    ///
    /// Failed attempts are retried per the [`RetryPolicy`]; a genome whose
    /// retries are exhausted (or whose failure is not retryable) is
    /// *quarantined* — memoized with penalized (infeasible) fitness so the
    /// generation proceeds without it and it is never evaluated again.
    /// The installed [`FitnessFn`] still supplies the optimization
    /// direction; it is no longer called for values.
    #[must_use]
    pub fn with_fallible_evaluator(mut self, eval: &'a dyn FallibleEvaluator) -> Self {
        self.fallible = Some(eval);
        self
    }

    /// Replaces the retry policy used with a fallible evaluator.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Installs a [`Supervisor`]: generational scoring routes through the
    /// supervised batched path (watchdog deadlines, straggler hedging,
    /// circuit breaker) at every `eval_workers` setting, and the breaker
    /// state rides every checkpoint under the [`AUX_BREAKER`] aux key.
    ///
    /// The initial population still uses the serial fallible path (if a
    /// fallible evaluator is installed) or the plain fitness function —
    /// supervision is a property of the batched generational loop.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: &'a Supervisor<'a>) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// Installs a [`RunBudget`]: the run is checked at every generation
    /// boundary and halts (cleanly, with a final checkpoint when a store
    /// is configured) as soon as any limit is exceeded. The reason lands
    /// in [`GaRun::stop`].
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Writes a durable checkpoint into `store` at every generation
    /// boundary, so the run can be resumed after a crash or budget stop
    /// with [`GaEngine::resume`].
    #[must_use]
    pub fn with_checkpoints(mut self, store: CheckpointStore) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// Installs a callback whose blobs are embedded (keyed) in every
    /// checkpoint, letting higher layers persist their own state alongside
    /// the engine's. Blobs come back verbatim via
    /// [`SearchState::aux_blob`] after recovery.
    #[must_use]
    pub fn with_checkpoint_aux(mut self, aux: AuxSnapshotFn<'a>) -> Self {
        self.aux = Some(aux);
        self
    }

    /// The engine's retry policy.
    #[must_use]
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The engine's scalar settings.
    #[must_use]
    pub fn settings(&self) -> &GaSettings {
        &self.settings
    }

    /// The parameter space being searched.
    #[must_use]
    pub fn space(&self) -> &ParamSpace {
        self.space
    }

    /// Executes one full run with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::InvalidConfig`] for inconsistent settings and
    /// [`GaError::NoFeasibleGenome`] if the initial population cannot find
    /// any feasible design point within the retry budget.
    pub fn run(&self, seed: u64) -> Result<GaRun> {
        self.drive(seed, None)
    }

    /// Continues a run from a checkpointed [`SearchState`].
    ///
    /// The resumed run produces the same [`GaRun`] (history, best genome,
    /// cache counters) as the uninterrupted run would have, at any
    /// `eval_workers` setting: the state carries the exact RNG stream
    /// position and evaluation cache of the original process.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::Checkpoint`] when the engine's settings are
    /// incompatible with the checkpointed ones (`eval_workers` is exempt —
    /// worker count never affects results), plus everything
    /// [`GaEngine::run`] can return.
    pub fn resume(&self, state: SearchState) -> Result<GaRun> {
        let theirs = state.settings;
        let ours = self.settings;
        let compatible = ours.population == theirs.population
            && ours.generations == theirs.generations
            && ours.crossover_rate == theirs.crossover_rate
            && ours.elitism == theirs.elitism
            && ours.init_retries == theirs.init_retries;
        if !compatible {
            return Err(GaError::Checkpoint(format!(
                "engine settings {ours:?} incompatible with checkpointed {theirs:?}"
            )));
        }
        if state.generation == 0 || state.generation > self.settings.generations {
            return Err(GaError::Checkpoint(format!(
                "checkpoint generation {} outside run's 1..={}",
                state.generation, self.settings.generations
            )));
        }
        if state.population.len() != self.settings.population {
            return Err(GaError::Checkpoint(format!(
                "checkpoint population {} does not match settings {}",
                state.population.len(),
                self.settings.population
            )));
        }
        let seed = state.seed;
        self.drive(seed, Some(state))
    }

    /// Shared run loop behind [`GaEngine::run`] (fresh start) and
    /// [`GaEngine::resume`] (continue from a checkpointed boundary).
    fn drive(&self, seed: u64, resume: Option<SearchState>) -> Result<GaRun> {
        self.settings.validate()?;
        self.retry.validate().map_err(GaError::InvalidConfig)?;
        let mut session: Option<SuperviseSession> = match self.supervisor {
            Some(sup) => {
                sup.policy().validate().map_err(GaError::InvalidConfig)?;
                Some(SuperviseSession::new(*sup.policy()))
            }
            None => None,
        };
        let direction = self.fitness.direction();
        let obs = self.observer;
        let run_clock = std::time::Instant::now();
        let timer = self.budget.start_timer();
        let workers = resolve_eval_workers(self.settings.eval_workers);
        // Persistent helper pool for the whole run: the merge thread is
        // worker slot 0 and `workers - 1` parked helpers fill slots
        // `1..workers`, so per-generation dispatch no longer pays thread
        // spawn/join. `workers == 1` keeps the pool threadless and free.
        let pool = EvalPool::new(workers.saturating_sub(1));
        // Merge-thread span recorder; the root `Run` span makes per-phase
        // self times telescope to the run's wall clock.
        let mut rec = self.tracer.map(|t| t.recorder("merge"));
        let run_span = rec.as_ref().map(SpanRecorder::begin);

        let mut rng;
        let mut cache;
        let mut faults;
        let mut population: PopArena;
        let mut history: Vec<GenStats>;
        let mut best_genome: Option<Genome>;
        let mut best_value;
        let mut attempts;
        let start_generation;
        // Best value already pinned to `best.nckpt`; avoids rewriting the
        // pin at boundaries where the best did not improve.
        let mut pinned_best: Option<f64>;

        if let Some(state) = resume {
            // Restore supervision state (breaker + health counters) from
            // the aux blob before the state's fields are moved out.
            if let Some(sup) = self.supervisor {
                if let Some(bytes) = state.aux_blob(AUX_BREAKER) {
                    session =
                        Some(SuperviseSession::restore_bytes(*sup.policy(), bytes).map_err(
                            |e| GaError::Checkpoint(format!("supervision snapshot: {e}")),
                        )?);
                }
            }
            rng = SearchRng::from_state(state.rng);
            cache = EvalCache::restore(&state.cache);
            faults = state.faults;
            population = PopArena::from_genomes(&state.population);
            history = state.history;
            best_genome = state.best_genome;
            best_value =
                if best_genome.is_some() { state.best_value } else { direction.worst_value() };
            attempts = state.init_attempts;
            start_generation = state.generation;
            pinned_best = best_genome.is_some().then_some(best_value);
            if obs.enabled() {
                obs.on_event(&SearchEvent::RunResumed {
                    strategy: self.run_label.clone(),
                    seed,
                    generation: start_generation,
                });
            }
        } else {
            rng = SearchRng::seed_from_u64(seed);
            cache = EvalCache::new();
            faults = FaultStats::default();
            best_genome = None;
            best_value = direction.worst_value();
            start_generation = 0;
            pinned_best = None;
            if obs.enabled() {
                obs.on_event(&SearchEvent::RunStart {
                    strategy: self.run_label.clone(),
                    seed,
                    params: self
                        .space
                        .param_ids()
                        .map(|id| self.space.param(id).name().to_owned())
                        .collect(),
                    population: self.settings.population,
                    generations: self.settings.generations,
                });
            }

            // --- Initial population ---------------------------------------
            let mut init_pop: Vec<Genome> = Vec::with_capacity(self.settings.population);
            let max_attempts = self.settings.population * self.settings.init_retries;
            attempts = 0;
            {
                let _span = nautilus_obs::span(obs, "init_population");
                let init_start = rec.as_ref().map(SpanRecorder::begin);
                while init_pop.len() < self.settings.population {
                    if attempts >= max_attempts {
                        if init_pop.is_empty() {
                            return Err(GaError::NoFeasibleGenome { attempts });
                        }
                        // Partial population: fill remaining slots with clones
                        // of what we found so we can still proceed.
                        while init_pop.len() < self.settings.population {
                            let idx = init_pop.len() % init_pop.len().max(1);
                            init_pop.push(init_pop[idx].clone());
                        }
                        break;
                    }
                    attempts += 1;
                    let g = self.space.random_genome(&mut rng);
                    let feasible =
                        self.eval_into_cache(&mut cache, &g, &mut faults, &mut rec).is_some();
                    if feasible {
                        init_pop.push(g);
                    }
                }
                if let (Some(r), Some(start)) = (rec.as_mut(), init_start) {
                    r.end(Phase::InitPopulation, start);
                }
            }
            population = PopArena::from_genomes(&init_pop);
            history = Vec::with_capacity(self.settings.generations as usize + 1);
        }

        // --- Generational loop --------------------------------------------
        let mut stop = StopReason::Completed;

        for generation in start_generation..=self.settings.generations {
            if obs.enabled() {
                obs.on_event(&SearchEvent::GenerationStart { generation });
            }
            // Score the population (cache makes revisits free).
            let scoring_span = nautilus_obs::span(obs, "scoring");
            let scoring_start = rec.as_ref().map(SpanRecorder::begin);
            let mut scored: Vec<ScoredGenome> = if let Some(sup) = self.supervisor {
                // Supervision always takes the batched path: watchdog,
                // hedging and breaker decisions live in the merge loop,
                // which is identical at every worker count.
                self.score_supervised(
                    &population,
                    &mut cache,
                    &mut faults,
                    workers.max(1),
                    generation,
                    sup,
                    session.as_mut().expect("session exists whenever a supervisor is installed"),
                    &pool,
                    &mut rec,
                )
            } else if workers <= 1 {
                let mut scratch = Genome::from_genes(Vec::with_capacity(population.gene_len()));
                let mut scored = Vec::with_capacity(population.len());
                for i in 0..population.len() {
                    scratch.copy_from_slice(population.row(i));
                    let raw = self.eval_into_cache(&mut cache, &scratch, &mut faults, &mut rec);
                    let score = raw.map_or(f64::NEG_INFINITY, |v| direction.to_score(v));
                    scored.push(ScoredGenome { genome: scratch.clone(), score });
                }
                scored
            } else {
                self.score_batched(
                    &population,
                    &mut cache,
                    &mut faults,
                    workers,
                    generation,
                    &pool,
                    &mut rec,
                )
            };
            // Best-first, deterministic tie-break on the genome itself.
            scored.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.genome.cmp(&b.genome))
            });
            if let (Some(r), Some(start)) = (rec.as_mut(), scoring_start) {
                r.end(Phase::Scoring, start);
            }
            drop(scoring_span);

            let feasible: Vec<f64> = scored
                .iter()
                .filter(|s| s.score.is_finite())
                .map(|s| direction.from_score(s.score))
                .collect();
            let gen_best = feasible.first().copied().unwrap_or(f64::NAN);
            let gen_mean = if feasible.is_empty() {
                f64::NAN
            } else {
                feasible.iter().sum::<f64>() / feasible.len() as f64
            };
            if let Some(first) = scored.first() {
                if first.score.is_finite() {
                    let raw = direction.from_score(first.score);
                    if best_genome.is_none() || direction.is_better(raw, best_value) {
                        best_value = raw;
                        best_genome = Some(first.genome.clone());
                    }
                }
            }
            history.push(GenStats {
                generation,
                distinct_evals: cache.distinct_evals(),
                best_value: gen_best,
                mean_value: gen_mean,
                best_so_far: if best_genome.is_some() { best_value } else { f64::NAN },
            });
            if obs.enabled() {
                obs.on_event(&SearchEvent::GenerationEnd {
                    generation,
                    best: gen_best,
                    mean: gen_mean,
                    best_so_far: if best_genome.is_some() { best_value } else { f64::NAN },
                    distinct_evals: cache.distinct_evals(),
                    cache_hits: cache.hits(),
                    infeasible: cache.infeasible_evals(),
                });
            }

            if generation == self.settings.generations {
                break;
            }

            // Breed the next generation.
            let _breeding_span = nautilus_obs::span(obs, "breeding");
            let ctx = OpCtx::with_observer(generation, self.settings.generations, obs);
            // Children are written into the arena's next-generation buffer
            // and promoted by one allocation-free swap at the end.
            for s in scored.iter().take(self.settings.elitism) {
                population.push_next(s.genome.genes());
            }
            while population.next_len() < self.settings.population {
                let ia =
                    timed(&mut rec, Phase::Selection, || self.selector.select(&scored, &mut rng));
                let ib =
                    timed(&mut rec, Phase::Selection, || self.selector.select(&scored, &mut rng));
                let pa = &scored[ia].genome;
                let pb = &scored[ib].genome;
                if obs.enabled() {
                    let kind = self.selector.name().to_owned();
                    obs.on_event(&SearchEvent::SelectionInvoked { generation, kind: kind.clone() });
                    obs.on_event(&SearchEvent::SelectionInvoked { generation, kind });
                }
                let crossed = rand::RngExt::random_bool(&mut rng, self.settings.crossover_rate);
                let (mut ca, mut cb) = if crossed {
                    if obs.enabled() {
                        obs.on_event(&SearchEvent::CrossoverApplied {
                            generation,
                            kind: self.crossover.name().to_owned(),
                        });
                    }
                    timed(&mut rec, Phase::Crossover, || {
                        self.crossover.crossover(pa, pb, self.space, &ctx, &mut rng)
                    })
                } else {
                    (pa.clone(), pb.clone())
                };
                timed(&mut rec, Phase::Mutation, || {
                    self.mutation.mutate(&mut ca, self.space, &ctx, &mut rng);
                });
                population.push_next(ca.genes());
                if population.next_len() < self.settings.population {
                    timed(&mut rec, Phase::Mutation, || {
                        self.mutation.mutate(&mut cb, self.space, &ctx, &mut rng);
                    });
                    population.push_next(cb.genes());
                }
            }
            population.swap();
            drop(_breeding_span);

            // --- Generation boundary: checkpoint, then budget check -------
            let next_generation = generation + 1;
            if let Some(store) = &self.checkpoints {
                let improved = best_genome.is_some()
                    && pinned_best.is_none_or(|pinned| direction.is_better(best_value, pinned));
                let mut aux = self.aux.map_or_else(Vec::new, |f| f());
                if let Some(session) = &session {
                    aux.push((AUX_BREAKER.to_owned(), session.snapshot_bytes()));
                }
                let state = SearchState {
                    seed,
                    run_label: self.run_label.clone(),
                    settings: self.settings,
                    generation: next_generation,
                    rng: rng.state(),
                    population: population.to_genomes(),
                    history: history.clone(),
                    best_genome: best_genome.clone(),
                    best_value,
                    init_attempts: attempts,
                    cache: cache.snapshot(),
                    faults,
                    aux,
                };
                let receipt =
                    timed(&mut rec, Phase::CheckpointIo, || store.write(&state, improved))?;
                if improved {
                    pinned_best = Some(best_value);
                }
                if obs.enabled() {
                    obs.on_event(&SearchEvent::CheckpointWritten {
                        generation: next_generation,
                        bytes: receipt.bytes,
                        write_nanos: receipt.write_nanos,
                        path: receipt.path.display().to_string(),
                    });
                }
            }
            // Generation boundary is the deterministic flush point for the
            // merge thread's span buffer.
            if let Some(r) = rec.as_mut() {
                r.flush();
            }
            let reason =
                self.budget.stop_reason(next_generation, cache.distinct_evals(), timer.elapsed());
            if reason.is_interrupted() {
                stop = reason;
                break;
            }
        }

        let best_genome = best_genome.ok_or(GaError::NoFeasibleGenome { attempts })?;
        if obs.enabled() {
            if stop.is_interrupted() {
                obs.on_event(&SearchEvent::RunInterrupted {
                    generation: history.last().map_or(0, |h| h.generation + 1),
                    reason: stop.as_str().to_owned(),
                });
            } else {
                obs.on_event(&SearchEvent::RunEnd {
                    best_value,
                    distinct_evals: cache.distinct_evals(),
                    wall_nanos: u64::try_from(run_clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
                });
            }
        }
        if let (Some(r), Some(start)) = (rec.as_mut(), run_span) {
            r.end(Phase::Run, start);
            r.flush();
        }
        Ok(GaRun {
            history,
            best_genome,
            best_value,
            cache: cache.stats(),
            faults,
            health: session.as_ref().map_or_else(SuperviseStats::default, SuperviseSession::stats),
            stop,
        })
    }

    /// Evaluates `genome` into the cache, charging a hit when memoized.
    ///
    /// This is the single evaluation funnel for the serial paths (initial
    /// population and serial scoring): without a fallible evaluator it is
    /// counter-identical to `EvalCache::get_or_eval`; with one it runs the
    /// retry loop and quarantines on exhaustion.
    fn eval_into_cache(
        &self,
        cache: &mut EvalCache,
        genome: &Genome,
        faults: &mut FaultStats,
        rec: &mut Option<SpanRecorder<'_>>,
    ) -> Option<f64> {
        if let Some(value) = timed(rec, Phase::CacheLookup, || cache.lookup(genome)) {
            return value;
        }
        match self.fallible {
            None => {
                let value = timed(rec, Phase::MissEval, || self.fitness.fitness(genome));
                cache.insert_evaluated(genome, value);
                value
            }
            Some(eval) => {
                let record = timed(rec, Phase::MissEval, || {
                    evaluate_with_retries(eval, genome, &self.retry)
                });
                self.note_record(&record, faults);
                match record.value {
                    Some(value) => {
                        cache.insert_evaluated(genome, value);
                        value
                    }
                    None => {
                        cache.insert_quarantined(genome);
                        None
                    }
                }
            }
        }
    }

    /// Folds one finished evaluation record into the fault counters and
    /// the event stream. Clean records are free.
    ///
    /// Events for a batch-evaluated generation are emitted here by the
    /// merge loop in first-occurrence miss order — the same order the
    /// serial path produces — so observed streams stay bit-identical at
    /// any worker count.
    fn note_record(&self, record: &EvalRecord, faults: &mut FaultStats) {
        if record.failures.is_empty() {
            return;
        }
        faults.record(record);
        let obs = self.observer;
        if !obs.enabled() {
            return;
        }
        for (i, failure) in record.failures.iter().enumerate() {
            obs.on_event(&SearchEvent::EvalAttemptFailed {
                kind: failure.kind(),
                attempt: i as u32 + 1,
                retryable: failure.is_retryable(),
            });
        }
        for (i, nanos) in record.backoffs_nanos.iter().enumerate() {
            obs.on_event(&SearchEvent::EvalRetried {
                attempt: i as u32 + 1,
                backoff_nanos: *nanos,
            });
        }
        match record.value {
            Some(_) => obs.on_event(&SearchEvent::EvalRecovered {
                failed_attempts: record.failures.len() as u32,
            }),
            None => obs.on_event(&SearchEvent::GenomeQuarantined {
                attempts: record.failures.len() as u32,
                kind: record.failures.last().expect("failures checked non-empty").kind(),
            }),
        }
    }

    /// Scores one generation by evaluating its distinct cache misses as a
    /// parallel batch on the persistent [`EvalPool`].
    ///
    /// Equivalence with the serial path is by construction:
    ///
    /// 1. Misses are collected — as packed gene rows in one contiguous
    ///    buffer — in first-occurrence population order, the exact order
    ///    the serial path would have evaluated them.
    /// 2. Workers pull contiguous row chunks from an atomic cursor; the
    ///    RNG is never touched and completion order is irrelevant because
    ///    results are keyed by starting row index.
    /// 3. Results are inserted into the cache in first-occurrence order,
    ///    so miss counters and map contents match the serial path.
    ///    Captured evaluator telemetry replays in that same order: chunks
    ///    are contiguous ranges of the miss list, so sorted chunk
    ///    concatenation *is* the serial per-miss event order.
    /// 4. The scoring pass then charges a cache hit for every lookup the
    ///    serial path would have answered from the cache (everything
    ///    except each miss's first occurrence).
    #[allow(clippy::too_many_arguments)]
    fn score_batched(
        &self,
        population: &PopArena,
        cache: &mut EvalCache,
        faults: &mut FaultStats,
        workers: usize,
        generation: u32,
        pool: &EvalPool,
        rec: &mut Option<SpanRecorder<'_>>,
    ) -> Vec<ScoredGenome> {
        let direction = self.fitness.direction();
        let obs = self.observer;
        let gene_len = population.gene_len();
        let mut queued: std::collections::HashSet<&[u32]> = std::collections::HashSet::new();
        let mut miss_buf: Vec<u32> = Vec::new();
        timed(rec, Phase::CacheLookup, || {
            for row in population.rows() {
                if cache.peek_genes(row).is_none() && queued.insert(row) {
                    miss_buf.extend_from_slice(row);
                }
            }
        });
        let n = miss_buf.len() / gene_len;

        if obs.enabled() {
            obs.on_event(&SearchEvent::EvalBatch {
                generation,
                size: n,
                workers: workers.min(n.max(1)),
            });
        }

        if n > 0 {
            let fitness = self.fitness;
            let fallible = self.fallible;
            let retry = self.retry;
            let tracer = self.tracer;
            let capture = obs.enabled();
            let rows = GeneRows::new(&miss_buf, gene_len);
            let total = workers.min(n);
            // Four chunks per worker balance tail latency against
            // per-chunk overhead; chunks stay contiguous so sorted replay
            // preserves the serial event order.
            let chunk = n.div_ceil(total * 4).max(1);
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let results: std::sync::Mutex<Vec<ChunkResult>> = std::sync::Mutex::new(Vec::new());
            // Every worker — the merge thread runs slot 0 itself — drains
            // chunks off the cursor. Telemetry the evaluator emits is
            // captured into per-chunk local buffers instead of racing into
            // the shared observer; the merge loop below replays it all in
            // deterministic first-occurrence order.
            let job = |slot: usize| {
                let mut wrec = tracer.map(|t| t.recorder(&format!("worker-{slot}")));
                let mut local: Vec<ChunkResult> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    match fallible {
                        None => {
                            // Infallible misses evaluate as one SoA batch
                            // kernel call over the whole chunk.
                            let view = rows.slice_rows(start, end);
                            let eval_chunk = || {
                                let mut vals = Vec::with_capacity(end - start);
                                fitness.fitness_rows(view, &mut vals);
                                vals
                            };
                            let (vals, events) = timed(&mut wrec, Phase::MissEval, || {
                                if capture {
                                    capture_events(eval_chunk)
                                } else {
                                    (eval_chunk(), Vec::new())
                                }
                            });
                            let records = vals.into_iter().map(EvalRecord::evaluated).collect();
                            local.push((start, records, events));
                        }
                        Some(eval) => {
                            // The fallible path stays per-row: each row's
                            // captured events must interleave with its own
                            // fault events at the merge.
                            let mut scratch = Genome::from_genes(Vec::with_capacity(gene_len));
                            for i in start..end {
                                scratch.copy_from_slice(rows.row(i));
                                let eval_one = || evaluate_with_retries(eval, &scratch, &retry);
                                let (record, events) = timed(&mut wrec, Phase::MissEval, || {
                                    if capture {
                                        capture_events(eval_one)
                                    } else {
                                        (eval_one(), Vec::new())
                                    }
                                });
                                local.push((i, vec![record], events));
                            }
                        }
                    }
                }
                if !local.is_empty() {
                    results.lock().expect("batch results lock").extend(local);
                }
            };
            // Dispatch is the O(1) publish alone. The wake is billed to
            // `batch_wait` along with the drain: on a single-core host
            // `notify_all` preempts this thread in favor of the woken
            // helpers, so the wake call blocks for helper compute time.
            let ticket =
                timed(rec, Phase::BatchDispatch, || pool.publish(&job, total.saturating_sub(1)));
            timed(rec, Phase::BatchWait, || ticket.wake());
            job(0);
            timed(rec, Phase::BatchWait, || ticket.wait());
            let mut results = results.into_inner().expect("batch results lock");
            results.sort_unstable_by_key(|r| r.0);
            // Merge in first-occurrence order so cache counters and fault
            // events replay exactly as the serial path would emit them.
            timed(rec, Phase::BatchMerge, || {
                for (start, records, events) in &results {
                    if obs.enabled() {
                        for e in events {
                            obs.on_event(e);
                        }
                    }
                    for (k, record) in records.iter().enumerate() {
                        let row = rows.row(start + k);
                        self.note_record(record, faults);
                        match record.value {
                            Some(value) => cache.insert_evaluated_genes(row, value),
                            None => cache.insert_quarantined_genes(row),
                        }
                    }
                }
            });
        }

        // `queued` doubles as the not-yet-charged first-occurrence set.
        let mut fresh = queued;
        timed(rec, Phase::CacheLookup, || {
            population
                .rows()
                .map(|row| {
                    let raw = if fresh.remove(row) {
                        cache.peek_genes(row).expect("batch inserted this genome")
                    } else {
                        cache.lookup_genes(row).expect("population member must be cached by now")
                    };
                    let score = raw.map_or(f64::NEG_INFINITY, |v| direction.to_score(v));
                    ScoredGenome { genome: Genome::from_genes(row.to_vec()), score }
                })
                .collect()
        })
    }

    /// Scores one generation under supervision: breaker admission, worker
    /// precomputation of attempt outcomes, then a merge-order virtual
    /// retry loop with watchdog and hedging.
    ///
    /// Determinism across worker counts holds because every decision that
    /// can differ between runs is made on the merge thread in
    /// first-occurrence miss order: admission is frozen before any
    /// evaluation starts, workers only precompute the deterministic
    /// per-genome attempt slices (pulling indices from an atomic cursor,
    /// results keyed by index), and hedges / post-hedge retries are
    /// evaluated inline during the merge.
    #[allow(clippy::too_many_arguments)]
    fn score_supervised(
        &self,
        population: &PopArena,
        cache: &mut EvalCache,
        faults: &mut FaultStats,
        workers: usize,
        generation: u32,
        sup: &Supervisor<'_>,
        session: &mut SuperviseSession,
        pool: &EvalPool,
        rec: &mut Option<SpanRecorder<'_>>,
    ) -> Vec<ScoredGenome> {
        let direction = self.fitness.direction();
        let obs = self.observer;
        let mut queued: std::collections::HashSet<&[u32]> = std::collections::HashSet::new();
        // Supervision hands genomes to evaluator traits, so misses are
        // rehydrated here (they are few and each costs a full evaluation).
        let mut misses: Vec<Genome> = Vec::new();
        timed(rec, Phase::CacheLookup, || {
            for row in population.rows() {
                if cache.peek_genes(row).is_none() && queued.insert(row) {
                    misses.push(Genome::from_genes(row.to_vec()));
                }
            }
        });

        // Admission is frozen at batch start, in first-occurrence order:
        // a breaker trip mid-merge affects the next batch, never this
        // one. Shed genomes are quarantined on the spot — degraded
        // cache-only mode costs no retry budget.
        session.begin_batch();
        let mut admitted: Vec<(&Genome, bool)> = Vec::new();
        for g in &misses {
            match session.admit(obs) {
                Admission::Shed => cache.insert_quarantined(g),
                Admission::Evaluate => admitted.push((g, false)),
                Admission::Probe => admitted.push((g, true)),
            }
        }

        if obs.enabled() {
            obs.on_event(&SearchEvent::EvalBatch {
                generation,
                size: admitted.len(),
                workers: workers.min(admitted.len().max(1)),
            });
        }

        if !admitted.is_empty() {
            let retry = self.retry;
            let tracer = self.tracer;
            let capture = obs.enabled();
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let n = admitted.len();
            let results: std::sync::Mutex<Vec<PrecomputedAttempts>> =
                std::sync::Mutex::new(Vec::new());
            let admitted_ref = &admitted;
            let job = |slot: usize| {
                let mut wrec = tracer.map(|t| t.recorder(&format!("worker-{slot}")));
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let precompute_one = || sup.precompute(&retry, admitted_ref[i].0);
                    let outcome = timed(&mut wrec, Phase::MissEval, || {
                        if capture {
                            capture_events(precompute_one)
                        } else {
                            (precompute_one(), Vec::new())
                        }
                    });
                    local.push((i, outcome));
                }
                if !local.is_empty() {
                    results.lock().expect("precompute results lock").extend(local);
                }
            };
            let ticket = timed(rec, Phase::BatchDispatch, || {
                pool.publish(&job, workers.min(n).saturating_sub(1))
            });
            timed(rec, Phase::BatchWait, || ticket.wake());
            job(0);
            timed(rec, Phase::BatchWait, || ticket.wait());
            let mut precomputed = results.into_inner().expect("precompute results lock");
            precomputed.sort_unstable_by_key(|&(i, _)| i);
            // Replay every worker's captured telemetry in admitted order
            // before the first resolve decision — exactly the stream a
            // single worker would have produced.
            if obs.enabled() {
                for (_, (_, events)) in &precomputed {
                    for e in events {
                        obs.on_event(e);
                    }
                }
            }
            timed(rec, Phase::BatchMerge, || {
                for (&(g, probe), (_, (outcomes, _))) in admitted.iter().zip(&precomputed) {
                    let record =
                        session.resolve(sup.evaluator(), &self.retry, g, outcomes, probe, obs);
                    self.note_record(&record, faults);
                    match record.value {
                        Some(value) => cache.insert_evaluated(g, value),
                        None => cache.insert_quarantined(g),
                    }
                }
            });
        }

        let mut fresh = queued;
        timed(rec, Phase::CacheLookup, || {
            population
                .rows()
                .map(|row| {
                    let raw = if fresh.remove(row) {
                        cache.peek_genes(row).expect("batch resolved this genome")
                    } else {
                        cache.lookup_genes(row).expect("population member must be cached by now")
                    };
                    let score = raw.map_or(f64::NEG_INFINITY, |v| direction.to_score(v));
                    ScoredGenome { genome: Genome::from_genes(row.to_vec()), score }
                })
                .collect()
        })
    }
}

/// One contiguous chunk's merged payload from the batched scoring path:
/// `(starting miss index, one record per row, telemetry captured while the
/// chunk evaluated)`.
type ChunkResult = (usize, Vec<EvalRecord>, Vec<SearchEvent>);

/// One admitted genome's precomputed supervised attempts plus the
/// telemetry captured while producing them: `(admitted index, (attempt
/// outcomes, buffered events))`.
type PrecomputedAttempts = (usize, (Vec<AttemptOutcome>, Vec<SearchEvent>));

/// Runs `f` inside a `phase` span when a recorder is attached; with
/// tracing off the cost is one branch on a `None`.
fn timed<R>(rec: &mut Option<SpanRecorder<'_>>, phase: Phase, f: impl FnOnce() -> R) -> R {
    match rec.as_mut() {
        Some(r) => r.time(phase, f),
        None => f(),
    }
}

/// Maps the [`GaSettings::eval_workers`] setting to a concrete worker
/// count (`0` → available parallelism, minimum 1).
fn resolve_eval_workers(setting: usize) -> usize {
    if setting == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        setting
    }
}

impl std::fmt::Debug for GaEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaEngine")
            .field("settings", &self.settings)
            .field("mutation", &self.mutation.name())
            .field("crossover", &self.crossover.name())
            .field("selector", &self.selector.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{Direction, FnFitness};

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .int("x", 0, 31, 1)
            .int("y", 0, 31, 1)
            .int("z", 0, 31, 1)
            .build()
            .unwrap()
    }

    fn sphere() -> FnFitness<impl Fn(&Genome) -> Option<f64> + Send + Sync> {
        FnFitness::new(Direction::Minimize, |g: &Genome| {
            Some(g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum())
        })
    }

    #[test]
    fn converges_on_separable_minimization() {
        let s = space();
        let f = sphere();
        let run = GaEngine::new(&s, &f).run(1).unwrap();
        assert!(run.best_value <= 10.0, "GA failed to converge: {}", run.best_value);
        assert_eq!(run.history.len(), 81);
        assert_eq!(run.history[0].generation, 0);
        assert_eq!(run.history[80].generation, 80);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let s = space();
        let f = sphere();
        let e = GaEngine::new(&s, &f);
        let a = e.run(7).unwrap();
        let b = e.run(7).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.best_genome, b.best_genome);
        let c = e.run(8).unwrap();
        assert_ne!(a.history, c.history, "different seeds should differ");
    }

    #[test]
    fn best_so_far_is_monotone_and_matches_result() {
        let s = space();
        let f = sphere();
        let run = GaEngine::new(&s, &f).run(3).unwrap();
        for w in run.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far, "best_so_far worsened: {w:?}");
        }
        assert_eq!(run.history.last().unwrap().best_so_far, run.best_value);
    }

    #[test]
    fn distinct_evals_are_monotone_and_bounded() {
        let s = space();
        let f = sphere();
        let run = GaEngine::new(&s, &f).run(4).unwrap();
        for w in run.history.windows(2) {
            assert!(w[1].distinct_evals >= w[0].distinct_evals);
        }
        // At most pop + pop * generations evaluations (usually far fewer
        // because the cache absorbs revisits).
        assert!(run.total_evals() <= 10 + 10 * 80);
        assert!(run.total_evals() >= 10);
    }

    #[test]
    fn infeasible_regions_are_avoided() {
        let s = space();
        // Half the space (x < 16) is infeasible.
        let f = FnFitness::new(Direction::Minimize, |g: &Genome| {
            if g.gene_at(0) < 16 {
                None
            } else {
                Some(f64::from(g.gene_at(0)) + f64::from(g.gene_at(1)))
            }
        });
        let run = GaEngine::new(&s, &f).run(5).unwrap();
        assert!(run.best_genome.gene_at(0) >= 16);
        assert!(run.best_value >= 16.0);
        assert!(run.cache.infeasible_evals > 0, "should have probed infeasible region");
    }

    #[test]
    fn fully_infeasible_space_errors() {
        let s = space();
        let f = FnFitness::new(Direction::Minimize, |_: &Genome| None);
        let err = GaEngine::new(&s, &f).run(6).unwrap_err();
        assert!(matches!(err, GaError::NoFeasibleGenome { .. }));
    }

    #[test]
    fn invalid_settings_are_rejected() {
        let s = space();
        let f = sphere();
        let bad_pop = GaSettings { population: 0, ..GaSettings::default() };
        assert!(matches!(
            GaEngine::new(&s, &f).with_settings(bad_pop).run(0).unwrap_err(),
            GaError::InvalidConfig(_)
        ));
        let bad_elite = GaSettings { population: 4, elitism: 4, ..GaSettings::default() };
        assert!(matches!(
            GaEngine::new(&s, &f).with_settings(bad_elite).run(0).unwrap_err(),
            GaError::InvalidConfig(_)
        ));
        let bad_rate = GaSettings { crossover_rate: 1.5, ..GaSettings::default() };
        assert!(matches!(
            GaEngine::new(&s, &f).with_settings(bad_rate).run(0).unwrap_err(),
            GaError::InvalidConfig(_)
        ));
    }

    #[test]
    fn maximization_works_too() {
        let s = space();
        let f = FnFitness::new(Direction::Maximize, |g: &Genome| {
            Some(g.genes().iter().map(|&v| f64::from(v)).sum())
        });
        let run = GaEngine::new(&s, &f).run(9).unwrap();
        assert!(run.best_value >= 85.0, "maximization too weak: {}", run.best_value);
    }

    #[test]
    fn elitism_preserves_the_best_member() {
        let s = space();
        let f = sphere();
        let run = GaEngine::new(&s, &f).run(10).unwrap();
        // With elitism, per-generation best must never regress once found.
        for w in run.history.windows(2) {
            assert!(
                w[1].best_value <= w[0].best_value + 1e-9,
                "elite lost: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn first_generation_where_finds_threshold_crossing() {
        let s = space();
        let f = sphere();
        let run = GaEngine::new(&s, &f).run(11).unwrap();
        let hit = run.first_generation_where(|v| v <= 50.0);
        assert!(hit.is_some());
        let (generation, evals) = hit.unwrap();
        assert!(evals >= 10);
        assert!(u64::from(generation) <= 80);
        assert!(run.first_generation_where(|v| v < -1.0).is_none());
    }

    #[test]
    fn observed_run_emits_a_consistent_event_stream() {
        use nautilus_obs::SearchEvent as E;
        let s = space();
        let f = sphere();
        let sink = nautilus_obs::InMemorySink::new();
        let settings = GaSettings { generations: 10, ..GaSettings::default() };
        let run = GaEngine::new(&s, &f)
            .with_settings(settings)
            .with_observer(&sink)
            .with_run_label("baseline")
            .run(7)
            .unwrap();
        // Telemetry must not perturb the search itself.
        let unobserved = GaEngine::new(&s, &f).with_settings(settings).run(7).unwrap();
        assert_eq!(run.history, unobserved.history);

        let events = sink.events();
        assert!(
            matches!(&events[0], E::RunStart { strategy, params, .. }
                if strategy == "baseline" && params.len() == 3),
            "first event should be run_start: {:?}",
            events[0]
        );
        assert!(matches!(events.last().unwrap(), E::RunEnd { .. }));
        let starts = events.iter().filter(|e| matches!(e, E::GenerationStart { .. })).count();
        let ends = events.iter().filter(|e| matches!(e, E::GenerationEnd { .. })).count();
        assert_eq!(starts, 11, "one generation_start per scored generation");
        assert_eq!(ends, 11);
        // Cumulative counters in the last generation_end match the result.
        let final_evals = events
            .iter()
            .rev()
            .find_map(|e| match e {
                E::GenerationEnd { distinct_evals, .. } => Some(*distinct_evals),
                _ => None,
            })
            .unwrap();
        assert_eq!(final_evals, run.total_evals());
        // Mutation telemetry references real parameter indices.
        let mut mutations = 0;
        for e in &events {
            if let E::MutationHintApplied { param, .. } = e {
                assert!((*param as usize) < s.num_params());
                mutations += 1;
            }
        }
        assert!(mutations > 0, "a 10-generation run should mutate something");
        assert!(events.iter().any(|e| matches!(e, E::SelectionInvoked { .. })));
        assert!(events.iter().any(|e| matches!(e, E::CrossoverApplied { .. })));
        assert!(
            events.iter().any(|e| matches!(e, E::SpanEnd { name: "scoring", .. })),
            "scoring spans should close"
        );
    }

    #[test]
    fn batched_evaluation_matches_serial_at_any_worker_count() {
        let s = space();
        let f = sphere();
        let serial = GaEngine::new(&s, &f).run(21).unwrap();
        for workers in [0, 2, 8] {
            let settings = GaSettings { eval_workers: workers, ..GaSettings::default() };
            let run = GaEngine::new(&s, &f).with_settings(settings).run(21).unwrap();
            assert_eq!(run.history, serial.history, "history diverged at workers={workers}");
            assert_eq!(run.best_genome, serial.best_genome);
            assert_eq!(run.best_value, serial.best_value);
            assert_eq!(run.cache, serial.cache, "cache counters diverged at workers={workers}");
        }
    }

    #[test]
    fn batched_evaluation_handles_infeasible_points_identically() {
        let s = space();
        let f = FnFitness::new(Direction::Minimize, |g: &Genome| {
            if g.gene_at(0).is_multiple_of(3) {
                None
            } else {
                Some(g.genes().iter().map(|&v| f64::from(v)).sum())
            }
        });
        let serial = GaEngine::new(&s, &f).run(33).unwrap();
        let settings = GaSettings { eval_workers: 8, ..GaSettings::default() };
        let parallel = GaEngine::new(&s, &f).with_settings(settings).run(33).unwrap();
        assert_eq!(serial.history, parallel.history);
        assert_eq!(serial.cache, parallel.cache);
        assert!(serial.cache.infeasible_evals > 0);
    }

    #[test]
    fn batched_runs_emit_batch_events_without_perturbing_results() {
        use nautilus_obs::SearchEvent as E;
        let s = space();
        let f = sphere();
        let settings = GaSettings { generations: 10, eval_workers: 4, ..GaSettings::default() };
        let sink = nautilus_obs::InMemorySink::new();
        let observed =
            GaEngine::new(&s, &f).with_settings(settings).with_observer(&sink).run(9).unwrap();
        let unobserved = GaEngine::new(&s, &f).with_settings(settings).run(9).unwrap();
        assert_eq!(observed.history, unobserved.history, "telemetry must not perturb the run");

        let events = sink.events();
        let batches: Vec<(u32, usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                E::EvalBatch { generation, size, workers } => Some((*generation, *size, *workers)),
                _ => None,
            })
            .collect();
        assert_eq!(batches.len(), 11, "one batch event per scored generation");
        // Generation 0 re-scores the cached initial population: empty batch.
        assert_eq!(batches[0].1, 0);
        assert!(batches.iter().all(|&(_, _, w)| (1..=4).contains(&w)));
        let batched_total: usize = batches.iter().map(|&(_, size, _)| size).sum();
        let fresh_after_init = observed.cache.distinct_evals + observed.cache.infeasible_evals;
        assert!(
            (batched_total as u64) <= fresh_after_init,
            "batches can only cover post-init misses"
        );
    }

    #[test]
    fn tracing_does_not_perturb_results_and_records_phases() {
        let s = space();
        let f = sphere();
        let baseline = GaEngine::new(&s, &f).run(17).unwrap();
        for workers in [1, 4] {
            let settings = GaSettings { eval_workers: workers, ..GaSettings::default() };
            let tracer = Tracer::new();
            let run =
                GaEngine::new(&s, &f).with_settings(settings).with_tracer(&tracer).run(17).unwrap();
            assert_eq!(run.history, baseline.history, "tracing changed results at {workers}");
            assert_eq!(run.best_genome, baseline.best_genome);
            assert_eq!(run.cache, baseline.cache);
            let stats = tracer.phase_stats();
            for phase in [
                Phase::Run,
                Phase::InitPopulation,
                Phase::Scoring,
                Phase::Selection,
                Phase::Crossover,
                Phase::Mutation,
                Phase::CacheLookup,
                Phase::MissEval,
            ] {
                assert!(stats.contains_key(&phase), "missing {phase:?} at workers={workers}");
            }
            assert_eq!(stats[&Phase::Run].count, 1);
            if workers > 1 {
                assert!(
                    tracer.tracks().iter().any(|t| t.starts_with("worker-")),
                    "batched runs should record worker tracks: {:?}",
                    tracer.tracks()
                );
                assert!(stats.contains_key(&Phase::BatchDispatch));
                assert!(stats.contains_key(&Phase::BatchMerge));
            }
            // Merge-track phases nest under the root span, so no phase can
            // outgrow the run's own wall clock.
            let run_total = stats[&Phase::Run].total_nanos;
            assert!(stats[&Phase::Scoring].total_nanos <= run_total);
        }
    }

    #[test]
    fn batched_worker_telemetry_replays_identically_to_serial() {
        use nautilus_obs::{BatchEventBuffer, InMemorySink, SearchEvent as E};

        // Runs a GA whose fitness function itself emits telemetry through
        // a capture-aware observer (the way `nautilus`'s synthesis runner
        // does), and returns the observed stream.
        fn run(workers: usize) -> (Vec<GenStats>, Vec<E>) {
            let s = ParamSpace::builder()
                .int("x", 0, 31, 1)
                .int("y", 0, 31, 1)
                .int("z", 0, 31, 1)
                .build()
                .unwrap();
            let sink = InMemorySink::new();
            let buffered = BatchEventBuffer::new(&sink);
            let f = FnFitness::new(Direction::Minimize, |g: &Genome| {
                buffered.on_event(&E::ParetoUpdated { size: g.gene_at(0) as usize });
                Some(g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum())
            });
            let settings =
                GaSettings { generations: 8, eval_workers: workers, ..GaSettings::default() };
            let run =
                GaEngine::new(&s, &f).with_settings(settings).with_observer(&sink).run(13).unwrap();
            (run.history, sink.events())
        }

        // Wall-clock payloads (span durations, run wall time) legitimately
        // differ between runs; everything else must be byte-identical.
        fn normalize(events: Vec<E>) -> Vec<E> {
            events
                .into_iter()
                .filter(|e| !matches!(e, E::EvalBatch { .. }))
                .map(|e| match e {
                    E::SpanEnd { name, .. } => E::SpanEnd { name, nanos: 0 },
                    E::RunEnd { best_value, distinct_evals, .. } => {
                        E::RunEnd { best_value, distinct_evals, wall_nanos: 0 }
                    }
                    other => other,
                })
                .collect()
        }

        let (serial_history, serial_events) = run(1);
        assert!(
            serial_events.iter().any(|e| matches!(e, E::ParetoUpdated { .. })),
            "fitness telemetry should reach the sink"
        );
        let serial_events = normalize(serial_events);
        for workers in [2, 8] {
            let (history, events) = run(workers);
            assert_eq!(history, serial_history, "results diverged at workers={workers}");
            // The batched stream is the serial stream plus its EvalBatch
            // markers: worker-side events are captured per miss and
            // replayed at the merge point in first-occurrence order.
            assert_eq!(
                normalize(events),
                serial_events,
                "event stream diverged at workers={workers}"
            );
        }
    }

    #[test]
    fn traced_observed_runs_are_byte_identical_across_worker_counts() {
        use nautilus_obs::{InMemorySink, SearchEvent as E, Tracer};

        // The tentpole invariant: with tracing AND observation both on,
        // worker count changes wall-clock only — outcomes and the
        // normalized event stream are byte-identical at 1, 2 and 8
        // workers.
        fn run(workers: usize) -> (GaRun, Vec<E>) {
            let s = ParamSpace::builder()
                .int("x", 0, 31, 1)
                .int("y", 0, 31, 1)
                .int("z", 0, 31, 1)
                .build()
                .unwrap();
            let f = FnFitness::new(Direction::Minimize, |g: &Genome| {
                if g.gene_at(1) == 7 {
                    None // exercise the infeasible merge path too
                } else {
                    Some(g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum())
                }
            });
            let sink = InMemorySink::new();
            let tracer = Tracer::new();
            let settings =
                GaSettings { generations: 12, eval_workers: workers, ..GaSettings::default() };
            let run = GaEngine::new(&s, &f)
                .with_settings(settings)
                .with_observer(&sink)
                .with_tracer(&tracer)
                .run(29)
                .unwrap();
            (run, sink.events())
        }

        fn normalize(events: Vec<E>) -> Vec<E> {
            events
                .into_iter()
                .filter(|e| !matches!(e, E::EvalBatch { .. }))
                .map(|e| match e {
                    E::SpanEnd { name, .. } => E::SpanEnd { name, nanos: 0 },
                    E::RunEnd { best_value, distinct_evals, .. } => {
                        E::RunEnd { best_value, distinct_evals, wall_nanos: 0 }
                    }
                    other => other,
                })
                .collect()
        }

        let (base, base_events) = run(1);
        let base_events = normalize(base_events);
        for workers in [2, 8] {
            let (r, events) = run(workers);
            assert_eq!(r.history, base.history, "history diverged at workers={workers}");
            assert_eq!(r.best_genome, base.best_genome);
            assert_eq!(r.best_value, base.best_value);
            assert_eq!(r.cache, base.cache, "cache counters diverged at workers={workers}");
            assert_eq!(r.faults, base.faults);
            assert_eq!(
                normalize(events),
                base_events,
                "event stream diverged at workers={workers}"
            );
        }
    }

    #[test]
    fn debug_output_names_operators() {
        let s = space();
        let f = sphere();
        let text = format!("{:?}", GaEngine::new(&s, &f));
        assert!(text.contains("uniform"));
        assert!(text.contains("one-point"));
        assert!(text.contains("tournament"));
    }
}
