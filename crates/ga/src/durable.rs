//! Deterministic I/O fault injection for every durable write point.
//!
//! All of Nautilus' crash-recovery guarantees (checkpoints, job specs,
//! result records, event logs, cancel markers, the daemon endpoint file)
//! rest on a single discipline: write to a dot-prefixed temporary, fsync
//! it, rename it over the final name, fsync the directory entry. This
//! module owns that discipline behind a [`DurableIo`] handle so that a
//! test harness can make any individual step fail — deterministically,
//! by write-point index — and prove the system either surfaces a typed
//! error or recovers byte-identically in its next incarnation.
//!
//! Design points:
//!
//! * **Zero-cost when uninjected.** The default handle holds no state at
//!   all (`inner: None`); every operation is a direct call into `std::fs`
//!   with one branch on an `Option`.
//! * **Deterministic indices.** Each logical durable operation (one
//!   atomic write, one log append, one explicit sync, one file create)
//!   consumes exactly one index from a shared counter. With a single
//!   writer the sequence is reproducible run-over-run, which is what lets
//!   the fault battery enumerate write points from a census run and then
//!   replay the same workload failing each point in turn.
//! * **Site labels.** Callers tag every operation with a stable site
//!   string (`ckpt.gen`, `job.spec`, `job.events`, ...) so a census can
//!   group indices by what the write protects, and injected errors name
//!   the site they hit.
//!
//! Faults model the hostile environments of DESIGN §5k: `ENOSPC` on
//! write, fsync failure, rename failure, a torn (short) write that leaves
//! a partial temporary behind — exactly what a crash mid-write leaves —
//! and directory-fsync failure.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which step of a durable operation an injected fault breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The data write itself fails as if the disk were full.
    WriteEnospc,
    /// The file-content `fsync` fails after a successful write.
    SyncFail,
    /// The rename of the temporary over the final name fails.
    RenameFail,
    /// Only a prefix of the bytes reaches the file, then the operation
    /// errors — the on-disk shape of a crash mid-write. The partial
    /// temporary is deliberately left behind for recovery to clean.
    Torn,
    /// The directory-entry `fsync` after a successful rename fails.
    DirSyncFail,
}

impl IoFaultKind {
    /// All kinds, in a stable order (used to cycle kinds across sites).
    pub const ALL: [IoFaultKind; 5] = [
        IoFaultKind::WriteEnospc,
        IoFaultKind::SyncFail,
        IoFaultKind::RenameFail,
        IoFaultKind::Torn,
        IoFaultKind::DirSyncFail,
    ];

    /// Stable lowercase label, used in error messages and telemetry.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::WriteEnospc => "enospc",
            IoFaultKind::SyncFail => "sync_fail",
            IoFaultKind::RenameFail => "rename_fail",
            IoFaultKind::Torn => "torn_write",
            IoFaultKind::DirSyncFail => "dir_sync_fail",
        }
    }
}

/// A deterministic schedule of injected faults, keyed by write-point
/// index.
#[derive(Debug, Clone, Default)]
pub struct IoFaultPlan {
    explicit: BTreeMap<u64, IoFaultKind>,
    storm: Option<(u64, u64)>, // (seed, period)
}

impl IoFaultPlan {
    /// An empty plan: no faults.
    #[must_use]
    pub fn new() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Fails the durable operation at write-point `index` with `kind`.
    #[must_use]
    pub fn fail_at(mut self, index: u64, kind: IoFaultKind) -> IoFaultPlan {
        self.explicit.insert(index, kind);
        self
    }

    /// A seeded storm: roughly one in `period` operations fails, with
    /// the fault kind drawn deterministically from the same hash. The
    /// schedule is a pure function of `(seed, index)`, so two runs over
    /// the same write sequence see identical faults.
    #[must_use]
    pub fn storm(mut self, seed: u64, period: u64) -> IoFaultPlan {
        self.storm = Some((seed, period.max(1)));
        self
    }

    /// The fault planned for `index`, if any. Explicit entries win over
    /// the storm schedule.
    #[must_use]
    pub fn fault_at(&self, index: u64) -> Option<IoFaultKind> {
        if let Some(kind) = self.explicit.get(&index) {
            return Some(*kind);
        }
        let (seed, period) = self.storm?;
        let h = splitmix64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if h.is_multiple_of(period) {
            let pick = (h >> 32) as usize % IoFaultKind::ALL.len();
            Some(IoFaultKind::ALL[pick])
        } else {
            None
        }
    }

    /// True when the plan can never fire.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.explicit.is_empty() && self.storm.is_none()
    }
}

/// Extracts the injected-fault label (`enospc`, `sync_fail`, ...) from an
/// error message produced by this module, or `"io"` for a genuine OS
/// error. Telemetry uses this so event payloads stay deterministic —
/// never raw OS error text.
#[must_use]
pub fn fault_label(message: &str) -> &'static str {
    IoFaultKind::ALL
        .iter()
        .find(|k| message.contains(&format!("injected {} at", k.label())))
        .map_or("io", |k| k.label())
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One durable operation observed by a census handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePoint {
    /// The operation's index in the shared counter sequence.
    pub index: u64,
    /// The caller-supplied site label (`ckpt.gen`, `job.spec`, ...).
    pub site: String,
}

#[derive(Debug)]
struct IoState {
    counter: AtomicU64,
    plan: IoFaultPlan,
    injected: AtomicU64,
    census: Option<Mutex<Vec<WritePoint>>>,
}

/// A handle over the durable-write discipline: real filesystem by
/// default, deterministic fault injection when armed with a plan,
/// write-point recording when opened in census mode.
///
/// Clones share the same counter, plan, and census, so one handle can be
/// threaded through every layer of a process (checkpoint store, job
/// dirs, event logs, endpoint file) and observe a single global
/// write-point sequence.
#[derive(Debug, Clone, Default)]
pub struct DurableIo {
    inner: Option<Arc<IoState>>,
}

impl DurableIo {
    /// The pass-through handle: plain `std::fs`, no counting, no faults.
    #[must_use]
    pub fn real() -> DurableIo {
        DurableIo { inner: None }
    }

    /// A handle armed with `plan`; operations consume indices and fail
    /// where the plan says so.
    #[must_use]
    pub fn with_plan(plan: IoFaultPlan) -> DurableIo {
        DurableIo {
            inner: Some(Arc::new(IoState {
                counter: AtomicU64::new(0),
                plan,
                injected: AtomicU64::new(0),
                census: None,
            })),
        }
    }

    /// A recording handle: no faults, but every operation's index and
    /// site label is captured for [`DurableIo::write_points`].
    #[must_use]
    pub fn census() -> DurableIo {
        DurableIo {
            inner: Some(Arc::new(IoState {
                counter: AtomicU64::new(0),
                plan: IoFaultPlan::new(),
                injected: AtomicU64::new(0),
                census: Some(Mutex::new(Vec::new())),
            })),
        }
    }

    /// True when this handle counts write points (census or plan).
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        self.inner.is_some()
    }

    /// How many faults this handle has injected so far.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// The write points recorded so far (census handles only).
    #[must_use]
    pub fn write_points(&self) -> Vec<WritePoint> {
        self.inner
            .as_ref()
            .and_then(|s| s.census.as_ref())
            .map_or_else(Vec::new, |c| c.lock().expect("census poisoned").clone())
    }

    /// Consumes the next write-point index for `site` and returns the
    /// fault planned there, if any.
    fn next(&self, site: &str) -> Option<(u64, IoFaultKind)> {
        let state = self.inner.as_ref()?;
        let index = state.counter.fetch_add(1, Ordering::Relaxed);
        if let Some(census) = &state.census {
            census
                .lock()
                .expect("census poisoned")
                .push(WritePoint { index, site: site.to_string() });
        }
        let kind = state.plan.fault_at(index)?;
        state.injected.fetch_add(1, Ordering::Relaxed);
        Some((index, kind))
    }

    fn fault(site: &str, index: u64, kind: IoFaultKind) -> io::Error {
        io::Error::other(format!("injected {} at {site}[{index}]", kind.label()))
    }

    /// The full atomic-replace discipline for `dir/final_name`: write
    /// `bytes` to a dot-prefixed temporary, fsync, rename over the final
    /// name, fsync the directory entry. Consumes one write point.
    ///
    /// On failure the temporary is removed — except for an injected torn
    /// write, which deliberately leaves its partial temporary behind, the
    /// way a real crash would, so recovery scans can prove they clean it.
    ///
    /// # Errors
    ///
    /// Any real filesystem error, or the injected fault planned for this
    /// write point. Directory-fsync failures are surfaced, not swallowed:
    /// until the directory entry is durable the rename itself may not
    /// survive a power cut, so callers must treat the write as failed.
    pub fn write_atomic(
        &self,
        dir: &Path,
        final_name: &str,
        bytes: &[u8],
        site: &str,
    ) -> io::Result<()> {
        let injected = self.next(site);
        let tmp_path = dir.join(format!(".{final_name}.tmp"));
        let final_path = dir.join(final_name);
        let attempt = (|| -> io::Result<()> {
            let mut tmp = fs::File::create(&tmp_path)?;
            if let Some((index, kind)) = injected {
                match kind {
                    IoFaultKind::WriteEnospc => return Err(Self::fault(site, index, kind)),
                    IoFaultKind::Torn => {
                        tmp.write_all(&bytes[..bytes.len() / 2])?;
                        let _ = tmp.sync_all();
                        return Err(Self::fault(site, index, kind));
                    }
                    IoFaultKind::SyncFail => {
                        tmp.write_all(bytes)?;
                        return Err(Self::fault(site, index, kind));
                    }
                    IoFaultKind::RenameFail => {
                        tmp.write_all(bytes)?;
                        tmp.sync_all()?;
                        return Err(Self::fault(site, index, kind));
                    }
                    IoFaultKind::DirSyncFail => {}
                }
            }
            tmp.write_all(bytes)?;
            tmp.sync_all()?;
            drop(tmp);
            fs::rename(&tmp_path, &final_path)?;
            if let Some((index, kind @ IoFaultKind::DirSyncFail)) = injected {
                return Err(Self::fault(site, index, kind));
            }
            // Make the rename itself durable: fsync the directory entry.
            fs::File::open(dir).and_then(|d| d.sync_all())?;
            Ok(())
        })();
        if let Err(e) = attempt {
            // A torn write *is* the crash shape: leave the partial
            // temporary for the recovery scan. Everything else cleans up
            // so repeated failures cannot litter the directory.
            if !matches!(injected, Some((_, IoFaultKind::Torn))) {
                let _ = fs::remove_file(&tmp_path);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Creates (truncating) a plain file, e.g. an append-only log.
    /// Consumes one write point; `WriteEnospc` is the only kind that can
    /// fire here (creation is a data write against a full disk).
    ///
    /// # Errors
    ///
    /// Any real filesystem error, or the injected fault for this point.
    pub fn create(&self, path: &Path, site: &str) -> io::Result<fs::File> {
        if let Some((index, kind)) = self.next(site) {
            if matches!(kind, IoFaultKind::WriteEnospc) {
                return Err(Self::fault(site, index, kind));
            }
        }
        fs::File::create(path)
    }

    /// Appends `bytes` to an open log file. Consumes one write point.
    /// `WriteEnospc` fails before any byte lands; `Torn` lands a prefix
    /// and then fails — the shape of a crash mid-append.
    ///
    /// # Errors
    ///
    /// Any real filesystem error, or the injected fault for this point.
    pub fn append(&self, file: &mut fs::File, bytes: &[u8], site: &str) -> io::Result<()> {
        if let Some((index, kind)) = self.next(site) {
            match kind {
                IoFaultKind::WriteEnospc => return Err(Self::fault(site, index, kind)),
                IoFaultKind::Torn => {
                    file.write_all(&bytes[..bytes.len() / 2])?;
                    return Err(Self::fault(site, index, kind));
                }
                _ => {}
            }
        }
        file.write_all(bytes)
    }

    /// Fsyncs an open file. Consumes one write point; `SyncFail` and
    /// `DirSyncFail` both fire here (an explicit sync is an explicit
    /// sync, whatever it protects).
    ///
    /// # Errors
    ///
    /// Any real filesystem error, or the injected fault for this point.
    pub fn sync(&self, file: &fs::File, site: &str) -> io::Result<()> {
        if let Some((index, kind)) = self.next(site) {
            if matches!(kind, IoFaultKind::SyncFail | IoFaultKind::DirSyncFail) {
                return Err(Self::fault(site, index, kind));
            }
        }
        file.sync_all()
    }

    /// Removes stray dot-prefixed `.tmp` files under `dir` — the residue
    /// of interrupted or torn atomic writes. Returns the paths removed.
    /// Never touches finished files; ignores unreadable entries.
    #[must_use]
    pub fn clean_stray_tmps(dir: &Path) -> Vec<PathBuf> {
        let mut removed = Vec::new();
        let Ok(entries) = fs::read_dir(dir) else { return removed };
        for entry in entries.flatten() {
            let path = entry.path();
            let is_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with('.') && n.ends_with(".tmp"));
            if is_tmp && fs::remove_file(&path).is_ok() {
                removed.push(path);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nautilus-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_handle_is_pass_through_and_counts_nothing() {
        let dir = tempdir("real");
        let io = DurableIo::real();
        assert!(!io.is_instrumented());
        io.write_atomic(&dir, "a.bin", b"hello", "t.site").unwrap();
        assert_eq!(fs::read(dir.join("a.bin")).unwrap(), b"hello");
        assert_eq!(io.injected_faults(), 0);
        assert!(io.write_points().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn census_records_every_operation_in_order() {
        let dir = tempdir("census");
        let io = DurableIo::census();
        io.write_atomic(&dir, "a.bin", b"one", "site.a").unwrap();
        let mut log = io.create(&dir.join("log"), "site.log").unwrap();
        io.append(&mut log, b"line\n", "site.log").unwrap();
        io.sync(&log, "site.log").unwrap();
        let points = io.write_points();
        let sites: Vec<&str> = points.iter().map(|p| p.site.as_str()).collect();
        assert_eq!(sites, ["site.a", "site.log", "site.log", "site.log"]);
        assert_eq!(points[0].index, 0);
        assert_eq!(points[3].index, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_fault_kind_fires_at_its_planned_index() {
        for (i, kind) in IoFaultKind::ALL.into_iter().enumerate() {
            let dir = tempdir(&format!("kind-{i}"));
            let io = DurableIo::with_plan(IoFaultPlan::new().fail_at(0, kind));
            let err = io.write_atomic(&dir, "x.bin", b"0123456789", "t").unwrap_err();
            assert!(err.to_string().contains(kind.label()), "{err}");
            assert_eq!(io.injected_faults(), 1);
            match kind {
                IoFaultKind::Torn => {
                    // Torn writes leave the crash residue behind...
                    let tmp = dir.join(".x.bin.tmp");
                    assert_eq!(fs::read(&tmp).unwrap(), b"01234");
                    // ...and the recovery sweep removes it.
                    assert_eq!(DurableIo::clean_stray_tmps(&dir), vec![tmp.clone()]);
                    assert!(!tmp.exists());
                }
                IoFaultKind::DirSyncFail => {
                    // The rename happened; the entry just isn't durable.
                    assert!(dir.join("x.bin").exists());
                    assert!(!dir.join(".x.bin.tmp").exists());
                }
                _ => {
                    assert!(!dir.join("x.bin").exists());
                    assert!(!dir.join(".x.bin.tmp").exists(), "{kind:?} left a tmp");
                }
            }
            // The fault is one-shot: the next write point succeeds.
            io.write_atomic(&dir, "x.bin", b"0123456789", "t").unwrap();
            assert_eq!(fs::read(dir.join("x.bin")).unwrap(), b"0123456789");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_append_lands_a_prefix_then_fails() {
        let dir = tempdir("torn-append");
        let io = DurableIo::with_plan(IoFaultPlan::new().fail_at(1, IoFaultKind::Torn));
        let mut log = io.create(&dir.join("log"), "t").unwrap();
        let err = io.append(&mut log, b"abcdefgh", "t").unwrap_err();
        assert!(err.to_string().contains("torn_write"), "{err}");
        assert_eq!(fs::read(dir.join("log")).unwrap(), b"abcd");
        // Subsequent appends keep working: the log is torn, not dead.
        io.append(&mut log, b"-rest", "t").unwrap();
        assert_eq!(fs::read(dir.join("log")).unwrap(), b"abcd-rest");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn storm_schedule_is_deterministic_and_seed_sensitive() {
        let plan_a = IoFaultPlan::new().storm(7, 3);
        let plan_b = IoFaultPlan::new().storm(7, 3);
        let plan_c = IoFaultPlan::new().storm(8, 3);
        let fire_a: Vec<_> = (0..256).filter_map(|i| plan_a.fault_at(i)).collect();
        let fire_b: Vec<_> = (0..256).filter_map(|i| plan_b.fault_at(i)).collect();
        assert_eq!(fire_a, fire_b);
        assert!(!fire_a.is_empty(), "a period-3 storm over 256 points must fire");
        let hits_a: Vec<u64> = (0..256).filter(|i| plan_a.fault_at(*i).is_some()).collect();
        let hits_c: Vec<u64> = (0..256).filter(|i| plan_c.fault_at(*i).is_some()).collect();
        assert_ne!(hits_a, hits_c, "different seeds should fire at different points");
    }

    #[test]
    fn explicit_entries_override_the_storm() {
        let plan = IoFaultPlan::new().storm(1, 2).fail_at(4, IoFaultKind::RenameFail);
        assert_eq!(plan.fault_at(4), Some(IoFaultKind::RenameFail));
    }

    #[test]
    fn shared_counter_spans_clones() {
        let dir = tempdir("clones");
        let io = DurableIo::census();
        let io2 = io.clone();
        io.write_atomic(&dir, "a", b"x", "s1").unwrap();
        io2.write_atomic(&dir, "b", b"y", "s2").unwrap();
        let points = io.write_points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1], WritePoint { index: 1, site: "s2".into() });
        let _ = fs::remove_dir_all(&dir);
    }
}
