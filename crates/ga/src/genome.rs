//! Genomes: the genetic representation of a design point.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::param::ParamId;
use crate::rng::hash_genes;

/// A design point encoded as one gene (domain value index) per parameter.
///
/// A genome is only meaningful relative to the [`crate::ParamSpace`] that
/// produced it: gene `i` is an index into the domain of parameter `i`.
/// Genomes are small, cheap to clone, hashable (they key the synthesis
/// cache), and totally ordered (lexicographic) so they can live in sorted
/// collections deterministically.
///
/// ```
/// use nautilus_ga::Genome;
/// let g = Genome::from_genes(vec![0, 2, 1]);
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.gene_at(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Genome {
    genes: Vec<u32>,
}

impl Genome {
    /// Builds a genome from raw gene indices.
    #[must_use]
    pub fn from_genes(genes: Vec<u32>) -> Self {
        Genome { genes }
    }

    /// Number of genes (parameters).
    #[must_use]
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the genome has no genes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// All gene indices, in parameter order.
    #[must_use]
    pub fn genes(&self) -> &[u32] {
        &self.genes
    }

    /// The gene for parameter `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this genome.
    #[must_use]
    pub fn gene(&self, id: ParamId) -> u32 {
        self.genes[id.index()]
    }

    /// The gene at raw position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[must_use]
    pub fn gene_at(&self, idx: usize) -> u32 {
        self.genes[idx]
    }

    /// Overwrites the gene for parameter `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this genome.
    pub fn set_gene(&mut self, id: ParamId, value: u32) {
        self.genes[id.index()] = value;
    }

    /// Overwrites the gene at raw position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn set_gene_at(&mut self, idx: usize, value: u32) {
        self.genes[idx] = value;
    }

    /// Number of positions at which `self` and `other` differ.
    ///
    /// ```
    /// use nautilus_ga::Genome;
    /// let a = Genome::from_genes(vec![0, 1, 2]);
    /// let b = Genome::from_genes(vec![0, 3, 2]);
    /// assert_eq!(a.hamming_distance(&b), 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the genomes have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &Genome) -> usize {
        assert_eq!(self.len(), other.len(), "genomes from different spaces");
        self.genes.iter().zip(&other.genes).filter(|(a, b)| a != b).count()
    }

    /// A stable 64-bit hash of the genome, salted by `salt`.
    ///
    /// Used by surrogate cost models for deterministic per-design noise.
    #[must_use]
    pub fn stable_hash(&self, salt: u64) -> u64 {
        hash_genes(&self.genes, salt)
    }

    /// Overwrites this genome's genes from a slice, reusing the existing
    /// allocation when capacities allow.
    ///
    /// The hot evaluation path stores populations as flat
    /// structure-of-arrays rows and rehydrates one scratch `Genome` per
    /// worker instead of allocating a fresh genome per point.
    pub fn copy_from_slice(&mut self, genes: &[u32]) {
        self.genes.clear();
        self.genes.extend_from_slice(genes);
    }
}

/// Genomes borrow as their gene slice, so `HashMap<Genome, _>` keys can be
/// probed with a `&[u32]` row from a structure-of-arrays population
/// without allocating. Sound for hashing because `Genome`'s derived
/// `Hash` hashes exactly its `Vec<u32>`, which hashes identically to the
/// equivalent `[u32]` slice, and `Eq` compares the same genes.
impl std::borrow::Borrow<[u32]> for Genome {
    fn borrow(&self) -> &[u32] {
        &self.genes
    }
}

impl fmt::Display for Genome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, g) in self.genes.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{g}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<u32> for Genome {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Genome { genes: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let g: Genome = [1u32, 0, 4].into_iter().collect();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.genes(), &[1, 0, 4]);
        assert_eq!(g.gene(ParamId(2)), 4);
    }

    #[test]
    fn mutation_of_genes() {
        let mut g = Genome::from_genes(vec![0, 0]);
        g.set_gene(ParamId(1), 3);
        g.set_gene_at(0, 2);
        assert_eq!(g.genes(), &[2, 3]);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a = Genome::from_genes(vec![0, 1, 2, 3]);
        let b = Genome::from_genes(vec![0, 9, 2, 8]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn hamming_distance_rejects_length_mismatch() {
        let a = Genome::from_genes(vec![0]);
        let b = Genome::from_genes(vec![0, 1]);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn display_lists_genes() {
        assert_eq!(Genome::from_genes(vec![3, 0, 7]).to_string(), "[3,0,7]");
        assert_eq!(Genome::from_genes(vec![]).to_string(), "[]");
    }

    #[test]
    fn stable_hash_depends_on_salt_and_genes() {
        let g = Genome::from_genes(vec![1, 2, 3]);
        assert_eq!(g.stable_hash(5), g.stable_hash(5));
        assert_ne!(g.stable_hash(5), g.stable_hash(6));
        assert_ne!(g.stable_hash(5), Genome::from_genes(vec![1, 2, 4]).stable_hash(5));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Genome::from_genes(vec![0, 5]);
        let b = Genome::from_genes(vec![1, 0]);
        assert!(a < b);
    }
}
