//! Genetic operators: mutation and crossover.
//!
//! Operators are trait objects so the Nautilus crate can drop in *guided*
//! variants (importance-weighted gene selection, bias/target value sampling)
//! without the engine knowing the difference.

mod crossover;
mod mutation;

pub use crossover::{CrossoverOp, OnePointCrossover, TwoPointCrossover, UniformCrossover};
pub use mutation::{MutationOp, StepMutation, UniformMutation};

/// Per-operation context handed to genetic operators.
///
/// Carries the generation counter so operators can implement schedules (the
/// Nautilus *importance decay* hint needs to know how far the run has
/// progressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCtx {
    /// Zero-based generation currently being produced.
    pub generation: u32,
    /// Total number of generations the run will execute.
    pub total_generations: u32,
}

impl OpCtx {
    /// Context for generation `generation` of `total_generations`.
    #[must_use]
    pub fn new(generation: u32, total_generations: u32) -> Self {
        OpCtx { generation, total_generations }
    }

    /// Run progress in `[0, 1]` (0 at the first generation).
    #[must_use]
    pub fn progress(&self) -> f64 {
        if self.total_generations <= 1 {
            0.0
        } else {
            f64::from(self.generation) / f64::from(self.total_generations - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_spans_zero_to_one() {
        assert_eq!(OpCtx::new(0, 80).progress(), 0.0);
        assert_eq!(OpCtx::new(79, 80).progress(), 1.0);
        let mid = OpCtx::new(40, 81).progress();
        assert!((mid - 0.5).abs() < 1e-12);
        // Degenerate runs do not divide by zero.
        assert_eq!(OpCtx::new(0, 1).progress(), 0.0);
        assert_eq!(OpCtx::new(0, 0).progress(), 0.0);
    }
}
