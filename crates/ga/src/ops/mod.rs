//! Genetic operators: mutation and crossover.
//!
//! Operators are trait objects so the Nautilus crate can drop in *guided*
//! variants (importance-weighted gene selection, bias/target value sampling)
//! without the engine knowing the difference.

mod crossover;
mod mutation;

pub use crossover::{CrossoverOp, OnePointCrossover, TwoPointCrossover, UniformCrossover};
pub use mutation::{MutationOp, StepMutation, UniformMutation};

use nautilus_obs::SearchObserver;

/// Per-operation context handed to genetic operators.
///
/// Carries the generation counter so operators can implement schedules (the
/// Nautilus *importance decay* hint needs to know how far the run has
/// progressed), plus the run's [`SearchObserver`] so operators can emit
/// telemetry (`MutationHintApplied`, ...) without extra plumbing. The
/// observer defaults to the disabled no-op; emitters must gate on
/// `ctx.observer.enabled()`.
#[derive(Clone, Copy)]
pub struct OpCtx<'a> {
    /// Zero-based generation currently being produced.
    pub generation: u32,
    /// Total number of generations the run will execute.
    pub total_generations: u32,
    /// Telemetry receiver for this run (disabled no-op by default).
    pub observer: &'a dyn SearchObserver,
}

impl std::fmt::Debug for OpCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpCtx")
            .field("generation", &self.generation)
            .field("total_generations", &self.total_generations)
            .field("observer_enabled", &self.observer.enabled())
            .finish()
    }
}

impl PartialEq for OpCtx<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.generation == other.generation && self.total_generations == other.total_generations
    }
}

impl Eq for OpCtx<'_> {}

impl OpCtx<'static> {
    /// Context for generation `generation` of `total_generations`, with
    /// telemetry disabled.
    #[must_use]
    pub fn new(generation: u32, total_generations: u32) -> Self {
        OpCtx { generation, total_generations, observer: nautilus_obs::noop() }
    }
}

impl<'a> OpCtx<'a> {
    /// Context that also routes operator telemetry to `observer`.
    #[must_use]
    pub fn with_observer(
        generation: u32,
        total_generations: u32,
        observer: &'a dyn SearchObserver,
    ) -> Self {
        OpCtx { generation, total_generations, observer }
    }

    /// Run progress in `[0, 1]` (0 at the first generation).
    #[must_use]
    pub fn progress(&self) -> f64 {
        if self.total_generations <= 1 {
            0.0
        } else {
            f64::from(self.generation) / f64::from(self.total_generations - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_obs::{InMemorySink, SearchEvent};

    #[test]
    fn default_ctx_has_disabled_observer() {
        let ctx = OpCtx::new(3, 10);
        assert!(!ctx.observer.enabled());
        assert_eq!(ctx, OpCtx::new(3, 10));
    }

    #[test]
    fn equality_ignores_the_observer() {
        let sink = InMemorySink::new();
        let ctx = OpCtx::with_observer(3, 10, &sink);
        assert_eq!(ctx, OpCtx::new(3, 10));
        assert_ne!(ctx, OpCtx::new(4, 10));
        ctx.observer.on_event(&SearchEvent::GenerationStart { generation: 3 });
        assert_eq!(sink.len(), 1);
        let shown = format!("{ctx:?}");
        assert!(shown.contains("observer_enabled: true"), "{shown}");
    }

    #[test]
    fn progress_spans_zero_to_one() {
        assert_eq!(OpCtx::new(0, 80).progress(), 0.0);
        assert_eq!(OpCtx::new(79, 80).progress(), 1.0);
        let mid = OpCtx::new(40, 81).progress();
        assert!((mid - 0.5).abs() < 1e-12);
        // Degenerate runs do not divide by zero.
        assert_eq!(OpCtx::new(0, 1).progress(), 0.0);
        assert_eq!(OpCtx::new(0, 0).progress(), 0.0);
    }
}
