//! Crossover (recombination) operators.

use rand::{Rng, RngExt};

use crate::genome::Genome;
use crate::ops::OpCtx;
use crate::space::ParamSpace;

/// A crossover operator: combines two parents into two children.
///
/// In IP-parameter terms, crossover mixes the parameter settings of two
/// design points ("breeding" in the paper's description).
pub trait CrossoverOp: Send + Sync {
    /// Produces two children from `a` and `b`.
    fn crossover(
        &self,
        a: &Genome,
        b: &Genome,
        space: &ParamSpace,
        ctx: &OpCtx,
        rng: &mut dyn Rng,
    ) -> (Genome, Genome);

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "crossover"
    }
}

/// Uniform crossover: each gene is swapped between the children with
/// probability `swap_prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformCrossover {
    /// Per-gene swap probability in `[0, 1]`.
    pub swap_prob: f64,
}

impl UniformCrossover {
    /// Creates the operator; `swap_prob` is clamped to `[0, 1]`.
    #[must_use]
    pub fn new(swap_prob: f64) -> Self {
        UniformCrossover { swap_prob: swap_prob.clamp(0.0, 1.0) }
    }
}

impl Default for UniformCrossover {
    fn default() -> Self {
        UniformCrossover { swap_prob: 0.5 }
    }
}

impl CrossoverOp for UniformCrossover {
    fn crossover(
        &self,
        a: &Genome,
        b: &Genome,
        _space: &ParamSpace,
        _ctx: &OpCtx,
        rng: &mut dyn Rng,
    ) -> (Genome, Genome) {
        let mut ca = a.clone();
        let mut cb = b.clone();
        for i in 0..a.len() {
            if rng.random_bool(self.swap_prob) {
                let tmp = ca.gene_at(i);
                ca.set_gene_at(i, cb.gene_at(i));
                cb.set_gene_at(i, tmp);
            }
        }
        (ca, cb)
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// Single-point crossover: children exchange all genes after a random cut.
///
/// This is the classic operator of PyEvolve-style GAs and the default of the
/// paper's baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnePointCrossover;

impl CrossoverOp for OnePointCrossover {
    fn crossover(
        &self,
        a: &Genome,
        b: &Genome,
        _space: &ParamSpace,
        _ctx: &OpCtx,
        rng: &mut dyn Rng,
    ) -> (Genome, Genome) {
        let n = a.len();
        if n < 2 {
            return (a.clone(), b.clone());
        }
        let cut = rng.random_range(1..n);
        let mut ca = a.clone();
        let mut cb = b.clone();
        for i in cut..n {
            ca.set_gene_at(i, b.gene_at(i));
            cb.set_gene_at(i, a.gene_at(i));
        }
        (ca, cb)
    }

    fn name(&self) -> &str {
        "one-point"
    }
}

/// Two-point crossover: children exchange the gene segment between two cuts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoPointCrossover;

impl CrossoverOp for TwoPointCrossover {
    fn crossover(
        &self,
        a: &Genome,
        b: &Genome,
        _space: &ParamSpace,
        _ctx: &OpCtx,
        rng: &mut dyn Rng,
    ) -> (Genome, Genome) {
        let n = a.len();
        if n < 2 {
            return (a.clone(), b.clone());
        }
        let x = rng.random_range(0..n);
        let y = rng.random_range(0..n);
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let mut ca = a.clone();
        let mut cb = b.clone();
        for i in lo..=hi {
            ca.set_gene_at(i, b.gene_at(i));
            cb.set_gene_at(i, a.gene_at(i));
        }
        (ca, cb)
    }

    fn name(&self) -> &str {
        "two-point"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space(n: usize) -> ParamSpace {
        let mut b = ParamSpace::builder();
        for i in 0..n {
            b = b.int(format!("p{i}"), 0, 9, 1);
        }
        b.build().unwrap()
    }

    /// Children of any crossover must be a gene-wise permutation of the
    /// parents: at each position, {child_a, child_b} == {parent_a, parent_b}.
    fn assert_children_conserve_genes(op: &dyn CrossoverOp, seed: u64) {
        let s = space(8);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let a = s.random_genome(&mut rng);
            let b = s.random_genome(&mut rng);
            let (ca, cb) = op.crossover(&a, &b, &s, &OpCtx::new(0, 1), &mut rng);
            for i in 0..a.len() {
                let parents = [a.gene_at(i), b.gene_at(i)];
                let kids = [ca.gene_at(i), cb.gene_at(i)];
                assert!(
                    kids == parents || kids == [parents[1], parents[0]],
                    "gene {i} not conserved"
                );
            }
        }
    }

    #[test]
    fn uniform_conserves_genes() {
        assert_children_conserve_genes(&UniformCrossover::default(), 10);
    }

    #[test]
    fn one_point_conserves_genes() {
        assert_children_conserve_genes(&OnePointCrossover, 11);
    }

    #[test]
    fn two_point_conserves_genes() {
        assert_children_conserve_genes(&TwoPointCrossover, 12);
    }

    #[test]
    fn one_point_exchanges_contiguous_suffix() {
        let s = space(6);
        let a = Genome::from_genes(vec![0; 6]);
        let b = Genome::from_genes(vec![9; 6]);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let (ca, _) = OnePointCrossover.crossover(&a, &b, &s, &OpCtx::new(0, 1), &mut rng);
            // ca must be 0...0 9...9 (a prefix of a's genes then b's suffix).
            let genes = ca.genes();
            let first_nine = genes.iter().position(|&g| g == 9).unwrap();
            assert!(first_nine >= 1, "cut must leave at least one leading gene");
            assert!(genes[first_nine..].iter().all(|&g| g == 9));
            assert!(genes[..first_nine].iter().all(|&g| g == 0));
        }
    }

    #[test]
    fn uniform_swap_prob_zero_is_identity() {
        let s = space(5);
        let mut rng = StdRng::seed_from_u64(14);
        let a = s.random_genome(&mut rng);
        let b = s.random_genome(&mut rng);
        let (ca, cb) =
            UniformCrossover::new(0.0).crossover(&a, &b, &s, &OpCtx::new(0, 1), &mut rng);
        assert_eq!(ca, a);
        assert_eq!(cb, b);
    }

    #[test]
    fn uniform_swap_prob_one_swaps_everything() {
        let s = space(5);
        let mut rng = StdRng::seed_from_u64(15);
        let a = s.random_genome(&mut rng);
        let b = s.random_genome(&mut rng);
        let (ca, cb) =
            UniformCrossover::new(1.0).crossover(&a, &b, &s, &OpCtx::new(0, 1), &mut rng);
        assert_eq!(ca, b);
        assert_eq!(cb, a);
    }

    #[test]
    fn single_gene_genomes_pass_through() {
        let s = space(1);
        let a = Genome::from_genes(vec![1]);
        let b = Genome::from_genes(vec![2]);
        let mut rng = StdRng::seed_from_u64(16);
        let (ca, cb) = OnePointCrossover.crossover(&a, &b, &s, &OpCtx::new(0, 1), &mut rng);
        assert_eq!((ca, cb), (a.clone(), b.clone()));
        let (ca, cb) = TwoPointCrossover.crossover(&a, &b, &s, &OpCtx::new(0, 1), &mut rng);
        assert_eq!((ca, cb), (a, b));
    }
}
