//! Mutation operators.

use nautilus_obs::{HintKind, SearchEvent};
use rand::{Rng, RngExt};

use crate::genome::Genome;
use crate::ops::OpCtx;
use crate::space::ParamSpace;

/// A mutation operator: perturbs a genome in place.
///
/// Implementations must keep every gene inside its parameter's domain.
/// The baseline GA uses [`UniformMutation`]; Nautilus substitutes a guided
/// operator that implements this same trait.
pub trait MutationOp: Send + Sync {
    /// Mutates `genome` in place.
    fn mutate(&self, genome: &mut Genome, space: &ParamSpace, ctx: &OpCtx, rng: &mut dyn Rng);

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "mutation"
    }
}

/// The classic per-gene uniform mutation of the baseline GA.
///
/// Each gene independently mutates with probability `rate` (the paper uses
/// 0.1); a mutating gene is redrawn uniformly from the *other* values of its
/// domain, so a mutation always changes the gene when the domain has more
/// than one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformMutation {
    /// Per-gene mutation probability in `[0, 1]`.
    pub rate: f64,
}

impl UniformMutation {
    /// Creates the operator; `rate` is clamped to `[0, 1]`.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        UniformMutation { rate: rate.clamp(0.0, 1.0) }
    }
}

impl Default for UniformMutation {
    /// The paper's default per-gene rate of 0.1.
    fn default() -> Self {
        UniformMutation { rate: 0.1 }
    }
}

impl MutationOp for UniformMutation {
    fn mutate(&self, genome: &mut Genome, space: &ParamSpace, ctx: &OpCtx, rng: &mut dyn Rng) {
        for (index, id) in space.param_ids().enumerate() {
            if rng.random_bool(self.rate) {
                let card = space.param(id).cardinality();
                if card <= 1 {
                    continue;
                }
                let current = genome.gene(id);
                // Draw from the other card-1 values uniformly.
                let mut draw = rng.random_range(0..card - 1) as u32;
                if draw >= current {
                    draw += 1;
                }
                genome.set_gene(id, draw);
                if ctx.observer.enabled() {
                    ctx.observer.on_event(&SearchEvent::MutationHintApplied {
                        generation: ctx.generation,
                        param: index as u32,
                        hint_kind: HintKind::Uniform,
                        accepted: true,
                    });
                }
            }
        }
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// Local "stepping" mutation: a mutating gene moves at most `max_step`
/// positions within its ordered domain.
///
/// This models the Nautilus auxiliary *stepping* setting, which constrains
/// how far a single genetic operation may travel along an ordered axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMutation {
    /// Per-gene mutation probability in `[0, 1]`.
    pub rate: f64,
    /// Maximum displacement (in domain positions, at least 1).
    pub max_step: usize,
}

impl StepMutation {
    /// Creates the operator; `rate` is clamped to `[0, 1]` and `max_step`
    /// raised to at least 1.
    #[must_use]
    pub fn new(rate: f64, max_step: usize) -> Self {
        StepMutation { rate: rate.clamp(0.0, 1.0), max_step: max_step.max(1) }
    }
}

impl MutationOp for StepMutation {
    fn mutate(&self, genome: &mut Genome, space: &ParamSpace, ctx: &OpCtx, rng: &mut dyn Rng) {
        for (index, id) in space.param_ids().enumerate() {
            if rng.random_bool(self.rate) {
                let card = space.param(id).cardinality();
                if card <= 1 {
                    continue;
                }
                let current = genome.gene(id) as i64;
                let step = rng.random_range(1..=self.max_step as i64);
                let delta = if rng.random_bool(0.5) { step } else { -step };
                let next = (current + delta).clamp(0, card as i64 - 1);
                genome.set_gene(id, next as u32);
                if ctx.observer.enabled() {
                    ctx.observer.on_event(&SearchEvent::MutationHintApplied {
                        generation: ctx.generation,
                        param: index as u32,
                        hint_kind: HintKind::Step,
                        accepted: next != current,
                    });
                }
            }
        }
    }

    fn name(&self) -> &str {
        "step"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .int("a", 0, 9, 1)
            .int("b", 0, 9, 1)
            .choices("c", ["x"]) // single-valued: must never change
            .build()
            .unwrap()
    }

    #[test]
    fn rate_zero_never_mutates() {
        let s = space();
        let op = UniformMutation::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = s.random_genome(&mut rng);
        let orig = g.clone();
        for _ in 0..100 {
            op.mutate(&mut g, &s, &OpCtx::new(0, 1), &mut rng);
        }
        assert_eq!(g, orig);
    }

    #[test]
    fn rate_one_always_changes_multivalued_genes() {
        let s = space();
        let op = UniformMutation::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let mut g = s.random_genome(&mut rng);
            let orig = g.clone();
            op.mutate(&mut g, &s, &OpCtx::new(0, 1), &mut rng);
            assert_ne!(g.gene_at(0), orig.gene_at(0));
            assert_ne!(g.gene_at(1), orig.gene_at(1));
            assert_eq!(g.gene_at(2), 0, "single-valued gene must not move");
            assert!(s.contains(&g));
        }
    }

    #[test]
    fn mutation_rate_is_respected_statistically() {
        let s = space();
        let op = UniformMutation::new(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let mut flips = 0usize;
        for _ in 0..trials {
            let mut g = Genome::from_genes(vec![5, 5, 0]);
            op.mutate(&mut g, &s, &OpCtx::new(0, 1), &mut rng);
            if g.gene_at(0) != 5 {
                flips += 1;
            }
        }
        let rate = flips as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn step_mutation_stays_local_and_in_bounds() {
        let s = space();
        let op = StepMutation::new(1.0, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let mut g = Genome::from_genes(vec![0, 9, 0]);
            op.mutate(&mut g, &s, &OpCtx::new(0, 1), &mut rng);
            assert!(s.contains(&g));
            assert!(g.gene_at(0) <= 2, "step too large: {}", g.gene_at(0));
            assert!(g.gene_at(1) >= 7, "step too large: {}", g.gene_at(1));
        }
    }

    #[test]
    fn uniform_mutation_reports_each_mutated_gene() {
        let s = space();
        let op = UniformMutation::new(1.0);
        let sink = nautilus_obs::InMemorySink::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = Genome::from_genes(vec![5, 5, 0]);
        op.mutate(&mut g, &s, &OpCtx::with_observer(2, 10, &sink), &mut rng);
        let events = sink.events();
        // Single-valued gene "c" never mutates, so exactly two events.
        assert_eq!(events.len(), 2);
        let params: Vec<u32> = events
            .iter()
            .map(|e| match e {
                SearchEvent::MutationHintApplied { generation, param, hint_kind, accepted } => {
                    assert_eq!(*generation, 2);
                    assert_eq!(*hint_kind, HintKind::Uniform);
                    assert!(*accepted);
                    *param
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(params, vec![0, 1]);
    }

    #[test]
    fn step_mutation_reports_rejected_moves_at_domain_edges() {
        // A gene pinned at its lower bound stepping "down" clamps in place:
        // the event is emitted but not accepted.
        let s = ParamSpace::builder().int("a", 0, 9, 1).build().unwrap();
        let op = StepMutation::new(1.0, 1);
        let sink = nautilus_obs::InMemorySink::new();
        let mut rng = StdRng::seed_from_u64(5);
        let (mut accepted, mut rejected) = (0u32, 0u32);
        for _ in 0..200 {
            let mut g = Genome::from_genes(vec![0]);
            op.mutate(&mut g, &s, &OpCtx::with_observer(0, 1, &sink), &mut rng);
        }
        for e in sink.events() {
            match e {
                SearchEvent::MutationHintApplied {
                    hint_kind: HintKind::Step, accepted: a, ..
                } => {
                    if a {
                        accepted += 1;
                    } else {
                        rejected += 1;
                    }
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(accepted > 0, "up-steps from 0 should change the gene");
        assert!(rejected > 0, "down-steps from 0 should clamp and be rejected");
    }

    #[test]
    fn constructors_clamp_inputs() {
        assert_eq!(UniformMutation::new(7.0).rate, 1.0);
        assert_eq!(UniformMutation::new(-1.0).rate, 0.0);
        assert_eq!(StepMutation::new(0.5, 0).max_step, 1);
        assert_eq!(UniformMutation::default().rate, 0.1);
    }
}
