//! Fault-tolerant evaluation: failure kinds, retry policy, and the
//! fallible-evaluator boundary.
//!
//! Real IP-generator backends crash, hang and emit garbage; the paper's
//! assumption that every synthesis run completes with trustworthy metrics
//! does not survive contact with production EDA farms. This module gives
//! the engine a `Result`-shaped evaluation boundary ([`FallibleEvaluator`]),
//! a deterministic [`RetryPolicy`] (exponential backoff with seeded
//! jitter), and the bookkeeping ([`EvalRecord`], [`FaultStats`]) the engine
//! uses to retry, recover, or quarantine a genome with penalized fitness
//! instead of crashing the run.
//!
//! Determinism guarantee: nothing in this module draws from the run RNG.
//! Backoff jitter is derived from the genome's stable hash and the attempt
//! number, so retry behaviour — and therefore the whole search trajectory —
//! is bit-for-bit identical at any `eval_workers` setting.

use std::error::Error;
use std::fmt;

use nautilus_obs::FailureKind;

use crate::genome::Genome;
use crate::rng::{hash_combine, mix_to_unit};

/// Salt separating backoff-jitter hashing from every other consumer of
/// [`Genome::stable_hash`].
const JITTER_SALT: u64 = 0x6a69_7474_6572_u64; // "jitter"

/// Why one evaluation attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalFailure {
    /// A transient backend fault (crashed worker, lost connection, flaky
    /// filesystem); a retry may succeed.
    Transient(String),
    /// The attempt exceeded its deadline. Retryable: the next attempt may
    /// land on a less loaded backend.
    Timeout {
        /// Milliseconds the attempt ran before being abandoned.
        elapsed_ms: u64,
        /// The deadline it exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The backend completed but returned garbage metrics (non-finite
    /// values, inconsistent reports). Not retryable: a deterministic
    /// backend reproduces the same garbage.
    Corrupted(String),
    /// The backend rejects this design permanently (unsupported parameter
    /// combination, licensing); retrying cannot help.
    Persistent(String),
}

impl EvalFailure {
    /// The observability-side kind label for this failure.
    #[must_use]
    pub fn kind(&self) -> FailureKind {
        match self {
            EvalFailure::Transient(_) => FailureKind::Transient,
            EvalFailure::Timeout { .. } => FailureKind::Timeout,
            EvalFailure::Corrupted(_) => FailureKind::Corrupted,
            EvalFailure::Persistent(_) => FailureKind::Persistent,
        }
    }

    /// Whether the retry policy is allowed to try again after this
    /// failure. Only transient faults and timeouts are worth retrying;
    /// corrupted and persistent failures quarantine immediately.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, EvalFailure::Transient(_) | EvalFailure::Timeout { .. })
    }
}

impl fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalFailure::Transient(msg) => write!(f, "transient evaluation failure: {msg}"),
            EvalFailure::Timeout { elapsed_ms, limit_ms } => {
                write!(f, "evaluation timed out after {elapsed_ms} ms (limit {limit_ms} ms)")
            }
            EvalFailure::Corrupted(msg) => write!(f, "corrupted evaluation result: {msg}"),
            EvalFailure::Persistent(msg) => write!(f, "persistent evaluation failure: {msg}"),
        }
    }
}

impl Error for EvalFailure {}

/// How the engine retries failed evaluation attempts.
///
/// Backoff for the retry after attempt `n` (1-based) is
/// `base_backoff_ms * backoff_multiplier^(n-1)`, clamped to
/// `max_backoff_ms`, then scaled by a deterministic jitter factor in
/// `[1 - jitter, 1 + jitter]` derived from the genome hash and attempt
/// number — seeded jitter, not wall-clock randomness, so runs replay
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per evaluation, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds. The default is 0:
    /// the simulated substrate fails instantly, so sleeping would only
    /// slow tests down. Real backends want a nonzero base.
    pub base_backoff_ms: u64,
    /// Multiplier applied to the backoff per additional retry (>= 1).
    pub backoff_multiplier: f64,
    /// Upper clamp on any single backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter fraction in `[0, 1]`; 0 disables jitter.
    pub jitter: f64,
    /// Optional wall-clock deadline per attempt, in milliseconds: an
    /// attempt that returns success after the deadline is converted to
    /// [`EvalFailure::Timeout`]. Opt-in, because wall-clock measurement is
    /// inherently nondeterministic — the chaos harness injects timeouts
    /// deterministically instead.
    pub attempt_deadline_ms: Option<u64>,
    /// When the *final* allowed attempt completes over
    /// [`RetryPolicy::attempt_deadline_ms`] with a usable value (feasible
    /// and finite, or cleanly infeasible), keep the value instead of
    /// quarantining the genome. The timeout is still recorded as a failed
    /// attempt — the evaluation counts as recovered, not clean. Default
    /// on: the work is already paid for, and discarding it turns a slow
    /// success into a permanently penalized genome.
    #[serde(default = "default_salvage")]
    pub salvage_late_success: bool,
}

// Referenced by name from the `#[serde(default = ...)]` attribute above;
// minimal serde shims may elide that reference.
#[allow(dead_code)]
fn default_salvage() -> bool {
    true
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
            backoff_multiplier: 2.0,
            max_backoff_ms: 1_000,
            jitter: 0.5,
            attempt_deadline_ms: None,
            salvage_late_success: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every failure quarantines immediately.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Checks the policy's invariants, returning a description of the
    /// first violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if `max_attempts` is 0, the
    /// multiplier is below 1, or the jitter fraction leaves `[0, 1]`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        if self.backoff_multiplier < 1.0 || self.backoff_multiplier.is_nan() {
            return Err(format!("backoff_multiplier {} must be >= 1", self.backoff_multiplier));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!("jitter {} outside [0, 1]", self.jitter));
        }
        Ok(())
    }

    /// The jittered backoff before the retry that follows failed attempt
    /// `attempt` (1-based), in nanoseconds.
    ///
    /// `genome_hash` should be [`Genome::stable_hash`] output; the same
    /// (genome, attempt) pair always produces the same backoff.
    #[must_use]
    pub fn backoff_nanos(&self, genome_hash: u64, attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp =
            self.backoff_multiplier.powi(attempt.saturating_sub(1).min(i32::MAX as u32) as i32);
        // `powi` overflows to infinity well before attempt 64 for large
        // multipliers (and a pathological multiplier can yield NaN); a
        // non-finite product must land on the cap, never poison the cast
        // below into 0.
        let raw = self.base_backoff_ms as f64 * exp;
        let capped = if raw.is_finite() {
            raw.min(self.max_backoff_ms as f64)
        } else {
            self.max_backoff_ms as f64
        };
        let unit = mix_to_unit(hash_combine(genome_hash ^ JITTER_SALT, u64::from(attempt)));
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        let ms = (capped * factor).max(0.0);
        (ms * 1e6).min(u64::MAX as f64 / 2.0) as u64
    }
}

/// The backoff [`evaluate_with_retries`] would apply after failed attempt
/// `attempt` (1-based) of `genome`, in nanoseconds.
///
/// Exposed so the supervised (virtual-time) retry loop in
/// [`crate::supervise`] reports backoff telemetry identical to the
/// wall-clock loop's without duplicating the jitter derivation.
#[must_use]
pub fn retry_backoff(policy: &RetryPolicy, genome: &Genome, attempt: u32) -> u64 {
    policy.backoff_nanos(genome.stable_hash(JITTER_SALT), attempt)
}

/// An evaluator whose attempts can fail.
///
/// This is the fault-tolerant sibling of [`crate::FitnessFn`]:
/// `Ok(Some(v))` is a feasible metric value, `Ok(None)` an infeasible
/// design point (the generator cleanly refused the combination), and
/// `Err` a failed attempt the engine may retry. The 1-based `attempt`
/// number lets deterministic fault injectors decide per-attempt outcomes
/// independent of scheduling.
pub trait FallibleEvaluator: Send + Sync {
    /// Evaluates `genome`, or reports why this attempt failed.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalFailure`] describing the failed attempt.
    fn try_fitness(&self, genome: &Genome, attempt: u32) -> Result<Option<f64>, EvalFailure>;
}

/// Adapts a closure into a [`FallibleEvaluator`] (handy in tests).
pub struct FnFallible<F> {
    f: F,
}

impl<F> FnFallible<F>
where
    F: Fn(&Genome, u32) -> Result<Option<f64>, EvalFailure> + Send + Sync,
{
    /// Wraps `f` as a fallible evaluator.
    pub fn new(f: F) -> Self {
        FnFallible { f }
    }
}

impl<F> FallibleEvaluator for FnFallible<F>
where
    F: Fn(&Genome, u32) -> Result<Option<f64>, EvalFailure> + Send + Sync,
{
    fn try_fitness(&self, genome: &Genome, attempt: u32) -> Result<Option<f64>, EvalFailure> {
        (self.f)(genome, attempt)
    }
}

impl<F> fmt::Debug for FnFallible<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnFallible").finish_non_exhaustive()
    }
}

/// The full outcome of evaluating one genome through the retry loop.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// `Some(value)` once an attempt succeeded (inner `None` = infeasible);
    /// `None` when every attempt failed and the genome is quarantined.
    pub value: Option<Option<f64>>,
    /// One entry per failed attempt, in attempt order.
    pub failures: Vec<EvalFailure>,
    /// Backoff applied before each retry, in nanoseconds (one entry per
    /// retry; always `failures.len()` or `failures.len() - 1` entries).
    pub backoffs_nanos: Vec<u64>,
}

impl EvalRecord {
    /// A record for an evaluation that succeeded first try.
    #[must_use]
    pub fn evaluated(value: Option<f64>) -> Self {
        EvalRecord { value: Some(value), failures: Vec::new(), backoffs_nanos: Vec::new() }
    }

    /// Whether every attempt failed.
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        self.value.is_none()
    }
}

/// Runs the retry loop for one genome.
///
/// Semantics, in order:
///
/// 1. `Ok(Some(v))` with non-finite `v` is treated as
///    [`EvalFailure::Corrupted`] — garbage metrics must never enter the
///    cache as fitness.
/// 2. With [`RetryPolicy::attempt_deadline_ms`] set, a success measured
///    over the deadline converts to [`EvalFailure::Timeout`] — except on
///    the final allowed attempt when
///    [`RetryPolicy::salvage_late_success`] is set and the value is
///    usable: the timeout is recorded but the value is kept (the
///    evaluation counts as recovered, not quarantined).
/// 3. A retryable failure with attempts remaining records a backoff
///    (sleeping only if nonzero) and tries again.
/// 4. A non-retryable failure, or retry exhaustion, quarantines.
#[must_use]
pub fn evaluate_with_retries(
    eval: &dyn FallibleEvaluator,
    genome: &Genome,
    policy: &RetryPolicy,
) -> EvalRecord {
    let max_attempts = policy.max_attempts.max(1);
    let genome_hash = genome.stable_hash(JITTER_SALT);
    let mut failures = Vec::new();
    let mut backoffs_nanos = Vec::new();
    for attempt in 1..=max_attempts {
        let started = policy.attempt_deadline_ms.map(|_| std::time::Instant::now());
        let mut result = eval.try_fitness(genome, attempt);
        if let (Ok(value), Some(t0), Some(limit_ms)) =
            (&result, started, policy.attempt_deadline_ms)
        {
            let elapsed_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
            if elapsed_ms > limit_ms {
                let usable = match value {
                    None => true,
                    Some(v) => v.is_finite(),
                };
                if policy.salvage_late_success && attempt == max_attempts && usable {
                    // The deadline passed, but the work is done and the
                    // score is trustworthy: keep it (recording the
                    // timeout) rather than quarantine a genome whose
                    // evaluation we already paid for.
                    failures.push(EvalFailure::Timeout { elapsed_ms, limit_ms });
                    return EvalRecord { value: Some(*value), failures, backoffs_nanos };
                }
                result = Err(EvalFailure::Timeout { elapsed_ms, limit_ms });
            }
        }
        if let Ok(Some(v)) = result {
            if !v.is_finite() {
                result = Err(EvalFailure::Corrupted(format!("non-finite fitness {v}")));
            }
        }
        match result {
            Ok(value) => return EvalRecord { value: Some(value), failures, backoffs_nanos },
            Err(failure) => {
                let retryable = failure.is_retryable();
                failures.push(failure);
                if !retryable || attempt == max_attempts {
                    return EvalRecord { value: None, failures, backoffs_nanos };
                }
                let nanos = policy.backoff_nanos(genome_hash, attempt);
                backoffs_nanos.push(nanos);
                if nanos > 0 {
                    std::thread::sleep(std::time::Duration::from_nanos(nanos));
                }
            }
        }
    }
    unreachable!("retry loop returns on success, exhaustion, or non-retryable failure")
}

/// Whole-run fault counters attached to run results.
///
/// Invariant: `evals_failed == retries_recovered + quarantined` — every
/// evaluation that saw at least one failure either recovered or was
/// quarantined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultStats {
    /// Distinct evaluations that saw at least one failed attempt.
    pub evals_failed: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Distinct evaluations that failed and then succeeded on a retry.
    pub retries_recovered: u64,
    /// Distinct evaluations abandoned after retry exhaustion (or a
    /// non-retryable failure); their genomes carry penalized fitness.
    pub quarantined: u64,
    /// Failed attempts indexed in `FailureKind::ALL` order
    /// (transient, timeout, corrupted, persistent).
    pub failed_attempts: [u64; 4],
}

impl FaultStats {
    /// Folds one finished [`EvalRecord`] into the counters. Records with
    /// no failures are free: they leave everything untouched.
    pub fn record(&mut self, record: &EvalRecord) {
        if record.failures.is_empty() {
            return;
        }
        self.evals_failed += 1;
        self.retries += record.backoffs_nanos.len() as u64;
        for failure in &record.failures {
            let idx = FailureKind::ALL.iter().position(|k| *k == failure.kind()).unwrap_or(0);
            self.failed_attempts[idx] += 1;
        }
        if record.is_quarantined() {
            self.quarantined += 1;
        } else {
            self.retries_recovered += 1;
        }
    }

    /// Failed attempts of one kind.
    #[must_use]
    pub fn failed_attempts_of(&self, kind: FailureKind) -> u64 {
        let idx = FailureKind::ALL.iter().position(|k| *k == kind).unwrap_or(0);
        self.failed_attempts[idx]
    }

    /// Total failed attempts across all kinds.
    #[must_use]
    pub fn total_failed_attempts(&self) -> u64 {
        self.failed_attempts.iter().sum()
    }

    /// Whether the failed/recovered/quarantined accounting reconciles.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.evals_failed == self.retries_recovered + self.quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn g(x: u32) -> Genome {
        Genome::from_genes(vec![x])
    }

    #[test]
    fn failure_kinds_and_retryability_line_up() {
        let cases: [(EvalFailure, FailureKind, bool); 4] = [
            (EvalFailure::Transient("boom".into()), FailureKind::Transient, true),
            (EvalFailure::Timeout { elapsed_ms: 1500, limit_ms: 1000 }, FailureKind::Timeout, true),
            (EvalFailure::Corrupted("NaN".into()), FailureKind::Corrupted, false),
            (EvalFailure::Persistent("unsupported".into()), FailureKind::Persistent, false),
        ];
        for (failure, kind, retryable) in cases {
            assert_eq!(failure.kind(), kind);
            assert_eq!(failure.is_retryable(), retryable, "{failure}");
        }
    }

    #[test]
    fn display_messages_cover_every_variant() {
        assert_eq!(
            EvalFailure::Transient("worker died".into()).to_string(),
            "transient evaluation failure: worker died"
        );
        assert_eq!(
            EvalFailure::Timeout { elapsed_ms: 1500, limit_ms: 1000 }.to_string(),
            "evaluation timed out after 1500 ms (limit 1000 ms)"
        );
        assert_eq!(
            EvalFailure::Corrupted("non-finite fitness NaN".into()).to_string(),
            "corrupted evaluation result: non-finite fitness NaN"
        );
        assert_eq!(
            EvalFailure::Persistent("license".into()).to_string(),
            "persistent evaluation failure: license"
        );
    }

    #[test]
    fn eval_failure_is_a_source_free_error() {
        let failure: Box<dyn Error> = Box::new(EvalFailure::Transient("x".into()));
        assert!(failure.source().is_none());
        assert!(!failure.to_string().is_empty());
    }

    #[test]
    fn default_policy_is_valid_and_none_disables_retries() {
        assert!(RetryPolicy::default().validate().is_ok());
        let none = RetryPolicy::none();
        assert_eq!(none.max_attempts, 1);
        assert!(none.validate().is_ok());
    }

    #[test]
    fn invalid_policies_are_described() {
        let zero = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
        assert!(zero.validate().unwrap_err().contains("max_attempts"));
        let shrink = RetryPolicy { backoff_multiplier: 0.5, ..RetryPolicy::default() };
        assert!(shrink.validate().unwrap_err().contains("backoff_multiplier"));
        let wild = RetryPolicy { jitter: 1.5, ..RetryPolicy::default() };
        assert!(wild.validate().unwrap_err().contains("jitter"));
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy {
            base_backoff_ms: 10,
            backoff_multiplier: 2.0,
            max_backoff_ms: 1_000,
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let hash = g(3).stable_hash(0);
        for attempt in 1..=10 {
            let a = policy.backoff_nanos(hash, attempt);
            let b = policy.backoff_nanos(hash, attempt);
            assert_eq!(a, b, "backoff must be deterministic");
            // Raw backoff clamped to 1s, jitter at most +50%.
            assert!(a <= 1_500_000_000, "backoff {a} above jittered clamp");
        }
        // Without jitter the schedule is exactly exponential then clamped.
        let flat = RetryPolicy { jitter: 0.0, ..policy };
        assert_eq!(flat.backoff_nanos(hash, 1), 10_000_000);
        assert_eq!(flat.backoff_nanos(hash, 2), 20_000_000);
        assert_eq!(flat.backoff_nanos(hash, 8), 1_000_000_000);
    }

    #[test]
    fn jitter_varies_with_genome_but_not_with_repetition() {
        let policy = RetryPolicy { base_backoff_ms: 100, ..RetryPolicy::default() };
        let a = policy.backoff_nanos(g(1).stable_hash(0), 1);
        let b = policy.backoff_nanos(g(2).stable_hash(0), 1);
        assert_ne!(a, b, "different genomes should jitter differently");
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_nanos(12345, 1), 0);
    }

    #[test]
    fn transient_failures_recover_within_budget() {
        let calls = AtomicU32::new(0);
        let eval = FnFallible::new(|_: &Genome, attempt: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            if attempt < 3 {
                Err(EvalFailure::Transient("flaky".into()))
            } else {
                Ok(Some(7.0))
            }
        });
        let record = evaluate_with_retries(&eval, &g(1), &RetryPolicy::default());
        assert_eq!(record.value, Some(Some(7.0)));
        assert_eq!(record.failures.len(), 2);
        assert_eq!(record.backoffs_nanos.len(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert!(!record.is_quarantined());
    }

    #[test]
    fn exhausted_retries_quarantine() {
        let eval = FnFallible::new(|_: &Genome, _| Err(EvalFailure::Transient("down".into())));
        let record = evaluate_with_retries(&eval, &g(2), &RetryPolicy::default());
        assert!(record.is_quarantined());
        assert_eq!(record.failures.len(), 3, "one failure per attempt");
        assert_eq!(record.backoffs_nanos.len(), 2, "no backoff after the final attempt");
    }

    #[test]
    fn persistent_failures_skip_retries() {
        let calls = AtomicU32::new(0);
        let eval = FnFallible::new(|_: &Genome, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(EvalFailure::Persistent("rejected".into()))
        });
        let record = evaluate_with_retries(&eval, &g(3), &RetryPolicy::default());
        assert!(record.is_quarantined());
        assert_eq!(calls.load(Ordering::Relaxed), 1, "persistent failures must not retry");
        assert!(record.backoffs_nanos.is_empty());
    }

    #[test]
    fn non_finite_success_is_corrupted_and_quarantines() {
        let eval = FnFallible::new(|_: &Genome, _| Ok(Some(f64::NAN)));
        let record = evaluate_with_retries(&eval, &g(4), &RetryPolicy::default());
        assert!(record.is_quarantined());
        assert_eq!(record.failures.len(), 1);
        assert_eq!(record.failures[0].kind(), FailureKind::Corrupted);
    }

    #[test]
    fn infeasible_is_a_success_not_a_failure() {
        let eval = FnFallible::new(|_: &Genome, _| Ok(None));
        let record = evaluate_with_retries(&eval, &g(5), &RetryPolicy::default());
        assert_eq!(record.value, Some(None));
        assert!(record.failures.is_empty());
    }

    #[test]
    fn deadline_converts_slow_success_to_timeout() {
        let eval = FnFallible::new(|_: &Genome, _| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok(Some(1.0))
        });
        let policy = RetryPolicy {
            max_attempts: 1,
            attempt_deadline_ms: Some(0),
            salvage_late_success: false,
            ..RetryPolicy::default()
        };
        let record = evaluate_with_retries(&eval, &g(6), &policy);
        assert!(record.is_quarantined());
        assert_eq!(record.failures[0].kind(), FailureKind::Timeout);
    }

    #[test]
    fn late_final_success_is_salvaged_by_default() {
        // Regression: a finite score computed by the final allowed attempt
        // used to be discarded (and the genome quarantined) purely because
        // the attempt finished over the deadline.
        let eval = FnFallible::new(|_: &Genome, _| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok(Some(42.0))
        });
        let policy =
            RetryPolicy { max_attempts: 1, attempt_deadline_ms: Some(0), ..RetryPolicy::default() };
        assert!(policy.salvage_late_success, "salvage must default on");
        let record = evaluate_with_retries(&eval, &g(6), &policy);
        assert_eq!(record.value, Some(Some(42.0)), "late value must be salvaged");
        assert!(!record.is_quarantined());
        assert_eq!(record.failures.len(), 1, "the timeout is still recorded");
        assert_eq!(record.failures[0].kind(), FailureKind::Timeout);
        // The salvaged record folds into FaultStats as a recovery, keeping
        // the evals_failed == recovered + quarantined identity intact.
        let mut stats = FaultStats::default();
        stats.record(&record);
        assert_eq!(stats.retries_recovered, 1);
        assert_eq!(stats.quarantined, 0);
        assert!(stats.reconciles());
    }

    #[test]
    fn late_non_finite_success_is_never_salvaged() {
        let eval = FnFallible::new(|_: &Genome, _| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok(Some(f64::NAN))
        });
        let policy =
            RetryPolicy { max_attempts: 1, attempt_deadline_ms: Some(0), ..RetryPolicy::default() };
        let record = evaluate_with_retries(&eval, &g(7), &policy);
        assert!(record.is_quarantined(), "garbage metrics must not ride in on the salvage path");
    }

    #[test]
    fn late_success_on_a_non_final_attempt_still_times_out_and_retries() {
        let calls = AtomicU32::new(0);
        let eval = FnFallible::new(|_: &Genome, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok(Some(1.0))
        });
        let policy =
            RetryPolicy { max_attempts: 2, attempt_deadline_ms: Some(0), ..RetryPolicy::default() };
        let record = evaluate_with_retries(&eval, &g(8), &policy);
        // Attempt 1 times out (not final, so no salvage), attempt 2 is
        // final and salvages.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(record.value, Some(Some(1.0)));
        assert_eq!(record.failures.len(), 2);
    }

    #[test]
    fn backoff_survives_extreme_multipliers_without_overflow() {
        // multiplier^63 overflows f64 to infinity; the clamp must land on
        // the cap instead of poisoning the cast.
        let policy = RetryPolicy {
            base_backoff_ms: 10,
            backoff_multiplier: 1e9,
            max_backoff_ms: 1_000,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let hash = g(3).stable_hash(0);
        assert_eq!(policy.backoff_nanos(hash, 64), 1_000_000_000);
        assert_eq!(policy.backoff_nanos(hash, u32::MAX), 1_000_000_000);
    }

    proptest::proptest! {
        #[test]
        fn backoff_is_monotone_and_finite_up_to_attempt_64(
            base in 0u64..10_000,
            mult in 1.0f64..1e9,
            max in 0u64..10_000_000,
            hash in proptest::prelude::any::<u64>(),
        ) {
            let policy = RetryPolicy {
                base_backoff_ms: base,
                backoff_multiplier: mult,
                max_backoff_ms: max,
                jitter: 0.0,
                ..RetryPolicy::default()
            };
            let cap_nanos = max.saturating_mul(1_000_000);
            let mut prev = 0u64;
            for attempt in 1..=64u32 {
                let nanos = policy.backoff_nanos(hash, attempt);
                proptest::prop_assert!(
                    nanos >= prev,
                    "backoff shrank at attempt {}: {} < {}", attempt, nanos, prev
                );
                proptest::prop_assert!(
                    nanos <= cap_nanos,
                    "backoff {} above cap {} at attempt {}", nanos, cap_nanos, attempt
                );
                prev = nanos;
            }
        }

        #[test]
        fn jittered_backoff_stays_within_the_jittered_cap(
            base in 1u64..10_000,
            mult in 1.0f64..1e9,
            max in 1u64..10_000_000,
            jitter in 0.0f64..1.0,
            hash in proptest::prelude::any::<u64>(),
        ) {
            let policy = RetryPolicy {
                base_backoff_ms: base,
                backoff_multiplier: mult,
                max_backoff_ms: max,
                jitter,
                ..RetryPolicy::default()
            };
            // +1 absorbs f64 rounding at the boundary.
            let bound = ((max as f64) * (1.0 + jitter) * 1e6) as u64 + 1;
            for attempt in [1u32, 2, 7, 33, 64] {
                let nanos = policy.backoff_nanos(hash, attempt);
                proptest::prop_assert!(
                    nanos <= bound,
                    "backoff {} above jittered bound {} at attempt {}", nanos, bound, attempt
                );
            }
        }
    }

    #[test]
    fn fault_stats_reconcile_over_mixed_records() {
        let mut stats = FaultStats::default();
        stats.record(&EvalRecord::evaluated(Some(1.0))); // clean: no-op
        stats.record(&EvalRecord {
            value: Some(Some(2.0)),
            failures: vec![EvalFailure::Transient("a".into())],
            backoffs_nanos: vec![0],
        });
        stats.record(&EvalRecord {
            value: None,
            failures: vec![
                EvalFailure::Timeout { elapsed_ms: 2, limit_ms: 1 },
                EvalFailure::Persistent("b".into()),
            ],
            backoffs_nanos: vec![0],
        });
        assert_eq!(stats.evals_failed, 2);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.retries_recovered, 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.total_failed_attempts(), 3);
        assert_eq!(stats.failed_attempts_of(FailureKind::Transient), 1);
        assert_eq!(stats.failed_attempts_of(FailureKind::Timeout), 1);
        assert_eq!(stats.failed_attempts_of(FailureKind::Persistent), 1);
        assert!(stats.reconciles());
    }
}
