//! Structure-of-arrays population storage.
//!
//! The generational loop used to carry its population as `Vec<Genome>` —
//! one heap allocation per member, cloned on every breed, and moved by
//! value into the batch dispatcher. [`PopArena`] flattens the population
//! into two reusable gene buffers (current and next generation) so the
//! hot path moves *row indices*, not owned genomes:
//!
//! * scoring reads `row(i)` slices straight out of the arena (zero-copy,
//!   zero-alloc — cache lookups go through `Borrow<[u32]>`),
//! * breeding writes child genes into the *next* buffer, then
//!   [`PopArena::swap`] flips the buffers without freeing either
//!   allocation (a bump arena that resets instead of reallocating),
//! * only API boundaries (operators, selectors, checkpoints) rehydrate
//!   full [`Genome`] values, and populations are small there.
//!
//! Determinism is unaffected: the arena stores exactly the genes a
//! `Vec<Genome>` population stored, in the same order.

use crate::genome::Genome;

/// A double-buffered, flat gene arena holding one generation's population
/// (`len()` rows of `gene_len()` genes each) plus the next generation
/// under construction.
#[derive(Debug, Clone, Default)]
pub struct PopArena {
    gene_len: usize,
    cur: Vec<u32>,
    next: Vec<u32>,
}

impl PopArena {
    /// Creates an empty arena for genomes of `gene_len` genes.
    #[must_use]
    pub fn new(gene_len: usize) -> PopArena {
        assert!(gene_len > 0, "gene_len must be positive");
        PopArena { gene_len, cur: Vec::new(), next: Vec::new() }
    }

    /// Builds an arena from an existing population (checkpoint resume,
    /// initial population).
    ///
    /// # Panics
    ///
    /// Panics if `genomes` is empty or rows disagree on length.
    #[must_use]
    pub fn from_genomes(genomes: &[Genome]) -> PopArena {
        let first = genomes.first().expect("population must be non-empty");
        let mut arena = PopArena::new(first.len());
        for g in genomes {
            arena.push(g.genes());
        }
        arena
    }

    /// Genes per row.
    #[must_use]
    pub fn gene_len(&self) -> usize {
        self.gene_len
    }

    /// Rows in the current generation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cur.len() / self.gene_len
    }

    /// Whether the current generation holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cur.is_empty()
    }

    /// The `i`-th row of the current generation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.cur[i * self.gene_len..(i + 1) * self.gene_len]
    }

    /// Iterates the current generation's rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[u32]> {
        self.cur.chunks_exact(self.gene_len)
    }

    /// The whole current generation as one contiguous gene slice
    /// (`len() * gene_len()` values) — the SIMD-friendly layout batch
    /// evaluators consume.
    #[must_use]
    pub fn flat(&self) -> &[u32] {
        &self.cur
    }

    /// Appends a row to the *current* generation.
    ///
    /// # Panics
    ///
    /// Panics if `genes` has the wrong length.
    pub fn push(&mut self, genes: &[u32]) {
        assert_eq!(genes.len(), self.gene_len, "row length mismatch");
        self.cur.extend_from_slice(genes);
    }

    /// Appends a row to the *next* generation under construction.
    ///
    /// # Panics
    ///
    /// Panics if `genes` has the wrong length.
    pub fn push_next(&mut self, genes: &[u32]) {
        assert_eq!(genes.len(), self.gene_len, "row length mismatch");
        self.next.extend_from_slice(genes);
    }

    /// Rows accumulated in the next generation so far.
    #[must_use]
    pub fn next_len(&self) -> usize {
        self.next.len() / self.gene_len
    }

    /// Promotes the next generation to current. The old current buffer is
    /// cleared and retained as the new next-generation scratch, so steady
    /// state never allocates.
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
        self.next.clear();
    }

    /// Rehydrates the current generation as owned genomes (checkpoint
    /// boundaries, API edges).
    #[must_use]
    pub fn to_genomes(&self) -> Vec<Genome> {
        self.rows().map(|r| Genome::from_genes(r.to_vec())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_population() {
        let pop: Vec<Genome> =
            (0..4u32).map(|i| Genome::from_genes(vec![i, i + 1, i * 2])).collect();
        let arena = PopArena::from_genomes(&pop);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.gene_len(), 3);
        assert_eq!(arena.row(2), &[2, 3, 4]);
        assert_eq!(arena.to_genomes(), pop);
        assert_eq!(arena.flat().len(), 12);
        assert_eq!(arena.rows().count(), 4);
    }

    #[test]
    fn swap_promotes_next_and_reuses_buffers() {
        let mut arena = PopArena::new(2);
        arena.push(&[1, 2]);
        arena.push_next(&[3, 4]);
        arena.push_next(&[5, 6]);
        assert_eq!(arena.next_len(), 2);
        let cap_before = arena.cur.capacity();
        arena.swap();
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.row(0), &[3, 4]);
        assert_eq!(arena.row(1), &[5, 6]);
        assert_eq!(arena.next_len(), 0);
        // The old current buffer became the next-generation scratch.
        arena.push_next(&[7, 8]);
        arena.swap();
        assert_eq!(arena.row(0), &[7, 8]);
        assert!(arena.next.capacity() >= cap_before.min(2));
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn rejects_wrong_row_length() {
        let mut arena = PopArena::new(3);
        arena.push(&[1, 2]);
    }
}
