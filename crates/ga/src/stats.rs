//! Small numeric summaries used by run reports and experiments.

use serde::{Deserialize, Serialize};

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite samples summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes the finite values of `values`.
    ///
    /// Non-finite entries (NaN, ±inf) are skipped. Returns `None` when no
    /// finite values remain.
    ///
    /// ```
    /// use nautilus_ga::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 3.0);
    /// ```
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Summary> {
        // Single allocation-free streaming pass (Welford's online variance):
        // this sits on the per-generation stats path, so no intermediate Vec.
        let mut n = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            n += 1;
            let delta = v - mean;
            mean += delta / n as f64;
            m2 += delta * (v - mean);
            min = min.min(v);
            max = max.max(v);
        }
        if n == 0 {
            return None;
        }
        let std_dev = if n < 2 { 0.0 } else { (m2 / (n as f64 - 1.0)).sqrt() };
        Some(Summary { n, mean, std_dev, min, max })
    }
}

/// Spearman rank correlation between two equal-length samples.
///
/// Used by the automatic hint-estimation pass to turn "synthesize a few
/// designs and observe trends" into bias hints. Ties receive average ranks.
/// Returns `None` for samples shorter than 2 or with zero variance.
///
/// ```
/// use nautilus_ga::spearman;
/// let rho = spearman(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0, 25.0, 40.0]).unwrap();
/// assert!((rho - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    if x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Pearson correlation coefficient; `None` if either sample is constant.
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len() as f64;
    if x.len() < 2 {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!((s.min, s.max, s.n), (2.0, 9.0, 8));
    }

    #[test]
    fn summary_skips_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, f64::INFINITY, 3.0]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
        assert!(Summary::of(&[f64::NAN]).is_none());
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_value_has_zero_std() {
        let s = Summary::of(&[4.2]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 4.2);
    }

    #[test]
    fn summary_handles_every_non_finite_shape() {
        // Mixed NaN and both infinities interleaved with finite values.
        let s =
            Summary::of(&[f64::NEG_INFINITY, -3.0, f64::NAN, 0.0, f64::INFINITY, 3.0, f64::NAN])
                .unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 0.0);
        assert_eq!((s.min, s.max), (-3.0, 3.0));
        assert!((s.std_dev - 3.0).abs() < 1e-12);
        // All-non-finite input yields no summary rather than NaN fields.
        assert!(Summary::of(&[f64::INFINITY, f64::NEG_INFINITY, f64::NAN]).is_none());
        // Large magnitudes stream through without losing the mean.
        let extremes = Summary::of(&[1e150, -1e150]).unwrap();
        assert_eq!(extremes.n, 2);
        assert_eq!(extremes.mean, 0.0);
        assert!(extremes.std_dev.is_finite());
    }

    #[test]
    fn spearman_detects_monotone_relationships() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let inc = [2.0, 9.0, 11.0, 40.0, 41.0];
        let dec = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &inc).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &dec).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_constants() {
        let x = [1.0, 1.0, 2.0, 2.0];
        let y = [3.0, 3.0, 5.0, 5.0];
        let rho = spearman(&x, &y).unwrap();
        assert!((rho - 1.0).abs() < 1e-12);
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(spearman(&[1.0], &[2.0]), None);
    }

    #[test]
    fn pearson_of_linear_data_is_one() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [5.0, 7.0, 9.0, 11.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = spearman(&[1.0], &[1.0, 2.0]);
    }
}
