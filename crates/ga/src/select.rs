//! Parent-selection strategies.

use rand::{Rng, RngExt};

use crate::genome::Genome;

/// A genome together with its (direction-normalized) score.
///
/// Scores are always *higher-is-better* inside the engine; see
/// [`crate::Direction::to_score`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredGenome {
    /// The design point.
    pub genome: Genome,
    /// Higher-is-better score (`f64::NEG_INFINITY` for infeasible points).
    pub score: f64,
}

/// A parent-selection strategy.
///
/// `ranked` is sorted best-first; implementations return the index of the
/// chosen parent.
pub trait Selector: Send + Sync {
    /// Picks one parent index from the best-first `ranked` population.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ranked` is empty.
    fn select(&self, ranked: &[ScoredGenome], rng: &mut dyn Rng) -> usize;

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "selector"
    }
}

/// Tournament selection: draw `k` candidates uniformly, keep the best.
///
/// `k = 2` (binary tournament) gives mild selection pressure and is the
/// engine default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tournament {
    /// Tournament size (at least 1).
    pub k: usize,
}

impl Tournament {
    /// Creates a tournament of size `k` (raised to at least 1).
    #[must_use]
    pub fn new(k: usize) -> Self {
        Tournament { k: k.max(1) }
    }
}

impl Default for Tournament {
    fn default() -> Self {
        Tournament { k: 2 }
    }
}

impl Selector for Tournament {
    fn select(&self, ranked: &[ScoredGenome], rng: &mut dyn Rng) -> usize {
        assert!(!ranked.is_empty(), "cannot select from an empty population");
        // `ranked` is best-first, so the winner is the *smallest* drawn index.
        (0..self.k).map(|_| rng.random_range(0..ranked.len())).min().expect("k >= 1")
    }

    fn name(&self) -> &str {
        "tournament"
    }
}

/// Linear-ranking roulette selection.
///
/// Probability decreases linearly from the best to the worst individual.
/// `pressure` in `[1, 2]` controls the slope: 1.0 is uniform, 2.0 gives the
/// worst individual probability zero. This mirrors PyEvolve's rank-based
/// roulette used by the paper's baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankRoulette {
    /// Selection pressure in `[1, 2]`.
    pub pressure: f64,
}

impl RankRoulette {
    /// Creates the selector; `pressure` is clamped to `[1, 2]`.
    #[must_use]
    pub fn new(pressure: f64) -> Self {
        RankRoulette { pressure: pressure.clamp(1.0, 2.0) }
    }
}

impl Default for RankRoulette {
    fn default() -> Self {
        RankRoulette { pressure: 1.7 }
    }
}

impl Selector for RankRoulette {
    fn select(&self, ranked: &[ScoredGenome], rng: &mut dyn Rng) -> usize {
        assert!(!ranked.is_empty(), "cannot select from an empty population");
        let n = ranked.len() as f64;
        let s = self.pressure;
        // Linear ranking: p(rank r, best r=0) = (s - 2(s-1) r/(n-1)) / n.
        let mut u = rng.random::<f64>();
        for r in 0..ranked.len() {
            let frac = if ranked.len() == 1 { 0.0 } else { r as f64 / (n - 1.0) };
            let p = (s - 2.0 * (s - 1.0) * frac) / n;
            if u < p {
                return r;
            }
            u -= p;
        }
        ranked.len() - 1
    }

    fn name(&self) -> &str {
        "rank-roulette"
    }
}

/// Classic fitness-proportional ("roulette wheel") selection with linear
/// scaling, as in PyEvolve — the GA framework the paper modified.
///
/// Scores are shifted so the worst individual gets weight 0 and then
/// raised by `floor` (a fraction of the score range) so it keeps a small
/// chance; selection probability is proportional to the scaled score.
/// Degenerates to uniform selection when all scores are equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessProportional {
    /// Weight floor as a fraction of the score range, in `[0, 1]`.
    pub floor: f64,
}

impl FitnessProportional {
    /// Creates the selector; `floor` is clamped to `[0, 1]`.
    #[must_use]
    pub fn new(floor: f64) -> Self {
        FitnessProportional { floor: floor.clamp(0.0, 1.0) }
    }
}

impl Default for FitnessProportional {
    fn default() -> Self {
        FitnessProportional { floor: 0.1 }
    }
}

impl Selector for FitnessProportional {
    fn select(&self, ranked: &[ScoredGenome], rng: &mut dyn Rng) -> usize {
        assert!(!ranked.is_empty(), "cannot select from an empty population");
        // Infeasible members (score -inf) get zero weight.
        let finite: Vec<f64> =
            ranked.iter().map(|s| if s.score.is_finite() { s.score } else { f64::NAN }).collect();
        let lo = finite.iter().copied().filter(|v| !v.is_nan()).fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().filter(|v| !v.is_nan()).fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() || (hi - lo).abs() < f64::EPSILON {
            return rng.random_range(0..ranked.len());
        }
        let range = hi - lo;
        let weights: Vec<f64> = finite
            .iter()
            .map(|v| if v.is_nan() { 0.0 } else { (v - lo) + self.floor * range })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        ranked.len() - 1
    }

    fn name(&self) -> &str {
        "fitness-proportional"
    }
}

/// Truncation selection: parents are drawn uniformly from the top fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truncation {
    /// Fraction of the population eligible as parents, in `(0, 1]`.
    pub fraction: f64,
}

impl Truncation {
    /// Creates the selector; `fraction` is clamped to `(0, 1]`.
    #[must_use]
    pub fn new(fraction: f64) -> Self {
        Truncation { fraction: fraction.clamp(f64::EPSILON, 1.0) }
    }
}

impl Default for Truncation {
    fn default() -> Self {
        Truncation { fraction: 0.5 }
    }
}

impl Selector for Truncation {
    fn select(&self, ranked: &[ScoredGenome], rng: &mut dyn Rng) -> usize {
        assert!(!ranked.is_empty(), "cannot select from an empty population");
        let cutoff = ((ranked.len() as f64 * self.fraction).ceil() as usize).clamp(1, ranked.len());
        rng.random_range(0..cutoff)
    }

    fn name(&self) -> &str {
        "truncation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ranked(n: usize) -> Vec<ScoredGenome> {
        (0..n)
            .map(|i| ScoredGenome {
                genome: Genome::from_genes(vec![i as u32]),
                score: -(i as f64), // best-first
            })
            .collect()
    }

    fn histogram(sel: &dyn Selector, n: usize, draws: usize, seed: u64) -> Vec<usize> {
        let pop = ranked(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            let idx = sel.select(&pop, &mut rng);
            h[idx] += 1;
        }
        h
    }

    #[test]
    fn tournament_prefers_better_ranks() {
        let h = histogram(&Tournament::new(2), 10, 50_000, 1);
        assert!(h[0] > h[5], "best should beat median: {h:?}");
        assert!(h[5] > h[9], "median should beat worst: {h:?}");
        // Binary tournament over n=10: P(best) = 1 - (9/10)^2 = 0.19.
        let p0 = h[0] as f64 / 50_000.0;
        assert!((p0 - 0.19).abs() < 0.01, "P(best)={p0}");
    }

    #[test]
    fn tournament_k1_is_uniform() {
        let h = histogram(&Tournament::new(1), 5, 50_000, 2);
        for &c in &h {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.2).abs() < 0.01, "not uniform: {h:?}");
        }
    }

    #[test]
    fn rank_roulette_is_monotone_in_rank() {
        let h = histogram(&RankRoulette::new(2.0), 8, 80_000, 3);
        for w in h.windows(2) {
            assert!(w[0] >= w[1], "selection not monotone: {h:?}");
        }
        // With pressure 2 the worst rank has probability 0.
        assert!(h[7] < 80, "worst rank should be ~never selected: {h:?}");
    }

    #[test]
    fn rank_roulette_pressure_one_is_uniform() {
        let h = histogram(&RankRoulette::new(1.0), 4, 40_000, 4);
        for &c in &h {
            let p = c as f64 / 40_000.0;
            assert!((p - 0.25).abs() < 0.015, "not uniform: {h:?}");
        }
    }

    #[test]
    fn fitness_proportional_weights_by_score() {
        // Scores 3, 2, 1, 0 with floor 0 -> probabilities 1/2, 1/3, 1/6, 0.
        let pop: Vec<ScoredGenome> = (0..4)
            .map(|i| ScoredGenome {
                genome: Genome::from_genes(vec![i]),
                score: 3.0 - f64::from(i),
            })
            .collect();
        let sel = FitnessProportional::new(0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = [0usize; 4];
        let draws = 60_000;
        for _ in 0..draws {
            h[sel.select(&pop, &mut rng)] += 1;
        }
        let p: Vec<f64> = h.iter().map(|&c| c as f64 / f64::from(draws)).collect();
        assert!((p[0] - 0.5).abs() < 0.01, "{p:?}");
        assert!((p[1] - 1.0 / 3.0).abs() < 0.01, "{p:?}");
        assert!(p[3] < 0.002, "worst should almost never win: {p:?}");
    }

    #[test]
    fn fitness_proportional_handles_equal_and_infinite_scores() {
        let equal: Vec<ScoredGenome> = (0..4)
            .map(|i| ScoredGenome { genome: Genome::from_genes(vec![i]), score: 2.0 })
            .collect();
        let sel = FitnessProportional::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut h = [0usize; 4];
        for _ in 0..40_000 {
            h[sel.select(&equal, &mut rng)] += 1;
        }
        for &c in &h {
            let p = c as f64 / 40_000.0;
            assert!((p - 0.25).abs() < 0.015, "not uniform on ties: {h:?}");
        }
        // Infeasible members are never selected when feasible ones exist.
        let mixed = vec![
            ScoredGenome { genome: Genome::from_genes(vec![0]), score: 5.0 },
            ScoredGenome { genome: Genome::from_genes(vec![1]), score: 1.0 },
            ScoredGenome { genome: Genome::from_genes(vec![2]), score: f64::NEG_INFINITY },
        ];
        let floor0 = FitnessProportional::new(0.0);
        for _ in 0..5_000 {
            assert_ne!(floor0.select(&mixed, &mut rng), 2);
        }
    }

    #[test]
    fn truncation_only_selects_top_fraction() {
        let h = histogram(&Truncation::new(0.3), 10, 10_000, 5);
        assert!(h[3..].iter().all(|&c| c == 0), "selected below cutoff: {h:?}");
        assert!(h[..3].iter().all(|&c| c > 0));
    }

    #[test]
    fn selectors_work_on_single_individual() {
        let pop = ranked(1);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(Tournament::default().select(&pop, &mut rng), 0);
        assert_eq!(RankRoulette::default().select(&pop, &mut rng), 0);
        assert_eq!(Truncation::default().select(&pop, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        Tournament::default().select(&[], &mut rng);
    }
}
