//! Parameter spaces: the lattice of all design points an IP generator exposes.

use std::collections::HashMap;
use std::fmt;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::error::{GaError, Result};
use crate::genome::Genome;
use crate::param::{ParamDef, ParamDomain, ParamId};
use crate::value::ParamValue;

/// An ordered collection of validated parameter definitions.
///
/// The space defines the genetic representation: a [`Genome`] holds one gene
/// per parameter, each gene being an index into that parameter's domain.
///
/// ```
/// use nautilus_ga::{ParamSpace, ParamDomain};
/// # fn main() -> Result<(), nautilus_ga::GaError> {
/// let space = ParamSpace::builder()
///     .int("num_vcs", 1, 8, 1)
///     .choices("allocator", ["round_robin", "matrix", "wavefront"])
///     .flag("speculation")
///     .build()?;
/// assert_eq!(space.num_params(), 3);
/// assert_eq!(space.cardinality(), 8 * 3 * 2);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "SpaceSerde", into = "SpaceSerde")]
pub struct ParamSpace {
    params: Vec<ParamDef>,
    by_name: HashMap<String, ParamId>,
}

/// Serialized form of [`ParamSpace`]; the name index is rebuilt on load.
#[derive(Serialize, Deserialize)]
struct SpaceSerde {
    params: Vec<ParamDef>,
}

impl TryFrom<SpaceSerde> for ParamSpace {
    type Error = GaError;

    fn try_from(s: SpaceSerde) -> Result<Self> {
        ParamSpace::from_defs(s.params)
    }
}

impl From<ParamSpace> for SpaceSerde {
    fn from(s: ParamSpace) -> Self {
        SpaceSerde { params: s.params }
    }
}

impl ParamSpace {
    /// Starts building a space.
    #[must_use]
    pub fn builder() -> ParamSpaceBuilder {
        ParamSpaceBuilder { params: Vec::new() }
    }

    fn from_defs(params: Vec<ParamDef>) -> Result<Self> {
        if params.is_empty() {
            return Err(GaError::EmptySpace);
        }
        let mut by_name = HashMap::with_capacity(params.len());
        for (i, def) in params.iter().enumerate() {
            def.domain().validate(def.name())?;
            if by_name.insert(def.name().to_owned(), ParamId(i)).is_some() {
                return Err(GaError::DuplicateParam(def.name().to_owned()));
            }
        }
        Ok(ParamSpace { params, by_name })
    }

    /// Number of parameters (genome length).
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// All parameter ids, in declaration order.
    pub fn param_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.params.len()).map(ParamId)
    }

    /// The definition of parameter `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this space.
    #[must_use]
    pub fn param(&self, id: ParamId) -> &ParamDef {
        &self.params[id.0]
    }

    /// All parameter definitions, in declaration order.
    #[must_use]
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Looks a parameter up by name.
    #[must_use]
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Like [`ParamSpace::id`] but returns an error naming the parameter.
    pub fn require(&self, name: &str) -> Result<ParamId> {
        self.id(name).ok_or_else(|| GaError::UnknownParam(name.to_owned()))
    }

    /// Total number of design points: the product of domain cardinalities.
    ///
    /// Returned as `u128` because realistic IP spaces ("billions of design
    /// points" for a 42-parameter router) overflow `u64` quickly.
    #[must_use]
    pub fn cardinality(&self) -> u128 {
        self.params.iter().map(|p| p.cardinality() as u128).fold(1u128, u128::saturating_mul)
    }

    /// Draws a uniformly random genome.
    pub fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> Genome {
        self.params.iter().map(|p| rng.random_range(0..p.cardinality()) as u32).collect()
    }

    /// Checks that every gene indexes into its parameter's domain.
    #[must_use]
    pub fn contains(&self, genome: &Genome) -> bool {
        genome.len() == self.params.len()
            && genome.genes().iter().zip(&self.params).all(|(&g, p)| (g as usize) < p.cardinality())
    }

    /// Encodes named values into a genome.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::UnknownParam`] for names not in the space and
    /// [`GaError::BadValue`] for values outside a parameter's domain.
    /// All parameters must be given exactly once; missing parameters are
    /// reported as [`GaError::UnknownParam`] with the missing name.
    pub fn genome_from_values<'v>(
        &self,
        values: impl IntoIterator<Item = (&'v str, ParamValue)>,
    ) -> Result<Genome> {
        let mut genes: Vec<Option<u32>> = vec![None; self.params.len()];
        for (name, value) in values {
            let id = self.require(name)?;
            let idx = self.params[id.0].domain().index_of(&value).ok_or_else(|| {
                GaError::BadValue { param: name.to_owned(), value: value.to_string() }
            })?;
            genes[id.0] = Some(idx as u32);
        }
        genes
            .iter()
            .enumerate()
            .map(|(i, g)| g.ok_or_else(|| GaError::UnknownParam(self.params[i].name().to_owned())))
            .collect::<Result<Vec<u32>>>()
            .map(Genome::from_genes)
    }

    /// Decodes a genome into named values.
    ///
    /// # Panics
    ///
    /// Panics if the genome does not belong to this space.
    #[must_use]
    pub fn decode(&self, genome: &Genome) -> DesignPoint {
        assert!(self.contains(genome), "genome does not belong to this space");
        DesignPoint {
            pairs: self
                .params
                .iter()
                .zip(genome.genes())
                .map(|(p, &g)| (p.name().to_owned(), p.domain().value(g as usize)))
                .collect(),
        }
    }

    /// Decodes a single parameter's value.
    ///
    /// # Panics
    ///
    /// Panics if the genome or `id` do not belong to this space.
    #[must_use]
    pub fn value_of(&self, genome: &Genome, id: ParamId) -> ParamValue {
        self.params[id.0].domain().value(genome.gene(id) as usize)
    }

    /// The flat lexicographic rank of a genome (first parameter varies
    /// slowest). Inverse of [`ParamSpace::genome_at`].
    ///
    /// # Panics
    ///
    /// Panics if the genome does not belong to this space.
    #[must_use]
    pub fn flat_index(&self, genome: &Genome) -> u128 {
        assert!(self.contains(genome), "genome does not belong to this space");
        let mut idx: u128 = 0;
        for (p, &g) in self.params.iter().zip(genome.genes()) {
            idx = idx * p.cardinality() as u128 + g as u128;
        }
        idx
    }

    /// The genome at flat lexicographic rank `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.cardinality()`.
    #[must_use]
    pub fn genome_at(&self, idx: u128) -> Genome {
        assert!(idx < self.cardinality(), "flat index {idx} out of range");
        let mut rem = idx;
        let mut genes = vec![0u32; self.params.len()];
        for (i, p) in self.params.iter().enumerate().rev() {
            let c = p.cardinality() as u128;
            genes[i] = (rem % c) as u32;
            rem /= c;
        }
        Genome::from_genes(genes)
    }

    /// Iterates over the entire space in flat-index order.
    ///
    /// Intended for dataset characterization of *swept sub-spaces* (tens of
    /// thousands of points), not for full IP spaces.
    #[must_use]
    pub fn iter_genomes(&self) -> FullSweep<'_> {
        FullSweep { space: self, next: 0, total: self.cardinality() }
    }
}

impl fmt::Display for ParamSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} parameters, {} design points", self.num_params(), self.cardinality())?;
        for p in &self.params {
            writeln!(f, "  {} : {} values", p.name(), p.cardinality())?;
        }
        Ok(())
    }
}

impl PartialEq for ParamSpace {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
    }
}

/// Iterator over every genome of a space, in flat-index order.
///
/// Produced by [`ParamSpace::iter_genomes`].
#[derive(Debug, Clone)]
pub struct FullSweep<'a> {
    space: &'a ParamSpace,
    next: u128,
    total: u128,
}

impl Iterator for FullSweep<'_> {
    type Item = Genome;

    fn next(&mut self) -> Option<Genome> {
        if self.next >= self.total {
            return None;
        }
        let g = self.space.genome_at(self.next);
        self.next += 1;
        Some(g)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next).min(usize::MAX as u128) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for FullSweep<'_> {}

/// A decoded design point: `(parameter name, value)` pairs in space order.
///
/// This is the user-facing report form of a genome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    pairs: Vec<(String, ParamValue)>,
}

impl DesignPoint {
    /// The `(name, value)` pairs in parameter order.
    #[must_use]
    pub fn pairs(&self) -> &[(String, ParamValue)] {
        &self.pairs
    }

    /// Looks up a value by parameter name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.pairs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (n, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        f.write_str("}")
    }
}

/// Incremental builder for [`ParamSpace`].
///
/// Convenience methods cover the domain kinds hardware generators need; the
/// generic [`ParamSpaceBuilder::param`] accepts any [`ParamDomain`].
#[derive(Debug, Default)]
pub struct ParamSpaceBuilder {
    params: Vec<ParamDef>,
}

impl ParamSpaceBuilder {
    /// Adds a parameter with an arbitrary domain.
    #[must_use]
    pub fn param(mut self, name: impl Into<String>, domain: ParamDomain) -> Self {
        self.params.push(ParamDef::new(name, domain));
        self
    }

    /// Adds an integer-range parameter `lo..=hi` with stride `step`.
    #[must_use]
    pub fn int(self, name: impl Into<String>, lo: i64, hi: i64, step: i64) -> Self {
        self.param(name, ParamDomain::IntRange { lo, hi, step })
    }

    /// Adds an explicit integer-list parameter (author-declared order).
    #[must_use]
    pub fn int_list(self, name: impl Into<String>, values: impl Into<Vec<i64>>) -> Self {
        self.param(name, ParamDomain::IntList(values.into()))
    }

    /// Adds a power-of-two parameter `2^lo_log2 ..= 2^hi_log2`.
    #[must_use]
    pub fn pow2(self, name: impl Into<String>, lo_log2: u32, hi_log2: u32) -> Self {
        self.param(name, ParamDomain::Pow2 { lo_log2, hi_log2 })
    }

    /// Adds a categorical parameter with named choices.
    #[must_use]
    pub fn choices<S: Into<String>>(
        self,
        name: impl Into<String>,
        choices: impl IntoIterator<Item = S>,
    ) -> Self {
        self.param(name, ParamDomain::Choices(choices.into_iter().map(Into::into).collect()))
    }

    /// Adds a boolean feature flag.
    #[must_use]
    pub fn flag(self, name: impl Into<String>) -> Self {
        self.param(name, ParamDomain::Flag)
    }

    /// Validates and builds the space.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate names, empty or inverted domains, or a
    /// space with no parameters.
    pub fn build(self) -> Result<ParamSpace> {
        ParamSpace::from_defs(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_space() -> ParamSpace {
        ParamSpace::builder()
            .int("depth", 1, 4, 1) // 4
            .choices("alloc", ["rr", "matrix"]) // 2
            .flag("spec") // 2
            .pow2("width", 5, 7) // 3
            .build()
            .unwrap()
    }

    #[test]
    fn cardinality_is_product_of_domains() {
        assert_eq!(small_space().cardinality(), 4 * 2 * 2 * 3);
    }

    #[test]
    fn builder_rejects_duplicates_and_empty() {
        let err = ParamSpace::builder().int("a", 0, 1, 1).int("a", 0, 1, 1).build();
        assert_eq!(err.unwrap_err(), GaError::DuplicateParam("a".into()));
        assert_eq!(ParamSpace::builder().build().unwrap_err(), GaError::EmptySpace);
        assert!(matches!(
            ParamSpace::builder().int("a", 4, 1, 1).build().unwrap_err(),
            GaError::InvalidRange { .. }
        ));
    }

    #[test]
    fn name_lookup() {
        let s = small_space();
        assert_eq!(s.id("alloc"), Some(ParamId(1)));
        assert_eq!(s.id("nope"), None);
        assert_eq!(s.require("nope").unwrap_err(), GaError::UnknownParam("nope".into()));
    }

    #[test]
    fn flat_index_round_trips_over_whole_space() {
        let s = small_space();
        for i in 0..s.cardinality() {
            let g = s.genome_at(i);
            assert!(s.contains(&g));
            assert_eq!(s.flat_index(&g), i);
        }
    }

    #[test]
    fn full_sweep_visits_everything_once() {
        let s = small_space();
        let all: Vec<Genome> = s.iter_genomes().collect();
        assert_eq!(all.len() as u128, s.cardinality());
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
        assert_eq!(s.iter_genomes().len(), all.len());
    }

    #[test]
    fn random_genomes_are_contained_and_varied() {
        let s = small_space();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let g = s.random_genome(&mut rng);
            assert!(s.contains(&g));
            seen.insert(g);
        }
        assert!(seen.len() > 20, "random sampling too narrow: {}", seen.len());
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = small_space();
        let g = s
            .genome_from_values([
                ("depth", ParamValue::Int(3)),
                ("alloc", ParamValue::Sym("matrix".into())),
                ("spec", ParamValue::Bool(true)),
                ("width", ParamValue::Int(64)),
            ])
            .unwrap();
        let dp = s.decode(&g);
        assert_eq!(dp.get("depth"), Some(&ParamValue::Int(3)));
        assert_eq!(dp.get("alloc"), Some(&ParamValue::Sym("matrix".into())));
        assert_eq!(dp.get("width"), Some(&ParamValue::Int(64)));
        assert_eq!(dp.get("missing"), None);
        assert_eq!(dp.to_string(), "{depth=3, alloc=matrix, spec=true, width=64}");
    }

    #[test]
    fn encode_reports_missing_and_bad_values() {
        let s = small_space();
        let missing = s.genome_from_values([("depth", ParamValue::Int(1))]);
        assert!(matches!(missing.unwrap_err(), GaError::UnknownParam(_)));
        let bad = s.genome_from_values([
            ("depth", ParamValue::Int(99)),
            ("alloc", ParamValue::Sym("rr".into())),
            ("spec", ParamValue::Bool(false)),
            ("width", ParamValue::Int(32)),
        ]);
        assert!(matches!(bad.unwrap_err(), GaError::BadValue { .. }));
    }

    #[test]
    fn contains_rejects_foreign_genomes() {
        let s = small_space();
        assert!(!s.contains(&Genome::from_genes(vec![0, 0])));
        assert!(!s.contains(&Genome::from_genes(vec![9, 0, 0, 0])));
        assert!(s.contains(&Genome::from_genes(vec![3, 1, 1, 2])));
    }

    #[test]
    fn value_of_reads_single_parameter() {
        let s = small_space();
        let g = Genome::from_genes(vec![2, 1, 0, 1]);
        assert_eq!(s.value_of(&g, s.id("width").unwrap()), ParamValue::Int(64));
        assert_eq!(s.value_of(&g, s.id("depth").unwrap()), ParamValue::Int(3));
    }

    #[test]
    fn display_summarizes_space() {
        let text = small_space().to_string();
        assert!(text.contains("4 parameters"));
        assert!(text.contains("48 design points"));
        assert!(text.contains("alloc"));
    }
}
