//! Error types for parameter-space construction and GA execution.

use std::error::Error;
use std::fmt;

/// Errors produced while building a [`crate::ParamSpace`] or running a GA.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GaError {
    /// Two parameters were declared with the same name.
    DuplicateParam(String),
    /// A parameter domain contains no values.
    EmptyDomain(String),
    /// An integer range was inverted or had a non-positive step.
    InvalidRange {
        /// Offending parameter name.
        param: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A parameter name was looked up that does not exist in the space.
    UnknownParam(String),
    /// A value was supplied that is not a member of the parameter's domain.
    BadValue {
        /// Parameter the value was supplied for.
        param: String,
        /// Display form of the rejected value.
        value: String,
    },
    /// A space was built with zero parameters.
    EmptySpace,
    /// No feasible genome could be sampled within the retry budget.
    NoFeasibleGenome {
        /// Number of sampling attempts that were made.
        attempts: usize,
    },
    /// A configuration knob was set outside its legal range.
    InvalidConfig(String),
    /// A checkpoint could not be written, read, or validated, or a resume
    /// was attempted against an incompatible engine configuration.
    Checkpoint(String),
}

impl fmt::Display for GaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaError::DuplicateParam(name) => write!(f, "duplicate parameter name `{name}`"),
            GaError::EmptyDomain(name) => write!(f, "parameter `{name}` has an empty domain"),
            GaError::InvalidRange { param, reason } => {
                write!(f, "invalid range for parameter `{param}`: {reason}")
            }
            GaError::UnknownParam(name) => write!(f, "unknown parameter `{name}`"),
            GaError::BadValue { param, value } => {
                write!(f, "value `{value}` is not in the domain of parameter `{param}`")
            }
            GaError::EmptySpace => write!(f, "parameter space has no parameters"),
            GaError::NoFeasibleGenome { attempts } => {
                write!(f, "no feasible genome found after {attempts} attempts")
            }
            GaError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            GaError::Checkpoint(reason) => write!(f, "checkpoint error: {reason}"),
        }
    }
}

impl Error for GaError {}

impl From<crate::checkpoint::CheckpointError> for GaError {
    fn from(err: crate::checkpoint::CheckpointError) -> Self {
        GaError::Checkpoint(err.to_string())
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GaError, &str)> = vec![
            (GaError::DuplicateParam("vcs".into()), "vcs"),
            (GaError::EmptyDomain("w".into()), "w"),
            (GaError::InvalidRange { param: "d".into(), reason: "lo > hi".into() }, "lo > hi"),
            (GaError::UnknownParam("nope".into()), "nope"),
            (GaError::BadValue { param: "p".into(), value: "9".into() }, "9"),
            (GaError::EmptySpace, "no parameters"),
            (GaError::NoFeasibleGenome { attempts: 7 }, "7"),
            (GaError::InvalidConfig("pop=0".into()), "pop=0"),
            (GaError::Checkpoint("bad crc".into()), "bad crc"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GaError>();
    }
}
