//! Engine-level supervision tests: cross-worker determinism of the
//! watchdog/hedging/breaker path, equivalence with the unsupervised
//! pipeline on a clean backend, and breaker persistence across resume.

use std::path::PathBuf;

use nautilus_ga::rng::{hash_combine, mix_to_unit, splitmix64};
use nautilus_ga::{
    AttemptOutcome, BreakerPolicy, CheckpointStore, Direction, EvalFailure, FnFallible, FnFitness,
    GaEngine, GaError, GaSettings, Genome, NeverHangs, ParamSpace, RunBudget, StopReason,
    SupervisableEvaluator, SupervisePolicy, Supervisor, WatchdogPolicy, HEDGE_ATTEMPT_BIT,
};
use nautilus_obs::HealthState;

fn space() -> ParamSpace {
    ParamSpace::builder().int("x", 0, 31, 1).int("y", 0, 31, 1).int("z", 0, 31, 1).build().unwrap()
}

fn sphere() -> FnFitness<impl Fn(&Genome) -> Option<f64> + Send + Sync> {
    FnFitness::new(Direction::Minimize, |g: &Genome| {
        Some(g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum())
    })
}

fn sphere_value(g: &Genome) -> f64 {
    g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nautilus-sup-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic chaos evaluator: hangs, transient crashes, stragglers
/// and successes are all pure functions of (genome, attempt) — the same
/// discipline `FaultPlan` uses, reproduced locally because `nautilus-ga`
/// cannot depend on `nautilus-synth`.
struct ChaoticEval {
    seed: u64,
    hang_rate: f64,
    fail_rate: f64,
    /// Success durations are uniform over `50..50 + cost_span` ms.
    cost_span: u64,
}

impl ChaoticEval {
    fn draw(&self, genome: &Genome, attempt: u32) -> u64 {
        let g = genome.stable_hash(splitmix64(self.seed));
        hash_combine(g, splitmix64(u64::from(attempt)))
    }
}

impl SupervisableEvaluator for ChaoticEval {
    fn attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome {
        let a = self.draw(genome, attempt);
        if mix_to_unit(hash_combine(a, 1)) < self.hang_rate {
            return AttemptOutcome::Hang;
        }
        if mix_to_unit(hash_combine(a, 2)) < self.fail_rate {
            return AttemptOutcome::Finished {
                result: Err(EvalFailure::Transient("injected: worker crashed".into())),
                cost_ms: 50 + hash_combine(a, 3) % 300,
            };
        }
        AttemptOutcome::Finished {
            result: Ok(Some(sphere_value(genome))),
            cost_ms: 50 + hash_combine(a, 4) % self.cost_span,
        }
    }
}

fn chaos_policy() -> SupervisePolicy {
    SupervisePolicy {
        watchdog: WatchdogPolicy { deadline_ms: 1_000 },
        ..SupervisePolicy::default()
    }
}

#[test]
fn supervised_runs_are_identical_at_any_worker_count() {
    let s = space();
    let f = sphere();
    // Success durations spread over 50..=1550ms against a 1000ms
    // deadline, so some clean results arrive late and are discarded.
    let eval = ChaoticEval { seed: 0xC4405, hang_rate: 0.10, fail_rate: 0.10, cost_span: 1_501 };
    let sup = Supervisor::new(&eval).with_policy(chaos_policy());

    let baseline = GaEngine::new(&s, &f)
        .with_settings(GaSettings { generations: 20, ..Default::default() })
        .with_supervisor(&sup)
        .run(0xFEED)
        .unwrap();
    assert!(
        baseline.health.watchdog_fired > 0,
        "a 10% hang rate over 20 generations should fire the watchdog: {:?}",
        baseline.health
    );
    assert!(baseline.health.reconciles(), "hedge identity broken: {:?}", baseline.health);

    for workers in [2usize, 8] {
        let settings = GaSettings { generations: 20, eval_workers: workers, ..Default::default() };
        let run = GaEngine::new(&s, &f)
            .with_settings(settings)
            .with_supervisor(&sup)
            .run(0xFEED)
            .unwrap();
        assert_eq!(run, baseline, "supervised run diverged at workers={workers}");
    }
}

#[test]
fn supervision_of_a_clean_backend_matches_the_plain_fallible_path() {
    let s = space();
    let f = sphere();
    let inner = FnFallible::new(|g: &Genome, _| Ok(Some(sphere_value(g))));
    let adapter = NeverHangs(&inner);
    let sup = Supervisor::new(&adapter);

    let plain = GaEngine::new(&s, &f).with_fallible_evaluator(&inner).run(0xAB).unwrap();
    let supervised = GaEngine::new(&s, &f)
        .with_fallible_evaluator(&inner)
        .with_supervisor(&sup)
        .run(0xAB)
        .unwrap();
    assert_eq!(supervised.history, plain.history);
    assert_eq!(supervised.best_genome, plain.best_genome);
    assert_eq!(supervised.cache, plain.cache);
    assert_eq!(supervised.faults, plain.faults);
    // On a clean backend supervision only observes: no watchdog firings,
    // hedges (all durations are 0), trips or sheds.
    let h = supervised.health;
    assert!(h.attempts_supervised > 0);
    assert_eq!(
        (h.watchdog_fired, h.hedges_issued, h.breaker_trips, h.evals_shed),
        (0, 0, 0, 0),
        "clean backend tripped supervision: {h:?}"
    );
}

#[test]
fn invalid_supervise_policies_are_rejected_at_run_start() {
    let s = space();
    let f = sphere();
    let inner = FnFallible::new(|g: &Genome, _| Ok(Some(sphere_value(g))));
    let adapter = NeverHangs(&inner);
    let mut policy = SupervisePolicy::default();
    policy.watchdog.deadline_ms = 0;
    let sup = Supervisor::new(&adapter).with_policy(policy);
    let err = GaEngine::new(&s, &f).with_supervisor(&sup).run(1).unwrap_err();
    assert!(matches!(err, GaError::InvalidConfig(msg) if msg.contains("deadline_ms")));
}

/// An evaluator that fails persistently for every genome while `broken`
/// genomes exist — used to trip the breaker deterministically.
struct StormEval {
    seed: u64,
    persist_rate: f64,
}

impl SupervisableEvaluator for StormEval {
    fn attempt(&self, genome: &Genome, _attempt: u32) -> AttemptOutcome {
        let g = genome.stable_hash(splitmix64(self.seed));
        if mix_to_unit(hash_combine(g, 7)) < self.persist_rate {
            return AttemptOutcome::Finished {
                result: Err(EvalFailure::Persistent("injected: backend storm".into())),
                cost_ms: 100,
            };
        }
        AttemptOutcome::Finished { result: Ok(Some(sphere_value(genome))), cost_ms: 100 }
    }
}

#[test]
fn breaker_state_and_health_counters_survive_checkpoint_and_resume() {
    let s = space();
    let f = sphere();
    let eval = StormEval { seed: 0x57012, persist_rate: 0.85 };
    let policy = SupervisePolicy {
        breaker: BreakerPolicy {
            window: 8,
            min_samples: 4,
            trip_failure_rate: 0.7,
            cooldown_sheds: 6,
            probe_quota: 2,
            probes_to_close: 2,
        },
        ..SupervisePolicy::default()
    };
    let sup = Supervisor::new(&eval).with_policy(policy);
    let settings = GaSettings { generations: 16, ..Default::default() };
    let seed = 0x0DD;

    let straight =
        GaEngine::new(&s, &f).with_settings(settings).with_supervisor(&sup).run(seed).unwrap();
    assert!(straight.health.breaker_trips > 0, "storm never tripped: {:?}", straight.health);
    assert!(straight.health.evals_shed > 0, "open breaker never shed: {:?}", straight.health);

    let dir = tempdir("breaker-resume");
    let interrupted = GaEngine::new(&s, &f)
        .with_settings(settings)
        .with_supervisor(&sup)
        .with_budget(RunBudget::new().with_max_generations(6))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(seed)
        .unwrap();
    assert_eq!(interrupted.stop, StopReason::GenerationBudget);

    let state = CheckpointStore::create(&dir).unwrap().recover().unwrap().state.unwrap();
    assert!(
        state.aux_blob(nautilus_ga::AUX_BREAKER).is_some(),
        "checkpoint must carry the breaker blob"
    );
    let resumed =
        GaEngine::new(&s, &f).with_settings(settings).with_supervisor(&sup).resume(state).unwrap();
    assert_eq!(
        resumed, straight,
        "resumed run (incl. health counters) must equal the uninterrupted one"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hedges_carry_the_hedge_attempt_bit() {
    // A straggling primary whose hedge succeeds instantly: the engine
    // must reach the evaluator with the tagged attempt number.
    use std::sync::atomic::{AtomicU64, Ordering};
    let s = space();
    let f = sphere();
    let hedge_calls = AtomicU64::new(0);
    struct TaggedEval<'c> {
        calls: &'c AtomicU64,
    }
    impl SupervisableEvaluator for TaggedEval<'_> {
        fn attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome {
            if attempt & HEDGE_ATTEMPT_BIT != 0 {
                self.calls.fetch_add(1, Ordering::Relaxed);
                return AttemptOutcome::Finished {
                    result: Ok(Some(sphere_value(genome))),
                    cost_ms: 10,
                };
            }
            // Primaries straggle on a deterministic subset of genomes.
            let slow = genome.stable_hash(0x517).is_multiple_of(8);
            AttemptOutcome::Finished {
                result: Ok(Some(sphere_value(genome))),
                cost_ms: if slow { 900 } else { 60 },
            }
        }
    }
    let eval = TaggedEval { calls: &hedge_calls };
    // Per-generation batches are small, so relax the hedge warm-up:
    // trust the median after 2 samples and a quarter of the batch.
    let mut policy = chaos_policy();
    policy.hedge.min_samples = 2;
    policy.hedge.completion_threshold = 0.25;
    let sup = Supervisor::new(&eval).with_policy(policy);
    let run = GaEngine::new(&s, &f)
        .with_settings(GaSettings { population: 20, generations: 20, ..Default::default() })
        .with_supervisor(&sup)
        .run(0x8ED6E)
        .unwrap();
    assert!(run.health.hedges_issued > 0, "stragglers never hedged: {:?}", run.health);
    assert_eq!(run.health.hedges_won, run.health.hedges_issued, "instant hedges must all win");
    assert_eq!(hedge_calls.load(Ordering::Relaxed), run.health.hedges_issued);
    assert!(run.health.reconciles());
}

#[test]
fn health_state_is_closed_after_a_clean_supervised_run() {
    let s = space();
    let f = sphere();
    // Every duration is well under the deadline: genuinely clean.
    let eval = ChaoticEval { seed: 1, hang_rate: 0.0, fail_rate: 0.0, cost_span: 500 };
    let sup = Supervisor::new(&eval).with_policy(chaos_policy());
    let run = GaEngine::new(&s, &f).with_supervisor(&sup).run(2).unwrap();
    assert_eq!(run.health.breaker_trips, 0);
    // HealthState is re-exported for downstream consumers of the report.
    assert_eq!(HealthState::Closed.as_str(), "closed");
}
