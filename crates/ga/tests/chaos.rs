//! Chaos tests for the engine's fault-tolerant evaluation path.
//!
//! These drive [`GaEngine`] through a deterministic fallible evaluator and
//! prove the headline guarantees: fault storms never panic, outcomes stay
//! bit-for-bit identical at any worker count, and the failure accounting
//! reconciles exactly.

use nautilus_ga::rng::{hash_combine, mix_to_unit};
use nautilus_ga::{
    Direction, EvalFailure, FaultStats, FnFallible, FnFitness, GaEngine, GaError, GaSettings,
    Genome, ParamSpace, RetryPolicy,
};

fn space() -> ParamSpace {
    ParamSpace::builder().int("x", 0, 31, 1).int("y", 0, 31, 1).int("z", 0, 31, 1).build().unwrap()
}

fn sphere_value(g: &Genome) -> f64 {
    g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum()
}

fn sphere() -> FnFitness<impl Fn(&Genome) -> Option<f64> + Send + Sync> {
    FnFitness::new(Direction::Minimize, |g: &Genome| Some(sphere_value(g)))
}

/// Deterministic per-(genome, attempt) coin flip in [0, 1).
fn draw(genome: &Genome, attempt: u32, salt: u64) -> f64 {
    mix_to_unit(hash_combine(genome.stable_hash(salt), u64::from(attempt)))
}

#[test]
fn fault_storm_never_panics_and_reconciles() {
    let s = space();
    let f = sphere();
    // 30% transient + 5% persistent: a storm, but recoverable.
    let eval = FnFallible::new(|g: &Genome, attempt: u32| {
        if draw(g, 0, 0xDEAD) < 0.05 {
            return Err(EvalFailure::Persistent("injected".into()));
        }
        if draw(g, attempt, 0xBEEF) < 0.30 {
            return Err(EvalFailure::Transient("injected".into()));
        }
        Ok(Some(sphere_value(g)))
    });
    let run = GaEngine::new(&s, &f).with_fallible_evaluator(&eval).run(42).unwrap();
    assert!(run.faults.evals_failed > 0, "storm should have injected failures");
    assert!(run.faults.reconciles(), "evals_failed must equal recovered + quarantined");
    assert_eq!(run.cache.quarantined, run.faults.quarantined);
    assert!(run.best_value.is_finite());
}

#[test]
fn faulty_runs_are_bit_identical_across_worker_counts() {
    let s = space();
    let f = sphere();
    let eval = FnFallible::new(|g: &Genome, attempt: u32| {
        if draw(g, attempt, 0xFA11) < 0.25 {
            Err(EvalFailure::Transient("injected".into()))
        } else {
            Ok(Some(sphere_value(g)))
        }
    });
    let serial = GaEngine::new(&s, &f).with_fallible_evaluator(&eval).run(7).unwrap();
    for workers in [2, 8] {
        let settings = GaSettings { eval_workers: workers, ..GaSettings::default() };
        let run = GaEngine::new(&s, &f)
            .with_settings(settings)
            .with_fallible_evaluator(&eval)
            .run(7)
            .unwrap();
        assert_eq!(run.history, serial.history, "history diverged at workers={workers}");
        assert_eq!(run.best_genome, serial.best_genome);
        assert_eq!(run.cache, serial.cache);
        assert_eq!(run.faults, serial.faults, "fault counters diverged at workers={workers}");
    }
}

#[test]
fn faulty_runs_emit_identical_event_streams_across_worker_counts() {
    let s = space();
    let f = sphere();
    let eval = FnFallible::new(|g: &Genome, attempt: u32| {
        if draw(g, attempt, 0x57EA) < 0.2 {
            Err(EvalFailure::Transient("injected".into()))
        } else {
            Ok(Some(sphere_value(g)))
        }
    });
    let settings = GaSettings { generations: 10, ..GaSettings::default() };
    let strip_timing = |events: Vec<nautilus_obs::SearchEvent>| -> Vec<String> {
        events
            .into_iter()
            .filter(|e| {
                !matches!(
                    e,
                    nautilus_obs::SearchEvent::SpanEnd { .. }
                        | nautilus_obs::SearchEvent::RunEnd { .. }
                        | nautilus_obs::SearchEvent::EvalBatch { .. }
                )
            })
            .map(|e| e.to_json())
            .collect()
    };
    let serial_sink = nautilus_obs::InMemorySink::new();
    GaEngine::new(&s, &f)
        .with_settings(settings)
        .with_fallible_evaluator(&eval)
        .with_observer(&serial_sink)
        .run(5)
        .unwrap();
    let serial_events = strip_timing(serial_sink.events());
    assert!(
        serial_events.iter().any(|e| e.contains("eval_attempt_failed")),
        "expected failure events in the stream"
    );
    let sink = nautilus_obs::InMemorySink::new();
    GaEngine::new(&s, &f)
        .with_settings(GaSettings { eval_workers: 8, ..settings })
        .with_fallible_evaluator(&eval)
        .with_observer(&sink)
        .run(5)
        .unwrap();
    assert_eq!(strip_timing(sink.events()), serial_events, "event order diverged under workers");
}

#[test]
fn infallible_adapter_matches_plain_fitness_exactly() {
    let s = space();
    let f = sphere();
    let eval = FnFallible::new(|g: &Genome, _| Ok(Some(sphere_value(g))));
    let plain = GaEngine::new(&s, &f).run(11).unwrap();
    let wrapped = GaEngine::new(&s, &f).with_fallible_evaluator(&eval).run(11).unwrap();
    assert_eq!(plain.history, wrapped.history);
    assert_eq!(plain.best_genome, wrapped.best_genome);
    assert_eq!(plain.cache, wrapped.cache);
    assert_eq!(wrapped.faults, FaultStats::default());
}

#[test]
fn quarantined_genomes_never_win_and_are_not_reevaluated() {
    let s = space();
    let f = sphere();
    // Quarantine the global optimum's whole basin: anything with x == 0.
    let eval = FnFallible::new(|g: &Genome, _| {
        if g.gene_at(0) == 0 {
            Err(EvalFailure::Persistent("injected".into()))
        } else {
            Ok(Some(sphere_value(g)))
        }
    });
    let run = GaEngine::new(&s, &f).with_fallible_evaluator(&eval).run(13).unwrap();
    assert_ne!(run.best_genome.gene_at(0), 0, "a quarantined genome must not win");
    assert!(run.faults.quarantined > 0);
    // Persistent failures must not consume retries.
    assert_eq!(
        run.faults.failed_attempts_of(nautilus_obs::FailureKind::Persistent),
        run.faults.quarantined
    );
    assert!(run.faults.reconciles());
}

#[test]
fn total_failure_degrades_to_no_feasible_genome_error() {
    let s = space();
    let f = sphere();
    let eval = FnFallible::new(|_: &Genome, _| Err(EvalFailure::Persistent("dead farm".into())));
    let err = GaEngine::new(&s, &f).with_fallible_evaluator(&eval).run(17).unwrap_err();
    assert!(matches!(err, GaError::NoFeasibleGenome { .. }), "graceful error, not a panic: {err}");
}

#[test]
fn invalid_retry_policy_is_rejected_up_front() {
    let s = space();
    let f = sphere();
    let bad = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
    let err = GaEngine::new(&s, &f).with_retry_policy(bad).run(19).unwrap_err();
    assert!(matches!(err, GaError::InvalidConfig(_)));
}

#[test]
fn corrupted_metrics_are_quarantined_not_cached_as_fitness() {
    let s = space();
    let f = FnFitness::new(Direction::Maximize, |g: &Genome| Some(sphere_value(g)));
    // A slice of the space reports NaN "metrics".
    let eval = FnFallible::new(|g: &Genome, _| {
        if g.gene_at(1) == 5 {
            Ok(Some(f64::NAN))
        } else {
            Ok(Some(sphere_value(g)))
        }
    });
    let run = GaEngine::new(&s, &f).with_fallible_evaluator(&eval).run(23).unwrap();
    assert!(run.best_value.is_finite(), "NaN must never become a best value");
    assert_ne!(run.best_genome.gene_at(1), 5);
    if run.faults.quarantined > 0 {
        assert_eq!(
            run.faults.failed_attempts_of(nautilus_obs::FailureKind::Corrupted),
            run.faults.quarantined
        );
    }
}
