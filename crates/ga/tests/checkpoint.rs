//! Crash-safety integration tests: budget stops, checkpoint/resume
//! byte-identity, and corruption recovery at the engine level.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nautilus_ga::{
    CheckpointStore, Direction, FnFitness, GaEngine, GaError, GaSettings, Genome, ParamSpace,
    RunBudget, SearchState, SharedClock, StopReason,
};
use nautilus_obs::{InMemorySink, SearchEvent};

fn space() -> ParamSpace {
    ParamSpace::builder().int("x", 0, 31, 1).int("y", 0, 31, 1).int("z", 0, 31, 1).build().unwrap()
}

fn sphere() -> FnFitness<impl Fn(&Genome) -> Option<f64> + Send + Sync> {
    FnFitness::new(Direction::Minimize, |g: &Genome| {
        Some(g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum())
    })
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nautilus-ckpt-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Event-stream digest stripped of timing-dependent and durability-only
/// events: what must be identical between a straight run and an
/// interrupted+resumed pair.
fn strip(events: &[SearchEvent]) -> Vec<String> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e,
                SearchEvent::SpanEnd { .. }
                    | SearchEvent::RunEnd { .. }
                    | SearchEvent::EvalBatch { .. }
                    | SearchEvent::CheckpointWritten { .. }
                    | SearchEvent::CheckpointRestored { .. }
                    | SearchEvent::CheckpointCorruptSkipped { .. }
                    | SearchEvent::RunInterrupted { .. }
                    | SearchEvent::RunResumed { .. }
            )
        })
        .map(SearchEvent::to_json)
        .collect()
}

#[test]
fn resumed_runs_are_byte_identical_at_any_worker_count() {
    let s = space();
    let f = sphere();
    let seed = 0xD1CE;
    for workers in [1usize, 2, 8] {
        let settings = GaSettings { generations: 12, eval_workers: workers, ..Default::default() };
        let straight_sink = InMemorySink::new();
        let straight = GaEngine::new(&s, &f)
            .with_settings(settings)
            .with_observer(&straight_sink)
            .run(seed)
            .unwrap();
        assert_eq!(straight.stop, StopReason::Completed);

        let dir = tempdir(&format!("identity-w{workers}"));
        let part_sink = InMemorySink::new();
        let interrupted = GaEngine::new(&s, &f)
            .with_settings(settings)
            .with_observer(&part_sink)
            .with_budget(RunBudget::new().with_max_generations(5))
            .with_checkpoints(CheckpointStore::create(&dir).unwrap())
            .run(seed)
            .unwrap();
        assert_eq!(interrupted.stop, StopReason::GenerationBudget);
        assert_eq!(interrupted.history.len(), 6, "generations 0..=5 scored");

        let recovery = CheckpointStore::create(&dir).unwrap().recover().unwrap();
        let state = recovery.state.expect("final checkpoint present");
        assert!(recovery.skipped.is_empty());
        assert_eq!(state.generation, 6);

        let resume_sink = InMemorySink::new();
        let resumed = GaEngine::new(&s, &f)
            .with_settings(settings)
            .with_observer(&resume_sink)
            .resume(state)
            .unwrap();
        assert_eq!(resumed, straight, "resumed GaRun must equal the uninterrupted one");

        // Concatenated (interrupted + resumed) event stream, minus timing
        // and durability events, must equal the straight stream.
        let mut spliced = part_sink.events();
        spliced.extend(resume_sink.events());
        assert_eq!(
            strip(&spliced),
            strip(&straight_sink.events()),
            "event streams diverged at workers={workers}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resuming_a_completed_runs_terminal_checkpoint_returns_its_outcome() {
    // The newest checkpoint of a completed run sits at the last boundary
    // (generation = generations, bred but not yet scored). Resuming it
    // re-scores the final generation and returns the finished run — so
    // crash recovery never has to care whether the victim died mid-run or
    // right at the end.
    let s = space();
    let f = sphere();
    let settings = GaSettings { generations: 7, ..Default::default() };
    let dir = tempdir("terminal");
    let straight = GaEngine::new(&s, &f)
        .with_settings(settings)
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(41)
        .unwrap();
    assert_eq!(straight.stop, StopReason::Completed);

    let state = CheckpointStore::create(&dir).unwrap().recover().unwrap().state.unwrap();
    assert_eq!(state.generation, 7, "newest checkpoint sits at the final boundary");
    let resumed = GaEngine::new(&s, &f).with_settings(settings).resume(state).unwrap();
    assert_eq!(resumed, straight);
    assert_eq!(resumed.stop, StopReason::Completed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_works_across_different_worker_counts() {
    // A checkpoint written by a serial run must resume identically under 8
    // workers (and vice versa): worker count is not part of run identity.
    let s = space();
    let f = sphere();
    let seed = 77;
    let straight = GaEngine::new(&s, &f)
        .with_settings(GaSettings { generations: 10, ..Default::default() })
        .run(seed)
        .unwrap();

    let dir = tempdir("xworkers");
    GaEngine::new(&s, &f)
        .with_settings(GaSettings { generations: 10, eval_workers: 1, ..Default::default() })
        .with_budget(RunBudget::new().with_max_generations(4))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(seed)
        .unwrap();
    let state = CheckpointStore::create(&dir).unwrap().recover().unwrap().state.unwrap();
    let resumed = GaEngine::new(&s, &f)
        .with_settings(GaSettings { generations: 10, eval_workers: 8, ..Default::default() })
        .resume(state)
        .unwrap();
    assert_eq!(resumed.history, straight.history);
    assert_eq!(resumed.best_genome, straight.best_genome);
    assert_eq!(resumed.cache, straight.cache);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_stops_are_clean_and_reported() {
    let s = space();
    let f = sphere();

    // Generation budget: history covers 0..=2, never a partial generation.
    let run =
        GaEngine::new(&s, &f).with_budget(RunBudget::new().with_max_generations(2)).run(3).unwrap();
    assert_eq!(run.stop, StopReason::GenerationBudget);
    let gens: Vec<u32> = run.history.iter().map(|h| h.generation).collect();
    assert_eq!(gens, vec![0, 1, 2]);

    // Eval budget.
    let run =
        GaEngine::new(&s, &f).with_budget(RunBudget::new().with_max_evaluations(5)).run(3).unwrap();
    assert_eq!(run.stop, StopReason::EvalBudget);
    assert!(run.cache.distinct_evals >= 5);
    assert!(run.history.len() < 81);

    // Deadline with an injected clock that advances 1s per sample: origin
    // is sample 1, so a 3s deadline passes at the boundary after the
    // third generation's check.
    let ticks = Arc::new(AtomicU64::new(0));
    let reader = Arc::clone(&ticks);
    let clock: SharedClock =
        Arc::new(move || Duration::from_secs(reader.fetch_add(1, Ordering::Relaxed)));
    let run = GaEngine::new(&s, &f)
        .with_budget(RunBudget::new().with_deadline(Duration::from_secs(3)).with_clock(clock))
        .run(3)
        .unwrap();
    assert_eq!(run.stop, StopReason::DeadlineExceeded);
    assert_eq!(run.history.len(), 3, "clock samples 1s and 2s pass; the 3s sample stops");

    // Pre-raised cancel flag stops at the very first boundary.
    let flag = Arc::new(AtomicBool::new(true));
    let run =
        GaEngine::new(&s, &f).with_budget(RunBudget::new().with_cancel_flag(flag)).run(3).unwrap();
    assert_eq!(run.stop, StopReason::Cancelled);
    assert_eq!(run.history.len(), 1, "generation 0 scored, then cancelled at the boundary");
}

#[test]
fn interrupted_run_emits_run_interrupted_instead_of_run_end() {
    let s = space();
    let f = sphere();
    let sink = InMemorySink::new();
    let dir = tempdir("events");
    let run = GaEngine::new(&s, &f)
        .with_observer(&sink)
        .with_budget(RunBudget::new().with_max_generations(2))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(11)
        .unwrap();
    assert_eq!(run.stop, StopReason::GenerationBudget);
    let events = sink.events();
    assert!(!events.iter().any(|e| matches!(e, SearchEvent::RunEnd { .. })));
    let interrupted: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            SearchEvent::RunInterrupted { generation, reason } => {
                Some((*generation, reason.clone()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(interrupted, vec![(3, "generation_budget".to_owned())]);
    let written: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            SearchEvent::CheckpointWritten { generation, bytes, .. } => {
                assert!(*bytes > 0);
                Some(*generation)
            }
            _ => None,
        })
        .collect();
    assert_eq!(written, vec![1, 2, 3], "one checkpoint per boundary");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_falls_back_past_a_corrupt_newest_checkpoint() {
    let s = space();
    let f = sphere();
    let seed = 5;
    let settings = GaSettings { generations: 9, ..Default::default() };
    let straight = GaEngine::new(&s, &f).with_settings(settings).run(seed).unwrap();

    let dir = tempdir("fallback");
    GaEngine::new(&s, &f)
        .with_settings(settings)
        .with_budget(RunBudget::new().with_max_generations(4))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap().with_keep_last(4))
        .run(seed)
        .unwrap();
    // Corrupt the newest checkpoint (gen 5) by flipping one body bit.
    let newest = dir.join("ckpt-00000005.nckpt");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).unwrap();

    let sink = InMemorySink::new();
    let recovery = CheckpointStore::create(&dir).unwrap().recover_observed(&sink).unwrap();
    assert_eq!(recovery.skipped.len(), 1);
    let state = recovery.state.unwrap();
    assert_eq!(state.generation, 4, "fell back to the previous intact checkpoint");
    let events = sink.events();
    assert!(
        events.iter().any(|e| matches!(e, SearchEvent::CheckpointCorruptSkipped { reason, .. }
            if reason.contains("checksum"))),
        "corruption must be reported, never silent"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, SearchEvent::CheckpointRestored { generation: 4, .. })));

    // Resuming from the older checkpoint still converges to the same run.
    let resumed = GaEngine::new(&s, &f).with_settings(settings).resume(state).unwrap();
    assert_eq!(resumed, straight);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stray_tmp_file_from_a_crashed_write_is_ignored_and_cleaned() {
    let s = space();
    let f = sphere();
    let dir = tempdir("stray-tmp");
    GaEngine::new(&s, &f)
        .with_budget(RunBudget::new().with_max_generations(3))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(21)
        .unwrap();
    // Simulate a crash mid-write: temp file present, rename never happened.
    let stray = dir.join(".ckpt-00000009.nckpt.tmp");
    std::fs::write(&stray, b"half a record").unwrap();
    let recovery = CheckpointStore::create(&dir).unwrap().recover().unwrap();
    assert_eq!(recovery.state.unwrap().generation, 4);
    assert!(recovery.skipped.is_empty(), "a tmp file is not a checkpoint candidate");
    assert!(!stray.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_final_file_falls_back_at_every_cut_length() {
    let s = space();
    let f = sphere();
    let dir = tempdir("truncation");
    GaEngine::new(&s, &f)
        .with_budget(RunBudget::new().with_max_generations(3))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap().with_keep_last(3))
        .run(9)
        .unwrap();
    let newest = dir.join("ckpt-00000004.nckpt");
    let intact = std::fs::read(&newest).unwrap();
    // Cut the newest checkpoint at a spread of prefix lengths (every 37th
    // byte plus the edges): recovery must always fall back to gen 3.
    let cuts: Vec<usize> = (0..intact.len()).step_by(37).chain([intact.len() - 1]).collect();
    for cut in cuts {
        std::fs::write(&newest, &intact[..cut]).unwrap();
        let recovery = CheckpointStore::create(&dir).unwrap().recover().unwrap();
        assert_eq!(
            recovery.state.as_ref().map(|s| s.generation),
            Some(3),
            "cut at {cut} did not fall back"
        );
        assert_eq!(recovery.skipped.len(), 1, "cut at {cut} not reported");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_incompatible_settings_and_bad_states() {
    let s = space();
    let f = sphere();
    let dir = tempdir("compat");
    GaEngine::new(&s, &f)
        .with_budget(RunBudget::new().with_max_generations(2))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(1)
        .unwrap();
    let state = CheckpointStore::create(&dir).unwrap().recover().unwrap().state.unwrap();

    // Different population: rejected.
    let bad = GaSettings { population: 7, ..Default::default() };
    let err = GaEngine::new(&s, &f).with_settings(bad).resume(state.clone()).unwrap_err();
    assert!(err.to_string().contains("checkpoint"), "{err}");

    // eval_workers is exempt: same run, different parallelism, accepted.
    let ok = GaSettings { eval_workers: 4, ..Default::default() };
    assert!(GaEngine::new(&s, &f).with_settings(ok).resume(state.clone()).is_ok());

    // Generation outside the run's range: rejected.
    let mut out_of_range = state;
    out_of_range.generation = 1000;
    assert!(GaEngine::new(&s, &f).resume(out_of_range).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aux_blobs_ride_in_checkpoints_verbatim() {
    let s = space();
    let f = sphere();
    let dir = tempdir("aux");
    let aux = || vec![("layer.state".to_owned(), vec![0xAB, 0xCD]), ("empty".to_owned(), vec![])];
    GaEngine::new(&s, &f)
        .with_budget(RunBudget::new().with_max_generations(2))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .with_checkpoint_aux(&aux)
        .run(2)
        .unwrap();
    let state: SearchState =
        CheckpointStore::create(&dir).unwrap().recover().unwrap().state.unwrap();
    assert_eq!(state.aux_blob("layer.state"), Some(&[0xAB, 0xCD][..]));
    assert_eq!(state.aux_blob("empty"), Some(&[][..]));
    assert_eq!(state.aux_blob("nope"), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn best_checkpoint_is_pinned_across_retention() {
    let s = space();
    let f = sphere();
    let dir = tempdir("pin-best");
    GaEngine::new(&s, &f)
        .with_budget(RunBudget::new().with_max_generations(10))
        .with_checkpoints(CheckpointStore::create(&dir).unwrap().with_keep_last(1))
        .run(4)
        .unwrap();
    let files = CheckpointStore::create(&dir).unwrap().checkpoint_files().unwrap();
    assert_eq!(files.len(), 1, "keep-last-1 retention");
    let best_path = dir.join("best.nckpt");
    assert!(best_path.exists(), "best-so-far checkpoint pinned outside retention");
    let best = CheckpointStore::create(&dir).unwrap().load(&best_path).unwrap();
    assert!(best.best_genome.is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_after_deadline_exceeded_honors_a_fresh_deadline() {
    // A wall-clock deadline is measured from the start of the *resumed*
    // process: a run stopped by DeadlineExceeded must not instantly
    // re-stop on resume, and with the clock quiet it must finish and
    // match the uninterrupted run exactly.
    use std::sync::Mutex;
    let s = space();
    let f = sphere();
    let settings = GaSettings { generations: 10, ..Default::default() };
    let seed = 0xDEAD11;
    let straight = GaEngine::new(&s, &f).with_settings(settings).run(seed).unwrap();

    // A self-advancing clock: every read moves time forward by `step`,
    // so the deadline blows mid-run without any cross-thread choreography.
    let step = Arc::new(Mutex::new(Duration::from_secs(61)));
    let now = Arc::new(Mutex::new(Duration::ZERO));
    let clock: SharedClock = {
        let step = Arc::clone(&step);
        let now = Arc::clone(&now);
        Arc::new(move || {
            let mut t = now.lock().unwrap();
            *t += *step.lock().unwrap();
            *t
        })
    };
    let budget =
        RunBudget::new().with_deadline(Duration::from_secs(60)).with_clock(Arc::clone(&clock));

    let dir = tempdir("deadline-resume");
    let interrupted = GaEngine::new(&s, &f)
        .with_settings(settings)
        .with_budget(budget.clone())
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(seed)
        .unwrap();
    assert_eq!(interrupted.stop, StopReason::DeadlineExceeded);
    assert_eq!(interrupted.history.len(), 1, "stopped at the first boundary");

    // Freeze the clock, then resume with the SAME budget: the fresh
    // timer origin grants a fresh 60s window that never elapses.
    *step.lock().unwrap() = Duration::ZERO;
    let state = CheckpointStore::create(&dir).unwrap().recover().unwrap().state.unwrap();
    let resumed =
        GaEngine::new(&s, &f).with_settings(settings).with_budget(budget).resume(state).unwrap();
    assert_eq!(resumed.stop, StopReason::Completed, "fresh deadline must not re-stop");
    assert_eq!(resumed, straight, "resumed run must match the uninterrupted one");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_dir_going_read_only_mid_run_is_a_clean_error_not_a_corrupt_store() {
    let s = space();
    let f = sphere();
    let seed = 0xFA17;
    let settings = GaSettings { generations: 10, ..Default::default() };

    // Simulate the checkpoint directory becoming unwritable between
    // generations: pre-block generation 4's final path with a non-empty
    // directory so the publishing rename fails. (Permission bits alone do
    // not stop root, so the test injects the fault at the rename instead.)
    let dir = tempdir("midrun-fault");
    let blocked = dir.join("ckpt-00000004.nckpt");
    std::fs::create_dir(&blocked).unwrap();
    std::fs::write(blocked.join("occupied"), b"x").unwrap();

    let err = GaEngine::new(&s, &f)
        .with_settings(settings)
        .with_checkpoints(CheckpointStore::create(&dir).unwrap())
        .run(seed)
        .expect_err("checkpoint write failure must stop the run");
    assert!(matches!(err, GaError::Checkpoint(_)), "expected a checkpoint error, got {err:?}");
    assert!(err.to_string().contains("i/o failure"), "{err}");

    // The failed write left no temporary and every earlier checkpoint is
    // intact: recovery lands on the last generation written before the
    // fault, and a resumed run completes normally.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "stray temporary {name} after failed write");
    }
    std::fs::remove_file(blocked.join("occupied")).unwrap();
    std::fs::remove_dir(&blocked).unwrap();
    let recovery = CheckpointStore::create(&dir).unwrap().recover().unwrap();
    assert!(recovery.skipped.is_empty(), "no corrupt files: {:?}", recovery.skipped);
    let state = recovery.state.expect("generations before the fault recoverable");
    assert_eq!(state.generation, 3, "newest intact checkpoint is the pre-fault one");

    let resumed = GaEngine::new(&s, &f).with_settings(settings).resume(state).unwrap();
    assert_eq!(resumed.stop, StopReason::Completed);
    let straight = GaEngine::new(&s, &f).with_settings(settings).run(seed).unwrap();
    assert_eq!(resumed, straight, "recovery after the fault stays byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}
