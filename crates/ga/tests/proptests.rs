//! Property-based tests for the GA substrate's core invariants.

use nautilus_ga::ops::{CrossoverOp, MutationOp, OpCtx};
use nautilus_ga::{
    Direction, FnFitness, GaEngine, GaSettings, Genome, OnePointCrossover, ParamDomain, ParamSpace,
    ParamValue, StepMutation, TwoPointCrossover, UniformCrossover, UniformMutation,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing an arbitrary valid domain with 1..=12 values.
fn arb_domain() -> impl Strategy<Value = ParamDomain> {
    prop_oneof![
        (0i64..50, 1usize..12, 1i64..5).prop_map(|(lo, n, step)| ParamDomain::IntRange {
            lo,
            hi: lo + step * (n as i64 - 1),
            step,
        }),
        (0u32..8, 0u32..4)
            .prop_map(|(lo, extra)| ParamDomain::Pow2 { lo_log2: lo, hi_log2: lo + extra }),
        prop::collection::vec(-100i64..100, 1..10).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            ParamDomain::IntList(v)
        }),
        prop::collection::vec("[a-z]{1,6}", 1..6).prop_map(|mut v| {
            v.sort();
            v.dedup();
            ParamDomain::Choices(v)
        }),
        Just(ParamDomain::Flag),
    ]
}

/// Strategy producing a valid space of 1..=8 parameters.
fn arb_space() -> impl Strategy<Value = ParamSpace> {
    prop::collection::vec(arb_domain(), 1..8).prop_map(|domains| {
        let mut b = ParamSpace::builder();
        for (i, d) in domains.into_iter().enumerate() {
            b = b.param(format!("p{i}"), d);
        }
        b.build().expect("generated domains are valid")
    })
}

proptest! {
    /// Every domain value round-trips through value() / index_of().
    #[test]
    fn domain_value_index_round_trip(domain in arb_domain()) {
        for i in 0..domain.cardinality() {
            let v = domain.value(i);
            prop_assert_eq!(domain.index_of(&v), Some(i));
        }
    }

    /// flat_index() and genome_at() are inverse bijections over the space.
    #[test]
    fn flat_index_bijection(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let g = space.random_genome(&mut rng);
            let idx = space.flat_index(&g);
            prop_assert!(idx < space.cardinality());
            prop_assert_eq!(space.genome_at(idx), g);
        }
    }

    /// decode() always produces values that re-encode to the same genome.
    #[test]
    fn decode_encode_round_trip(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = space.random_genome(&mut rng);
        let dp = space.decode(&g);
        let pairs: Vec<(&str, ParamValue)> =
            dp.pairs().iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let g2 = space.genome_from_values(pairs).unwrap();
        prop_assert_eq!(g2, g);
    }

    /// Mutation never leaves the space, at any rate.
    #[test]
    fn mutation_stays_in_space(
        space in arb_space(),
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops: [Box<dyn MutationOp>; 2] =
            [Box::new(UniformMutation::new(rate)), Box::new(StepMutation::new(rate, 3))];
        for op in &ops {
            let mut g = space.random_genome(&mut rng);
            for gen in 0..16 {
                op.mutate(&mut g, &space, &OpCtx::new(gen, 16), &mut rng);
                prop_assert!(space.contains(&g), "{} left the space", op.name());
            }
        }
    }

    /// Crossover children are gene-wise permutations of their parents.
    #[test]
    fn crossover_conserves_gene_pool(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.random_genome(&mut rng);
        let b = space.random_genome(&mut rng);
        let ops: [Box<dyn CrossoverOp>; 3] = [
            Box::new(OnePointCrossover),
            Box::new(TwoPointCrossover),
            Box::new(UniformCrossover::default()),
        ];
        for op in &ops {
            let (ca, cb) = op.crossover(&a, &b, &space, &OpCtx::new(0, 1), &mut rng);
            prop_assert!(space.contains(&ca));
            prop_assert!(space.contains(&cb));
            for i in 0..a.len() {
                let parents = [a.gene_at(i), b.gene_at(i)];
                let kids = [ca.gene_at(i), cb.gene_at(i)];
                prop_assert!(
                    kids == parents || kids == [parents[1], parents[0]],
                    "{} lost genes at {}", op.name(), i
                );
            }
        }
    }

    /// A full GA run is deterministic in its seed and its best_so_far curve
    /// never regresses, on an arbitrary space with an arbitrary linear
    /// fitness function.
    #[test]
    fn ga_run_invariants(space in arb_space(), seed in any::<u64>(), w in -5.0f64..5.0) {
        let fitness = FnFitness::new(Direction::Minimize, move |g: &Genome| {
            Some(g.genes().iter().enumerate().map(|(i, &v)| w * (i as f64 + 1.0) * f64::from(v)).sum())
        });
        let settings = GaSettings { generations: 12, ..GaSettings::default() };
        let engine = GaEngine::new(&space, &fitness).with_settings(settings);
        let r1 = engine.run(seed).unwrap();
        let r2 = engine.run(seed).unwrap();
        prop_assert_eq!(&r1.history, &r2.history);
        prop_assert_eq!(&r1.best_genome, &r2.best_genome);
        for pair in r1.history.windows(2) {
            prop_assert!(pair[1].best_so_far <= pair[0].best_so_far);
            prop_assert!(pair[1].distinct_evals >= pair[0].distinct_evals);
        }
        prop_assert!(space.contains(&r1.best_genome));
    }

    /// Parallel batch evaluation is an implementation detail: at 1, 2 and
    /// 8 workers (and auto), runs are bit-for-bit identical to the serial
    /// engine — same history, same best genome, same cache counters.
    #[test]
    fn batched_eval_is_worker_count_invariant(
        space in arb_space(),
        seed in any::<u64>(),
        w in -5.0f64..5.0,
    ) {
        let fitness = FnFitness::new(Direction::Minimize, move |g: &Genome| {
            let v: f64 = g.genes().iter().enumerate()
                .map(|(i, &x)| w * (i as f64 + 1.0) * f64::from(x))
                .sum();
            if v < -400.0 { None } else { Some(v) }
        });
        let base = GaSettings { generations: 8, ..GaSettings::default() };
        let serial = GaEngine::new(&space, &fitness).with_settings(base);
        let reference = match serial.run(seed) {
            Ok(run) => run,
            // Heavily infeasible spaces may fail to seed a population;
            // the parallel engines must then fail identically.
            Err(_) => {
                for workers in [2usize, 8] {
                    let settings = GaSettings { eval_workers: workers, ..base };
                    prop_assert!(
                        GaEngine::new(&space, &fitness).with_settings(settings).run(seed).is_err()
                    );
                }
                return Ok(());
            }
        };
        for workers in [0usize, 2, 8] {
            let settings = GaSettings { eval_workers: workers, ..base };
            let run = GaEngine::new(&space, &fitness)
                .with_settings(settings)
                .run(seed)
                .unwrap();
            prop_assert_eq!(&run.history, &reference.history, "workers={}", workers);
            prop_assert_eq!(&run.best_genome, &reference.best_genome);
            prop_assert_eq!(run.cache, reference.cache);
        }
    }
}
