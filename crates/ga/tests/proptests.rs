//! Property-based tests for the GA substrate's core invariants.

use nautilus_ga::checkpoint::SearchState;
use nautilus_ga::ops::{CrossoverOp, MutationOp, OpCtx};
use nautilus_ga::{
    CacheSnapshot, Direction, EvalCache, FnFitness, GaEngine, GaSettings, GenStats, Genome,
    OnePointCrossover, ParamDomain, ParamSpace, ParamValue, StepMutation, TwoPointCrossover,
    UniformCrossover, UniformMutation,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing an arbitrary valid domain with 1..=12 values.
fn arb_domain() -> impl Strategy<Value = ParamDomain> {
    prop_oneof![
        (0i64..50, 1usize..12, 1i64..5).prop_map(|(lo, n, step)| ParamDomain::IntRange {
            lo,
            hi: lo + step * (n as i64 - 1),
            step,
        }),
        (0u32..8, 0u32..4)
            .prop_map(|(lo, extra)| ParamDomain::Pow2 { lo_log2: lo, hi_log2: lo + extra }),
        prop::collection::vec(-100i64..100, 1..10).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            ParamDomain::IntList(v)
        }),
        prop::collection::vec("[a-z]{1,6}", 1..6).prop_map(|mut v| {
            v.sort();
            v.dedup();
            ParamDomain::Choices(v)
        }),
        Just(ParamDomain::Flag),
    ]
}

/// Strategy producing a valid space of 1..=8 parameters.
fn arb_space() -> impl Strategy<Value = ParamSpace> {
    prop::collection::vec(arb_domain(), 1..8).prop_map(|domains| {
        let mut b = ParamSpace::builder();
        for (i, d) in domains.into_iter().enumerate() {
            b = b.param(format!("p{i}"), d);
        }
        b.build().expect("generated domains are valid")
    })
}

/// Strategy producing an arbitrary genome of 1..=6 genes.
fn arb_genome() -> impl Strategy<Value = Genome> {
    prop::collection::vec(any::<u32>(), 1..6).prop_map(Genome::from_genes)
}

/// `Option<T>` strategy (the offline proptest stub has no `prop::option`).
fn arb_option<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: std::fmt::Debug + Clone,
{
    prop_oneof![Just(None), s.prop_map(Some)]
}

/// Strategy producing an arbitrary cache snapshot (entries may carry NaN
/// and infinities — the codec must round-trip them bit-exactly).
fn arb_cache_snapshot() -> impl Strategy<Value = CacheSnapshot> {
    (
        prop::collection::vec((arb_genome(), arb_option(any::<f64>())), 0..8),
        prop::collection::vec(arb_genome(), 0..4),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(entries, quarantined, hits, feasible_misses, infeasible_misses)| {
            CacheSnapshot { entries, quarantined, hits, feasible_misses, infeasible_misses }
        })
}

/// Strategy producing an arbitrary (structurally plausible) search state.
fn arb_state() -> impl Strategy<Value = SearchState> {
    let meta = (
        any::<u64>(),
        "[a-z-]{1,10}",
        1u32..=40,
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(a, b, c, d)| [a, b, c, d]),
    );
    let pop = (
        prop::collection::vec(arb_genome(), 1..6),
        prop::collection::vec(
            (any::<u32>(), any::<u64>(), any::<f64>(), any::<f64>(), any::<f64>()),
            0..6,
        ),
        arb_option(arb_genome()),
        any::<f64>(),
        0usize..10_000,
    );
    let extras = (
        arb_cache_snapshot(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(a, b, c, d)| [a, b, c, d]),
        prop::collection::vec(("[a-z.]{1,12}", prop::collection::vec(any::<u8>(), 0..32)), 0..3),
    );
    (meta, pop, extras).prop_map(
        |(
            (seed, run_label, generation, rng),
            (population, history, best_genome, best_value, init_attempts),
            (cache, fault_attempts, aux),
        )| {
            let history =
                history
                    .into_iter()
                    .map(|(generation, distinct_evals, best_value, mean_value, best_so_far)| {
                        GenStats { generation, distinct_evals, best_value, mean_value, best_so_far }
                    })
                    .collect();
            let faults = nautilus_ga::FaultStats {
                failed_attempts: [
                    fault_attempts[0] % 1000,
                    fault_attempts[1] % 1000,
                    fault_attempts[2] % 1000,
                    fault_attempts[3] % 1000,
                ],
                retries: fault_attempts[0] % 97,
                ..Default::default()
            };
            SearchState {
                seed,
                run_label,
                settings: GaSettings::default(),
                generation,
                rng,
                population,
                history,
                best_genome,
                best_value,
                init_attempts,
                cache,
                faults,
                aux,
            }
        },
    )
}

proptest! {
    /// Arbitrary search states (NaN fitness values, empty caches, aux
    /// blobs, ...) encode → decode to the identical state. Equality is
    /// checked on the canonical re-encoding so NaN compares bit-wise
    /// rather than by IEEE semantics.
    #[test]
    fn checkpoint_state_round_trips(state in arb_state()) {
        let record = state.encode();
        let decoded = SearchState::decode(&record).expect("intact record must decode");
        prop_assert_eq!(decoded.encode(), record);
    }
}

proptest! {
    // Each case sweeps every bit of a whole record (tens of thousands of
    // decodes), so fewer cases than default keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every single-bit corruption anywhere in a checkpoint record is
    /// detected — by magic/version/length checks or by the CRC (which
    /// catches all single-bit errors by construction). Corruption is
    /// never silently accepted.
    #[test]
    fn every_single_bit_corruption_is_detected(state in arb_state()) {
        let record = state.encode();
        for byte in 0..record.len() {
            for bit in 0..8u8 {
                let mut corrupt = record.clone();
                corrupt[byte] ^= 1 << bit;
                prop_assert!(
                    SearchState::decode(&corrupt).is_err(),
                    "flip at byte {} bit {} was silently accepted", byte, bit
                );
            }
        }
    }

    /// The evaluation cache itself survives snapshot → restore → snapshot
    /// unchanged, and a restored cache behaves identically (same stats,
    /// same memoized answers).
    #[test]
    fn cache_snapshot_restore_is_lossless(snapshot in arb_cache_snapshot()) {
        // Deduplicate keys the way a real cache would have (a HashMap
        // cannot hold two values for one genome).
        let mut seen = std::collections::HashSet::new();
        let mut canon = snapshot;
        canon.entries.retain(|(g, _)| seen.insert(g.clone()));
        canon.entries.sort_by(|a, b| a.0.genes().cmp(b.0.genes()));
        canon.quarantined.retain(|g| seen.contains(g));
        let mut qseen = std::collections::HashSet::new();
        canon.quarantined.retain(|g| qseen.insert(g.clone()));
        canon.quarantined.sort_by(|a, b| a.genes().cmp(b.genes()));

        let cache = EvalCache::restore(&canon);
        let again = cache.snapshot();
        prop_assert_eq!(again.entries.len(), canon.entries.len());
        prop_assert_eq!(again.quarantined.len(), canon.quarantined.len());
        prop_assert_eq!(again.hits, canon.hits);
        prop_assert_eq!(again.feasible_misses, canon.feasible_misses);
        prop_assert_eq!(again.infeasible_misses, canon.infeasible_misses);
        for (g, v) in &canon.entries {
            let got = cache.peek(g).expect("entry must be present");
            match (got, v) {
                (Some(a), Some(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                (None, None) => {}
                other => prop_assert!(false, "value mismatch: {:?}", other),
            }
        }
    }
}

proptest! {
    /// Every domain value round-trips through value() / index_of().
    #[test]
    fn domain_value_index_round_trip(domain in arb_domain()) {
        for i in 0..domain.cardinality() {
            let v = domain.value(i);
            prop_assert_eq!(domain.index_of(&v), Some(i));
        }
    }

    /// flat_index() and genome_at() are inverse bijections over the space.
    #[test]
    fn flat_index_bijection(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let g = space.random_genome(&mut rng);
            let idx = space.flat_index(&g);
            prop_assert!(idx < space.cardinality());
            prop_assert_eq!(space.genome_at(idx), g);
        }
    }

    /// decode() always produces values that re-encode to the same genome.
    #[test]
    fn decode_encode_round_trip(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = space.random_genome(&mut rng);
        let dp = space.decode(&g);
        let pairs: Vec<(&str, ParamValue)> =
            dp.pairs().iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let g2 = space.genome_from_values(pairs).unwrap();
        prop_assert_eq!(g2, g);
    }

    /// Mutation never leaves the space, at any rate.
    #[test]
    fn mutation_stays_in_space(
        space in arb_space(),
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops: [Box<dyn MutationOp>; 2] =
            [Box::new(UniformMutation::new(rate)), Box::new(StepMutation::new(rate, 3))];
        for op in &ops {
            let mut g = space.random_genome(&mut rng);
            for gen in 0..16 {
                op.mutate(&mut g, &space, &OpCtx::new(gen, 16), &mut rng);
                prop_assert!(space.contains(&g), "{} left the space", op.name());
            }
        }
    }

    /// Crossover children are gene-wise permutations of their parents.
    #[test]
    fn crossover_conserves_gene_pool(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.random_genome(&mut rng);
        let b = space.random_genome(&mut rng);
        let ops: [Box<dyn CrossoverOp>; 3] = [
            Box::new(OnePointCrossover),
            Box::new(TwoPointCrossover),
            Box::new(UniformCrossover::default()),
        ];
        for op in &ops {
            let (ca, cb) = op.crossover(&a, &b, &space, &OpCtx::new(0, 1), &mut rng);
            prop_assert!(space.contains(&ca));
            prop_assert!(space.contains(&cb));
            for i in 0..a.len() {
                let parents = [a.gene_at(i), b.gene_at(i)];
                let kids = [ca.gene_at(i), cb.gene_at(i)];
                prop_assert!(
                    kids == parents || kids == [parents[1], parents[0]],
                    "{} lost genes at {}", op.name(), i
                );
            }
        }
    }

    /// A full GA run is deterministic in its seed and its best_so_far curve
    /// never regresses, on an arbitrary space with an arbitrary linear
    /// fitness function.
    #[test]
    fn ga_run_invariants(space in arb_space(), seed in any::<u64>(), w in -5.0f64..5.0) {
        let fitness = FnFitness::new(Direction::Minimize, move |g: &Genome| {
            Some(g.genes().iter().enumerate().map(|(i, &v)| w * (i as f64 + 1.0) * f64::from(v)).sum())
        });
        let settings = GaSettings { generations: 12, ..GaSettings::default() };
        let engine = GaEngine::new(&space, &fitness).with_settings(settings);
        let r1 = engine.run(seed).unwrap();
        let r2 = engine.run(seed).unwrap();
        prop_assert_eq!(&r1.history, &r2.history);
        prop_assert_eq!(&r1.best_genome, &r2.best_genome);
        for pair in r1.history.windows(2) {
            prop_assert!(pair[1].best_so_far <= pair[0].best_so_far);
            prop_assert!(pair[1].distinct_evals >= pair[0].distinct_evals);
        }
        prop_assert!(space.contains(&r1.best_genome));
    }

    /// Parallel batch evaluation is an implementation detail: at 1, 2 and
    /// 8 workers (and auto), runs are bit-for-bit identical to the serial
    /// engine — same history, same best genome, same cache counters.
    #[test]
    fn batched_eval_is_worker_count_invariant(
        space in arb_space(),
        seed in any::<u64>(),
        w in -5.0f64..5.0,
    ) {
        let fitness = FnFitness::new(Direction::Minimize, move |g: &Genome| {
            let v: f64 = g.genes().iter().enumerate()
                .map(|(i, &x)| w * (i as f64 + 1.0) * f64::from(x))
                .sum();
            if v < -400.0 { None } else { Some(v) }
        });
        let base = GaSettings { generations: 8, ..GaSettings::default() };
        let serial = GaEngine::new(&space, &fitness).with_settings(base);
        let reference = match serial.run(seed) {
            Ok(run) => run,
            // Heavily infeasible spaces may fail to seed a population;
            // the parallel engines must then fail identically.
            Err(_) => {
                for workers in [2usize, 8] {
                    let settings = GaSettings { eval_workers: workers, ..base };
                    prop_assert!(
                        GaEngine::new(&space, &fitness).with_settings(settings).run(seed).is_err()
                    );
                }
                return Ok(());
            }
        };
        for workers in [0usize, 2, 8] {
            let settings = GaSettings { eval_workers: workers, ..base };
            let run = GaEngine::new(&space, &fitness)
                .with_settings(settings)
                .run(seed)
                .unwrap();
            prop_assert_eq!(&run.history, &reference.history, "workers={}", workers);
            prop_assert_eq!(&run.best_genome, &reference.best_genome);
            prop_assert_eq!(run.cache, reference.cache);
        }
    }
}
