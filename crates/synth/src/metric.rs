//! Metric catalogs and per-design metric vectors.
//!
//! A cost model characterizes every design point with a fixed set of
//! metrics — "hardware implementation metrics (e.g., area, frequency),
//! metrics specific to the IP domain (e.g., SNR values for the FFT IP)" —
//! declared once in a [`MetricCatalog`]. A [`MetricSet`] holds one value per
//! catalog entry, aligned by position.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Result, SynthError};

/// Index of a metric within a [`MetricCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetricId(pub(crate) usize);

impl MetricId {
    /// Zero-based position in the catalog.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A metric's name and unit, e.g. `("area", "LUTs")`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDef {
    name: String,
    unit: String,
}

impl MetricDef {
    /// Creates a definition.
    #[must_use]
    pub fn new(name: impl Into<String>, unit: impl Into<String>) -> Self {
        MetricDef { name: name.into(), unit: unit.into() }
    }

    /// The metric's name (used for lookups and hint books).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric's unit, for reports.
    #[must_use]
    pub fn unit(&self) -> &str {
        &self.unit
    }
}

/// The ordered set of metrics a cost model reports.
///
/// ```
/// use nautilus_synth::MetricCatalog;
/// # fn main() -> Result<(), nautilus_synth::SynthError> {
/// let catalog = MetricCatalog::new([("luts", "LUTs"), ("fmax", "MHz")])?;
/// let luts = catalog.require("luts")?;
/// assert_eq!(catalog.def(luts).unit(), "LUTs");
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "CatalogSerde", into = "CatalogSerde")]
pub struct MetricCatalog {
    defs: Vec<MetricDef>,
    by_name: HashMap<String, MetricId>,
}

#[derive(Serialize, Deserialize)]
struct CatalogSerde {
    defs: Vec<MetricDef>,
}

impl TryFrom<CatalogSerde> for MetricCatalog {
    type Error = SynthError;

    fn try_from(c: CatalogSerde) -> Result<Self> {
        MetricCatalog::from_defs(c.defs)
    }
}

impl From<MetricCatalog> for CatalogSerde {
    fn from(c: MetricCatalog) -> Self {
        CatalogSerde { defs: c.defs }
    }
}

impl MetricCatalog {
    /// Builds a catalog from `(name, unit)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::DuplicateMetric`] on repeated names.
    pub fn new<N, U>(metrics: impl IntoIterator<Item = (N, U)>) -> Result<Self>
    where
        N: Into<String>,
        U: Into<String>,
    {
        Self::from_defs(metrics.into_iter().map(|(n, u)| MetricDef::new(n, u)).collect::<Vec<_>>())
    }

    fn from_defs(defs: Vec<MetricDef>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            if by_name.insert(d.name.clone(), MetricId(i)).is_some() {
                return Err(SynthError::DuplicateMetric(d.name.clone()));
            }
        }
        Ok(MetricCatalog { defs, by_name })
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Looks a metric up by name.
    #[must_use]
    pub fn id(&self, name: &str) -> Option<MetricId> {
        self.by_name.get(name).copied()
    }

    /// Like [`MetricCatalog::id`] but returns an error naming the metric.
    pub fn require(&self, name: &str) -> Result<MetricId> {
        self.id(name).ok_or_else(|| SynthError::UnknownMetric(name.to_owned()))
    }

    /// The definition of metric `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this catalog.
    #[must_use]
    pub fn def(&self, id: MetricId) -> &MetricDef {
        &self.defs[id.0]
    }

    /// All definitions, in declaration order.
    #[must_use]
    pub fn defs(&self) -> &[MetricDef] {
        &self.defs
    }

    /// All metric ids, in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = MetricId> + '_ {
        (0..self.defs.len()).map(MetricId)
    }

    /// Builds a [`MetricSet`] validated against this catalog.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::ArityMismatch`] if `values.len() != self.len()`.
    pub fn set(&self, values: Vec<f64>) -> Result<MetricSet> {
        if values.len() != self.defs.len() {
            return Err(SynthError::ArityMismatch { got: values.len(), expected: self.defs.len() });
        }
        Ok(MetricSet { values })
    }
}

/// One value per metric of a catalog, aligned by position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSet {
    values: Vec<f64>,
}

impl MetricSet {
    /// The value of metric `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this set.
    #[must_use]
    pub fn get(&self, id: MetricId) -> f64 {
        self.values[id.0]
    }

    /// All values, in catalog order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> MetricCatalog {
        MetricCatalog::new([("luts", "LUTs"), ("fmax", "MHz"), ("power", "mW")]).unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let c = catalog();
        assert_eq!(c.len(), 3);
        let fmax = c.id("fmax").unwrap();
        assert_eq!(fmax.index(), 1);
        assert_eq!(c.def(fmax).name(), "fmax");
        assert_eq!(c.def(fmax).unit(), "MHz");
        assert_eq!(c.id("missing"), None);
        assert_eq!(c.require("missing").unwrap_err(), SynthError::UnknownMetric("missing".into()));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = MetricCatalog::new([("a", "x"), ("a", "y")]).unwrap_err();
        assert_eq!(err, SynthError::DuplicateMetric("a".into()));
    }

    #[test]
    fn set_validates_arity() {
        let c = catalog();
        let s = c.set(vec![100.0, 200.0, 5.0]).unwrap();
        assert_eq!(s.get(c.id("luts").unwrap()), 100.0);
        assert_eq!(s.get(c.id("power").unwrap()), 5.0);
        assert_eq!(s.values(), &[100.0, 200.0, 5.0]);
        assert_eq!(
            c.set(vec![1.0]).unwrap_err(),
            SynthError::ArityMismatch { got: 1, expected: 3 }
        );
    }

    #[test]
    fn ids_iterate_in_order() {
        let c = catalog();
        let names: Vec<&str> = c.ids().map(|id| c.def(id).name()).collect();
        assert_eq!(names, vec!["luts", "fmax", "power"]);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let c = catalog();
        let json = serde_json_like(&c);
        assert!(json.contains("fmax"));
    }

    // serde_json is not a dependency; exercise Serialize via the derived
    // conversion to the shadow struct instead.
    fn serde_json_like(c: &MetricCatalog) -> String {
        format!("{:?}", c.defs())
    }
}
