//! Lock-striped synthesis-result cache with a lock-free read path.
//!
//! The [`SynthJobRunner`](crate::SynthJobRunner) used to guard one big
//! `HashMap` with a single `RwLock`, which serializes every insert across
//! the whole cache. [`ShardedCache`] stripes the map across [`NUM_SHARDS`]
//! independent shards, routed by the genome's stable hash. Within a
//! shard, **reads never block**: each shard publishes an insert-only
//! open-addressing table of atomically-published entry pointers, so a
//! lookup is an acquire load of the table pointer plus a linear probe —
//! no lock, no reference counting, no waiting on writers. Writes are
//! serialized by a per-shard mutex.
//!
//! ## Snapshot-read protocol
//!
//! * A shard's current table lives behind an `AtomicPtr<Table>`. Readers
//!   acquire-load it and probe; writers (holding the shard's write mutex)
//!   release-publish individual entries into free slots.
//! * The table is insert-only — no entry is ever removed or mutated after
//!   its release-store — so a probe either finds a fully initialized
//!   entry or stops at a null slot (a *racy miss*, linearized at the load
//!   of that slot).
//! * Growth is publish-and-retire: the writer allocates a table of twice
//!   the capacity, re-slots the existing entry *pointers* (entries are
//!   individually boxed and never move), release-publishes the new table
//!   pointer, and pushes the old table onto a retired list. Readers that
//!   loaded the old pointer keep probing a complete — merely stale —
//!   table; anything published after the swap is a racy miss for them.
//! * Retired tables (and all entries, which every retired table shares
//!   with the current one) are freed only in `Drop`, so no reader can
//!   ever observe freed memory. A search caches a few thousand entries at
//!   most; retaining `log2(n)` retired slot arrays costs less than one
//!   extra copy of the map.
//!
//! A racy miss is harmless for correctness *and* accounting: the missing
//! reader proceeds to evaluate and then calls
//! [`ShardedCache::insert_or_hit`], which double-checks under the write
//! mutex and converts the duplicate into a `Lost` hit, exactly as before.
//!
//! ## Why no loom interleaving test
//!
//! `loom` is not available in this dependency set, so the snapshot-swap
//! protocol is argued above and exercised by deterministic growth tests
//! plus a multi-threaded hammer below instead of exhaustive interleaving
//! exploration. The protocol keeps the unsafe surface narrow on purpose:
//! the only orderings that matter are the release-publish of an entry (or
//! table) against the acquire-load in `probe`, and reclamation is
//! deferred to `&mut self` drop where no concurrent reader can exist.

#[cfg(test)]
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};

use nautilus_ga::Genome;
use nautilus_obs::MetricsRegistry;

use crate::job::JobStats;
use crate::metric::MetricSet;

/// Number of lock stripes. A small power of two: enough to spread the
/// handful of evaluator threads a search runs, cheap enough to merge.
pub const NUM_SHARDS: usize = 16;

/// Salt for shard routing. Fixed so the shard of a genome is stable
/// across runs (and distinct from any user-visible hashing).
const SHARD_SALT: u64 = 0x5348_4152_4421_6361; // "SHARD!ca"

/// Salt for in-shard probing. Distinct from [`SHARD_SALT`] so slot
/// indices are uncorrelated with the bits that routed the genome here.
const ENTRY_SALT: u64 = 0x4C4F_434B_4652_4545; // "LOCKFREE"

/// Slots per shard table at construction; grows by doubling.
const INITIAL_SLOTS: usize = 16;

/// Outcome of a [`ShardedCache::insert_or_hit`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The entry was inserted; this thread's evaluation won.
    Inserted,
    /// Another thread inserted the same genome first; the race loser gets
    /// the winner's cached result and the shard index where it contended.
    Lost {
        /// Cached result from the thread that won the race.
        cached: Option<MetricSet>,
        /// Index of the shard the race happened on.
        shard: u32,
    },
}

/// Per-shard counter snapshot from [`ShardedCache::shard_metrics`].
///
/// `misses` counts winning inserts (feasible jobs plus infeasible probes)
/// — the lookups this shard resolved by doing new work. Lock-wait fields
/// are zero unless [`ShardedCache::enable_lock_timing`] was called; since
/// the read path is lock-free, they count **writer** acquisitions only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard index (0..[`NUM_SHARDS`]).
    pub shard: u32,
    /// Memoized entries currently held (feasible and infeasible).
    pub entries: usize,
    /// Lookups served from this shard's map (including lost insert races).
    pub hits: u64,
    /// Winning inserts: `jobs + infeasible` for this shard.
    pub misses: u64,
    /// Insert races lost on this shard.
    pub contentions: u64,
    /// Writer-lock acquisitions measured while lock timing was enabled
    /// (reads are lock-free and never wait).
    pub lock_waits: u64,
    /// Total nanoseconds spent waiting to acquire this shard's write lock.
    pub lock_wait_nanos: u64,
    /// Longest single write-lock wait in nanoseconds.
    pub lock_wait_max_nanos: u64,
}

/// One memoized evaluation. Immutable after its release-publish; readers
/// hold `&Entry` borrows that stay valid until the cache is dropped.
struct Entry {
    hash: u64,
    genome: Genome,
    result: Option<MetricSet>,
}

/// An insert-only open-addressing table of published entry pointers.
struct Table {
    mask: usize,
    /// Entries published into this table (writer-maintained).
    len: AtomicUsize,
    slots: Box<[AtomicPtr<Entry>]>,
}

impl Table {
    fn with_capacity(cap: usize) -> Box<Table> {
        debug_assert!(cap.is_power_of_two());
        let slots: Box<[AtomicPtr<Entry>]> =
            (0..cap).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        Box::new(Table { mask: cap - 1, len: AtomicUsize::new(0), slots })
    }

    /// Lock-free probe: linear scan from the hash's home slot, stopping
    /// at the first null (insert-only tables make that a definitive
    /// "not published yet").
    fn probe(&self, hash: u64, genome: &Genome) -> Option<&Entry> {
        let mut i = (hash as usize) & self.mask;
        loop {
            let p = self.slots[i].load(Ordering::Acquire);
            if p.is_null() {
                return None;
            }
            // SAFETY: a non-null slot was release-published after the
            // entry was fully initialized, and entries are only freed in
            // `ShardedCache::drop` (which requires exclusive access).
            let e = unsafe { &*p };
            if e.hash == hash && e.genome == *genome {
                return Some(e);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Writer-only (callers hold the shard write mutex): publish `entry`
    /// into the first free slot of its probe sequence.
    fn place(&self, entry: *mut Entry) {
        // SAFETY: `entry` is a valid, initialized allocation owned by the
        // table from this point on.
        let hash = unsafe { &*entry }.hash;
        let mut i = (hash as usize) & self.mask;
        loop {
            if self.slots[i].load(Ordering::Relaxed).is_null() {
                self.slots[i].store(entry, Ordering::Release);
                return;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Raw retired-table pointer, held until `Drop`. Send so the owning
/// mutex (and thus the shard) stays Send; the pointee is never touched
/// again until reclamation.
struct TablePtr(*mut Table);
// SAFETY: the pointer is only dereferenced in `Shard::drop`, with
// exclusive access.
unsafe impl Send for TablePtr {}

struct Shard {
    /// Current published table. Readers acquire-load and probe without
    /// any lock; writers swap it on growth under `write`.
    table: AtomicPtr<Table>,
    /// Serializes all mutation; owns the retired-table list.
    write: Mutex<Vec<TablePtr>>,
    jobs: AtomicU64,
    infeasible: AtomicU64,
    cache_hits: AtomicU64,
    tool_secs: AtomicU64,
    contentions: AtomicU64,
    lock_waits: AtomicU64,
    lock_wait_nanos: AtomicU64,
    lock_wait_max: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            table: AtomicPtr::new(Box::into_raw(Table::with_capacity(INITIAL_SLOTS))),
            write: Mutex::new(Vec::new()),
            jobs: AtomicU64::new(0),
            infeasible: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            tool_secs: AtomicU64::new(0),
            contentions: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            lock_wait_nanos: AtomicU64::new(0),
            lock_wait_max: AtomicU64::new(0),
        }
    }

    /// The currently published table.
    fn current(&self) -> &Table {
        // SAFETY: the pointer is always a valid table; tables are only
        // freed in `drop`, which cannot run while `&self` exists.
        unsafe { &*self.table.load(Ordering::Acquire) }
    }

    fn charge_wait(&self, start: Instant) {
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.lock_wait_max.fetch_max(nanos, Ordering::Relaxed);
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // Deferred reclamation happens here, with exclusive access: free
        // every entry exactly once via the current table (retired tables
        // re-slotted the same pointers), then every table allocation.
        let table = *self.table.get_mut();
        // SAFETY: `table` is the valid current table; `&mut self` means
        // no reader exists.
        let table = unsafe { Box::from_raw(table) };
        for slot in table.slots.iter() {
            let p = slot.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: each entry pointer appears exactly once per
                // table and is freed only from the current table.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        for TablePtr(p) in self.write.get_mut().drain(..) {
            // SAFETY: retired tables are never touched after being
            // swapped out; their entries were freed above.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// A genome-keyed result map striped over [`NUM_SHARDS`] shards with
/// lock-free reads, per-shard serialized writes, and per-shard
/// [`JobStats`] counters.
pub struct ShardedCache {
    shards: Vec<Shard>,
    /// When set, every write-lock acquisition is timed and charged to its
    /// shard's lock-wait counters. Off by default: the untimed path costs
    /// one relaxed load. Reads are lock-free and never charged.
    time_locks: AtomicBool,
}

impl ShardedCache {
    /// Creates an empty cache with all shards allocated.
    #[must_use]
    pub fn new() -> ShardedCache {
        ShardedCache {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            time_locks: AtomicBool::new(false),
        }
    }

    /// Turns on per-shard write-lock wait timing (used when a run is
    /// traced, to attribute contention to the `shard_lock_wait` phase).
    pub fn enable_lock_timing(&self) {
        self.time_locks.store(true, Ordering::Relaxed);
    }

    /// Whether write-lock acquisitions are currently being timed.
    #[must_use]
    pub fn lock_timing_enabled(&self) -> bool {
        self.time_locks.load(Ordering::Relaxed)
    }

    fn lock_writer<'s>(&self, shard: &'s Shard) -> MutexGuard<'s, Vec<TablePtr>> {
        if !self.time_locks.load(Ordering::Relaxed) {
            return shard.write.lock();
        }
        let start = Instant::now();
        let guard = shard.write.lock();
        shard.charge_wait(start);
        guard
    }

    fn shard_of(&self, genome: &Genome) -> (usize, &Shard) {
        let idx = (genome.stable_hash(SHARD_SALT) as usize) & (NUM_SHARDS - 1);
        (idx, &self.shards[idx])
    }

    /// Looks `genome` up without taking any lock; on a hit the shard's
    /// `cache_hits` counter is charged and the cached result cloned out.
    ///
    /// A concurrent insert of the same genome may or may not be visible —
    /// a miss here is linearized at the probe's null-slot load, and the
    /// follow-up [`insert_or_hit`](ShardedCache::insert_or_hit)
    /// double-checks under the write lock, so the accounting identity is
    /// unaffected by the race.
    #[must_use]
    pub fn lookup(&self, genome: &Genome) -> Option<Option<MetricSet>> {
        let (_, shard) = self.shard_of(genome);
        let hash = genome.stable_hash(ENTRY_SALT);
        let hit = shard.current().probe(hash, genome).map(|e| e.result.clone());
        if hit.is_some() {
            shard.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Inserts an evaluated result, double-checking for a concurrent
    /// insert under the shard's write lock.
    ///
    /// On the winning path the shard's job counters are charged
    /// (`jobs` + `tool_secs` for feasible results, `infeasible` otherwise).
    /// A lost race is charged as a cache hit — the lookup *was* served
    /// from another thread's work — plus one contention tick.
    ///
    /// # Accounting identity
    ///
    /// Every resolve operation (a [`lookup`](ShardedCache::lookup) that
    /// hits, or the `insert_or_hit` that follows a miss) charges exactly
    /// one of `jobs`, `infeasible`, or `cache_hits` — never zero, never
    /// two. So for any interleaving of concurrent resolvers:
    ///
    /// ```text
    /// jobs + infeasible + cache_hits == total resolve operations
    /// jobs + infeasible             == distinct genomes (== len())
    /// contentions                   <= cache_hits
    /// ```
    ///
    /// `contentions` is a *diagnostic subcount* of `cache_hits`: it ticks
    /// only when a racer reached `insert_or_hit` after doing redundant
    /// evaluation work (both threads saw a lookup miss), not on ordinary
    /// read-path hits. The `Lost` outcome is therefore never "lost work
    /// dropped on the floor" — the loser's resolve is fully accounted as a
    /// hit, and the contention tick measures how much duplicate tool time
    /// the race cost on top.
    pub fn insert_or_hit(
        &self,
        genome: &Genome,
        result: &Option<MetricSet>,
        tool_secs: u64,
    ) -> InsertOutcome {
        let (idx, shard) = self.shard_of(genome);
        let hash = genome.stable_hash(ENTRY_SALT);
        let mut retired = self.lock_writer(shard);
        // Double-check under the writer lock: this is what linearizes a
        // racy read-path miss into a Lost hit.
        let table = shard.current();
        if let Some(e) = table.probe(hash, genome) {
            let cached = e.result.clone();
            drop(retired);
            shard.cache_hits.fetch_add(1, Ordering::Relaxed);
            shard.contentions.fetch_add(1, Ordering::Relaxed);
            return InsertOutcome::Lost { cached, shard: idx as u32 };
        }
        // Grow at 50% occupancy so probes stay short. Entry pointers are
        // re-slotted (entries never move); the old table is retired, not
        // freed — concurrent readers may still be probing it.
        let len = table.len.load(Ordering::Relaxed);
        let table = if (len + 1) * 2 > table.slots.len() {
            let new = Table::with_capacity(table.slots.len() * 2);
            for slot in table.slots.iter() {
                let p = slot.load(Ordering::Relaxed);
                if !p.is_null() {
                    new.place(p);
                }
            }
            new.len.store(len, Ordering::Relaxed);
            let new_ptr = Box::into_raw(new);
            let old = shard.table.swap(new_ptr, Ordering::AcqRel);
            retired.push(TablePtr(old));
            // SAFETY: just published; freed only in drop.
            unsafe { &*new_ptr }
        } else {
            table
        };
        let entry =
            Box::into_raw(Box::new(Entry { hash, genome: genome.clone(), result: result.clone() }));
        table.place(entry);
        table.len.fetch_add(1, Ordering::Relaxed);
        drop(retired);
        match result {
            Some(_) => {
                shard.jobs.fetch_add(1, Ordering::Relaxed);
                shard.tool_secs.fetch_add(tool_secs, Ordering::Relaxed);
            }
            None => {
                shard.infeasible.fetch_add(1, Ordering::Relaxed);
            }
        }
        InsertOutcome::Inserted
    }

    /// Merged counter snapshot across all shards.
    #[must_use]
    pub fn stats(&self) -> JobStats {
        let mut s = JobStats::default();
        for shard in &self.shards {
            s.jobs += shard.jobs.load(Ordering::Relaxed);
            s.infeasible += shard.infeasible.load(Ordering::Relaxed);
            s.cache_hits += shard.cache_hits.load(Ordering::Relaxed);
            s.simulated_tool_secs += shard.tool_secs.load(Ordering::Relaxed);
        }
        s
    }

    /// Total insert races lost across all shards.
    #[must_use]
    pub fn contentions(&self) -> u64 {
        self.shards.iter().map(|s| s.contentions.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard counter snapshot, one entry per shard in index order.
    #[must_use]
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardMetrics {
                shard: i as u32,
                entries: s.current().len.load(Ordering::Relaxed),
                hits: s.cache_hits.load(Ordering::Relaxed),
                misses: s.jobs.load(Ordering::Relaxed) + s.infeasible.load(Ordering::Relaxed),
                contentions: s.contentions.load(Ordering::Relaxed),
                lock_waits: s.lock_waits.load(Ordering::Relaxed),
                lock_wait_nanos: s.lock_wait_nanos.load(Ordering::Relaxed),
                lock_wait_max_nanos: s.lock_wait_max.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Whole-cache lock-wait aggregate: `(waits, total_nanos, max_nanos)`.
    /// All zero unless [`ShardedCache::enable_lock_timing`] was called;
    /// counts writer acquisitions only (reads never wait).
    #[must_use]
    pub fn lock_wait_totals(&self) -> (u64, u64, u64) {
        let mut waits = 0;
        let mut total = 0;
        let mut max = 0;
        for s in &self.shards {
            waits += s.lock_waits.load(Ordering::Relaxed);
            total += s.lock_wait_nanos.load(Ordering::Relaxed);
            max = max.max(s.lock_wait_max.load(Ordering::Relaxed));
        }
        (waits, total, max)
    }

    /// Publishes every shard's occupancy and hit/miss/contention counters
    /// as gauges on `registry` (`cache.shard<i>.entries`, `.hits`,
    /// `.misses`, `.contentions`, `.lock_wait_nanos`).
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        for m in self.shard_metrics() {
            let prefix = format!("cache.shard{}", m.shard);
            registry.gauge(&format!("{prefix}.entries")).set(m.entries as f64);
            registry.gauge(&format!("{prefix}.hits")).set(m.hits as f64);
            registry.gauge(&format!("{prefix}.misses")).set(m.misses as f64);
            registry.gauge(&format!("{prefix}.contentions")).set(m.contentions as f64);
            registry.gauge(&format!("{prefix}.lock_wait_nanos")).set(m.lock_wait_nanos as f64);
        }
    }

    /// Total memoized entries (feasible and infeasible) across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.current().len.load(Ordering::Relaxed)).sum()
    }

    /// Whether no entry has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the cache into a plain map (test/diagnostic helper).
    #[cfg(test)]
    fn to_map(&self) -> HashMap<Genome, Option<MetricSet>> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            let table = shard.current();
            for slot in table.slots.iter() {
                let p = slot.load(Ordering::Acquire);
                if !p.is_null() {
                    // SAFETY: published entries are valid until drop.
                    let e = unsafe { &*p };
                    out.insert(e.genome.clone(), e.result.clone());
                }
            }
        }
        out
    }
}

// Keep the public type's auto traits explicit: the raw pointers inside
// are owned by the cache and synchronized as documented above.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedCache>();
};

impl Default for ShardedCache {
    fn default() -> Self {
        ShardedCache::new()
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &NUM_SHARDS)
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .field("contentions", &self.contentions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricCatalog;

    fn metrics(v: f64) -> MetricSet {
        MetricCatalog::new([("v", "")]).unwrap().set(vec![v]).unwrap()
    }

    #[test]
    fn shard_count_is_a_power_of_two() {
        assert!(NUM_SHARDS.is_power_of_two(), "mask routing requires a power of two");
    }

    #[test]
    fn lookup_miss_then_insert_then_hit() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![1, 2, 3]);
        assert_eq!(cache.lookup(&g), None);
        assert_eq!(cache.insert_or_hit(&g, &Some(metrics(4.0)), 120), InsertOutcome::Inserted);
        assert_eq!(cache.lookup(&g), Some(Some(metrics(4.0))));
        let s = cache.stats();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.simulated_tool_secs, 120);
        assert_eq!(cache.contentions(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn infeasible_insert_charges_no_tool_time() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![9]);
        assert_eq!(cache.insert_or_hit(&g, &None, 0), InsertOutcome::Inserted);
        let s = cache.stats();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.infeasible, 1);
        assert_eq!(s.simulated_tool_secs, 0);
        assert_eq!(cache.lookup(&g), Some(None), "infeasible is memoized, not a miss");
    }

    #[test]
    fn lost_race_counts_as_hit_and_contention() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![5, 5]);
        assert_eq!(cache.insert_or_hit(&g, &Some(metrics(1.0)), 60), InsertOutcome::Inserted);
        // A second insert of the same genome models the losing thread.
        match cache.insert_or_hit(&g, &Some(metrics(2.0)), 60) {
            InsertOutcome::Lost { cached, shard } => {
                assert_eq!(cached, Some(metrics(1.0)), "loser sees the winner's result");
                assert!((shard as usize) < NUM_SHARDS);
            }
            InsertOutcome::Inserted => panic!("duplicate insert must lose"),
        }
        let s = cache.stats();
        assert_eq!(s.jobs, 1, "only the winner's job is charged");
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.simulated_tool_secs, 60);
        assert_eq!(cache.contentions(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn growth_republishes_every_entry_and_retires_old_tables() {
        // Force many growths in every shard and verify no entry is lost
        // or corrupted across republishes: after each insert, all earlier
        // entries must still resolve to their exact original values.
        let cache = ShardedCache::new();
        let n = 512u32;
        for x in 0..n {
            let g = Genome::from_genes(vec![x, x ^ 0x2A]);
            let result = (!x.is_multiple_of(5)).then(|| metrics(f64::from(x) * 0.5));
            assert_eq!(cache.insert_or_hit(&g, &result, 1), InsertOutcome::Inserted);
            // Spot-check a sliding window of earlier inserts (checking
            // all 512 each round would be quadratic for no extra value).
            let lo = x.saturating_sub(40);
            for y in lo..=x {
                let old = Genome::from_genes(vec![y, y ^ 0x2A]);
                let expect = (!y.is_multiple_of(5)).then(|| metrics(f64::from(y) * 0.5));
                assert_eq!(cache.lookup(&old), Some(expect), "entry {y} lost after insert {x}");
            }
        }
        assert_eq!(cache.len(), n as usize);
        assert_eq!(cache.to_map().len(), n as usize);
        let s = cache.stats();
        assert_eq!(s.jobs + s.infeasible, u64::from(n));
    }

    #[test]
    fn eight_thread_hammer_preserves_exact_accounting_identity() {
        // 8 threads race over a deliberately tiny genome universe so both
        // read-path hits and lost-insert races are frequent. No operation
        // may be double-counted or dropped: every resolve charges exactly
        // one of jobs / infeasible / cache_hits.
        use std::sync::{Arc, Barrier};

        const THREADS: usize = 8;
        const OPS_PER_THREAD: usize = 400;
        const UNIVERSE: u32 = 24;

        let cache = Arc::new(ShardedCache::new());
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..OPS_PER_THREAD {
                        // Deterministic per-thread walk over the universe.
                        let x = ((t * 7 + i * 13) as u32) % UNIVERSE;
                        let g = Genome::from_genes(vec![x, x + 1]);
                        if cache.lookup(&g).is_some() {
                            continue; // resolved via read-path hit
                        }
                        // Miss: "evaluate" (odd genes are infeasible) and
                        // publish, possibly losing the race to a peer.
                        let result = x.is_multiple_of(2).then(|| metrics(f64::from(x)));
                        let _ = cache.insert_or_hit(&g, &result, 10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let s = cache.stats();
        let total_ops = (THREADS * OPS_PER_THREAD) as u64;
        assert_eq!(
            s.jobs + s.infeasible + s.cache_hits,
            total_ops,
            "every resolve must charge exactly one counter: {s:?}"
        );
        assert_eq!(
            s.jobs + s.infeasible,
            cache.len() as u64,
            "winning inserts must equal distinct cached genomes"
        );
        assert_eq!(cache.len() as u32, UNIVERSE, "all universe points resolved");
        assert_eq!(s.jobs, u64::from(UNIVERSE / 2), "even genes are feasible");
        assert_eq!(s.infeasible, u64::from(UNIVERSE.div_ceil(2)));
        assert!(
            cache.contentions() <= s.cache_hits,
            "contentions ({}) is a subcount of cache_hits ({})",
            cache.contentions(),
            s.cache_hits
        );
        assert_eq!(s.simulated_tool_secs, u64::from(UNIVERSE / 2) * 10);
    }

    #[test]
    fn lockfree_readers_hammer_against_racing_inserts_without_torn_reads() {
        // 4 pure reader threads spin lock-free lookups across the whole
        // key range while 4 writer threads insert and grow tables
        // underneath them. Every hit a reader observes must carry the
        // exact value the key was inserted with (no torn or stale-entry
        // reads), and the final counters must reconcile exactly:
        // hits charged == hits observed, wins == distinct keys.
        use std::sync::{Arc, Barrier};

        const READERS: usize = 4;
        const WRITERS: usize = 4;
        const KEYS: u32 = 600; // forces several growths per shard
        const READER_SWEEPS: usize = 40;

        fn value_of(x: u32) -> Option<MetricSet> {
            (!x.is_multiple_of(7)).then(|| metrics(f64::from(x) * 3.0 + 0.25))
        }

        let cache = Arc::new(ShardedCache::new());
        let barrier = Arc::new(Barrier::new(READERS + WRITERS));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let mut resolves = 0u64;
                // Writers cover overlapping striped ranges so insert
                // races actually happen.
                for i in 0..KEYS {
                    let x = (i + (w as u32) * 151) % KEYS;
                    let g = Genome::from_genes(vec![x, x.rotate_left(3)]);
                    if cache.lookup(&g).is_some() {
                        resolves += 1;
                        continue;
                    }
                    match cache.insert_or_hit(&g, &value_of(x), 2) {
                        InsertOutcome::Inserted => resolves += 1,
                        InsertOutcome::Lost { cached, .. } => {
                            assert_eq!(cached, value_of(x), "lost race returned wrong value");
                            resolves += 1;
                        }
                    }
                }
                resolves
            }));
        }
        let mut reader_handles = Vec::new();
        for _ in 0..READERS {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            reader_handles.push(std::thread::spawn(move || {
                barrier.wait();
                let mut hits = 0u64;
                for _ in 0..READER_SWEEPS {
                    for x in 0..KEYS {
                        let g = Genome::from_genes(vec![x, x.rotate_left(3)]);
                        if let Some(cached) = cache.lookup(&g) {
                            assert_eq!(cached, value_of(x), "torn or stale read for key {x}");
                            hits += 1;
                        }
                    }
                }
                hits
            }));
        }
        let writer_resolves: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let reader_hits: u64 = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();

        let s = cache.stats();
        assert_eq!(cache.len() as u32, KEYS, "every key resolved exactly once");
        assert_eq!(s.jobs + s.infeasible, u64::from(KEYS));
        assert_eq!(
            s.jobs + s.infeasible + s.cache_hits,
            writer_resolves + reader_hits,
            "charged counters must reconcile with observed operations"
        );
        assert!(cache.contentions() <= s.cache_hits);
        // Post-race, the full map must be exactly the expected function.
        let map = cache.to_map();
        assert_eq!(map.len() as u32, KEYS);
        for (g, v) in map {
            assert_eq!(v, value_of(g.gene_at(0)));
        }
    }

    #[test]
    fn shard_metrics_reconcile_with_merged_stats() {
        let cache = ShardedCache::new();
        for x in 0..40u32 {
            let g = Genome::from_genes(vec![x, x % 3]);
            let result = x.is_multiple_of(2).then(|| metrics(f64::from(x)));
            cache.insert_or_hit(&g, &result, 5);
        }
        for x in 0..10u32 {
            let g = Genome::from_genes(vec![x, x % 3]);
            let _ = cache.lookup(&g);
        }
        let per = cache.shard_metrics();
        assert_eq!(per.len(), NUM_SHARDS);
        assert!(per.iter().enumerate().all(|(i, m)| m.shard as usize == i));
        let s = cache.stats();
        assert_eq!(per.iter().map(|m| m.entries).sum::<usize>(), cache.len());
        assert_eq!(per.iter().map(|m| m.hits).sum::<u64>(), s.cache_hits);
        assert_eq!(per.iter().map(|m| m.misses).sum::<u64>(), s.jobs + s.infeasible);
        assert_eq!(per.iter().map(|m| m.contentions).sum::<u64>(), cache.contentions());
        assert!(per.iter().all(|m| m.lock_waits == 0), "lock timing is off by default");
    }

    #[test]
    fn lock_timing_is_gated_and_counts_writer_acquisitions_only() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![1, 2]);
        cache.insert_or_hit(&g, &Some(metrics(1.0)), 1);
        let _ = cache.lookup(&g);
        assert!(!cache.lock_timing_enabled());
        assert_eq!(cache.lock_wait_totals(), (0, 0, 0), "no timing before enablement");

        cache.enable_lock_timing();
        assert!(cache.lock_timing_enabled());
        let _ = cache.lookup(&g); // lock-free: acquires nothing, charges nothing
        cache.insert_or_hit(&g, &Some(metrics(1.0)), 1); // one timed write acquisition
        let (waits, total, max) = cache.lock_wait_totals();
        assert_eq!(waits, 1, "reads are lock-free; only the writer acquisition is timed");
        assert!(total >= max);
        let per_shard_waits: u64 = cache.shard_metrics().iter().map(|m| m.lock_waits).sum();
        assert_eq!(per_shard_waits, waits);
    }

    #[test]
    fn publish_metrics_exports_per_shard_gauges() {
        let cache = ShardedCache::new();
        let a = Genome::from_genes(vec![3, 4]);
        let b = Genome::from_genes(vec![5, 6]);
        cache.insert_or_hit(&a, &Some(metrics(2.0)), 1);
        cache.insert_or_hit(&b, &None, 0);
        let _ = cache.lookup(&a);
        let registry = MetricsRegistry::new();
        cache.publish_metrics(&registry);
        let sum = |field: &str| -> f64 {
            (0..NUM_SHARDS).map(|i| registry.gauge(&format!("cache.shard{i}.{field}")).get()).sum()
        };
        assert!((sum("entries") - 2.0).abs() < 1e-9);
        assert!((sum("hits") - 1.0).abs() < 1e-9);
        assert!((sum("misses") - 2.0).abs() < 1e-9);
        assert!((sum("contentions") - 0.0).abs() < 1e-9);
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = ShardedCache::new();
        for x in 0..64u32 {
            let g = Genome::from_genes(vec![x, x / 2]);
            cache.insert_or_hit(&g, &None, 0);
        }
        assert_eq!(cache.len(), 64);
        let populated = cache.shard_metrics().iter().filter(|m| m.entries > 0).count();
        assert!(populated > NUM_SHARDS / 2, "only {populated} shards populated");
    }
}
