//! Lock-striped synthesis-result cache.
//!
//! The [`SynthJobRunner`](crate::SynthJobRunner) used to guard one big
//! `HashMap` with a single `RwLock`, which serializes every insert across
//! the whole cache. [`ShardedCache`] stripes the map across [`NUM_SHARDS`]
//! independently locked shards, routed by the genome's stable hash, so
//! concurrent evaluators only contend when they touch the *same* stripe.
//! Each shard keeps its own atomic counters; [`ShardedCache::stats`] merges
//! them into the same [`JobStats`] snapshot callers always saw.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use nautilus_ga::Genome;
use nautilus_obs::MetricsRegistry;

use crate::job::JobStats;
use crate::metric::MetricSet;

/// Number of lock stripes. A small power of two: enough to spread the
/// handful of evaluator threads a search runs, cheap enough to merge.
pub const NUM_SHARDS: usize = 16;

/// Salt for shard routing. Fixed so the shard of a genome is stable
/// across runs (and distinct from any user-visible hashing).
const SHARD_SALT: u64 = 0x5348_4152_4421_6361; // "SHARD!ca"

/// Outcome of a [`ShardedCache::insert_or_hit`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The entry was inserted; this thread's evaluation won.
    Inserted,
    /// Another thread inserted the same genome first; the race loser gets
    /// the winner's cached result and the shard index where it contended.
    Lost {
        /// Cached result from the thread that won the race.
        cached: Option<MetricSet>,
        /// Index of the shard the race happened on.
        shard: u32,
    },
}

/// Per-shard counter snapshot from [`ShardedCache::shard_metrics`].
///
/// `misses` counts winning inserts (feasible jobs plus infeasible probes)
/// — the lookups this shard resolved by doing new work. Lock-wait fields
/// are zero unless [`ShardedCache::enable_lock_timing`] was called.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard index (0..[`NUM_SHARDS`]).
    pub shard: u32,
    /// Memoized entries currently held (feasible and infeasible).
    pub entries: usize,
    /// Lookups served from this shard's map (including lost insert races).
    pub hits: u64,
    /// Winning inserts: `jobs + infeasible` for this shard.
    pub misses: u64,
    /// Insert races lost on this shard.
    pub contentions: u64,
    /// Lock acquisitions measured while lock timing was enabled.
    pub lock_waits: u64,
    /// Total nanoseconds spent waiting to acquire this shard's lock.
    pub lock_wait_nanos: u64,
    /// Longest single lock wait in nanoseconds.
    pub lock_wait_max_nanos: u64,
}

struct Shard {
    map: RwLock<HashMap<Genome, Option<MetricSet>>>,
    jobs: AtomicU64,
    infeasible: AtomicU64,
    cache_hits: AtomicU64,
    tool_secs: AtomicU64,
    contentions: AtomicU64,
    lock_waits: AtomicU64,
    lock_wait_nanos: AtomicU64,
    lock_wait_max: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: RwLock::new(HashMap::new()),
            jobs: AtomicU64::new(0),
            infeasible: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            tool_secs: AtomicU64::new(0),
            contentions: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            lock_wait_nanos: AtomicU64::new(0),
            lock_wait_max: AtomicU64::new(0),
        }
    }

    fn charge_wait(&self, start: Instant) {
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.lock_wait_max.fetch_max(nanos, Ordering::Relaxed);
    }
}

/// A `HashMap<Genome, Option<MetricSet>>` striped over [`NUM_SHARDS`]
/// independently locked shards, with per-shard [`JobStats`] counters.
pub struct ShardedCache {
    shards: Vec<Shard>,
    /// When set, every lock acquisition is timed and charged to its
    /// shard's lock-wait counters. Off by default: the untimed path costs
    /// one relaxed load.
    time_locks: AtomicBool,
}

impl ShardedCache {
    /// Creates an empty cache with all shards allocated.
    #[must_use]
    pub fn new() -> ShardedCache {
        ShardedCache {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            time_locks: AtomicBool::new(false),
        }
    }

    /// Turns on per-shard lock-wait timing (used when a run is traced, to
    /// attribute contention to the `shard_lock_wait` phase).
    pub fn enable_lock_timing(&self) {
        self.time_locks.store(true, Ordering::Relaxed);
    }

    /// Whether lock acquisitions are currently being timed.
    #[must_use]
    pub fn lock_timing_enabled(&self) -> bool {
        self.time_locks.load(Ordering::Relaxed)
    }

    fn read_shard<'s>(
        &self,
        shard: &'s Shard,
    ) -> RwLockReadGuard<'s, HashMap<Genome, Option<MetricSet>>> {
        if !self.time_locks.load(Ordering::Relaxed) {
            return shard.map.read();
        }
        let start = Instant::now();
        let guard = shard.map.read();
        shard.charge_wait(start);
        guard
    }

    fn write_shard<'s>(
        &self,
        shard: &'s Shard,
    ) -> RwLockWriteGuard<'s, HashMap<Genome, Option<MetricSet>>> {
        if !self.time_locks.load(Ordering::Relaxed) {
            return shard.map.write();
        }
        let start = Instant::now();
        let guard = shard.map.write();
        shard.charge_wait(start);
        guard
    }

    fn shard_of(&self, genome: &Genome) -> (usize, &Shard) {
        let idx = (genome.stable_hash(SHARD_SALT) as usize) & (NUM_SHARDS - 1);
        (idx, &self.shards[idx])
    }

    /// Looks `genome` up; on a hit the shard's `cache_hits` counter is
    /// charged and the cached result cloned out.
    #[must_use]
    pub fn lookup(&self, genome: &Genome) -> Option<Option<MetricSet>> {
        let (_, shard) = self.shard_of(genome);
        let hit = self.read_shard(shard).get(genome).cloned();
        if hit.is_some() {
            shard.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Inserts an evaluated result, double-checking for a concurrent
    /// insert under the write lock.
    ///
    /// On the winning path the shard's job counters are charged
    /// (`jobs` + `tool_secs` for feasible results, `infeasible` otherwise).
    /// A lost race is charged as a cache hit — the lookup *was* served
    /// from another thread's work — plus one contention tick.
    ///
    /// # Accounting identity
    ///
    /// Every resolve operation (a [`lookup`](ShardedCache::lookup) that
    /// hits, or the `insert_or_hit` that follows a miss) charges exactly
    /// one of `jobs`, `infeasible`, or `cache_hits` — never zero, never
    /// two. So for any interleaving of concurrent resolvers:
    ///
    /// ```text
    /// jobs + infeasible + cache_hits == total resolve operations
    /// jobs + infeasible             == distinct genomes (== len())
    /// contentions                   <= cache_hits
    /// ```
    ///
    /// `contentions` is a *diagnostic subcount* of `cache_hits`: it ticks
    /// only when a racer reached `insert_or_hit` after doing redundant
    /// evaluation work (both threads saw a lookup miss), not on ordinary
    /// read-path hits. The `Lost` outcome is therefore never "lost work
    /// dropped on the floor" — the loser's resolve is fully accounted as a
    /// hit, and the contention tick measures how much duplicate tool time
    /// the race cost on top.
    pub fn insert_or_hit(
        &self,
        genome: &Genome,
        result: &Option<MetricSet>,
        tool_secs: u64,
    ) -> InsertOutcome {
        let (idx, shard) = self.shard_of(genome);
        let mut map = self.write_shard(shard);
        if let Some(cached) = map.get(genome) {
            let cached = cached.clone();
            drop(map);
            shard.cache_hits.fetch_add(1, Ordering::Relaxed);
            shard.contentions.fetch_add(1, Ordering::Relaxed);
            return InsertOutcome::Lost { cached, shard: idx as u32 };
        }
        map.insert(genome.clone(), result.clone());
        drop(map);
        match result {
            Some(_) => {
                shard.jobs.fetch_add(1, Ordering::Relaxed);
                shard.tool_secs.fetch_add(tool_secs, Ordering::Relaxed);
            }
            None => {
                shard.infeasible.fetch_add(1, Ordering::Relaxed);
            }
        }
        InsertOutcome::Inserted
    }

    /// Merged counter snapshot across all shards.
    #[must_use]
    pub fn stats(&self) -> JobStats {
        let mut s = JobStats::default();
        for shard in &self.shards {
            s.jobs += shard.jobs.load(Ordering::Relaxed);
            s.infeasible += shard.infeasible.load(Ordering::Relaxed);
            s.cache_hits += shard.cache_hits.load(Ordering::Relaxed);
            s.simulated_tool_secs += shard.tool_secs.load(Ordering::Relaxed);
        }
        s
    }

    /// Total insert races lost across all shards.
    #[must_use]
    pub fn contentions(&self) -> u64 {
        self.shards.iter().map(|s| s.contentions.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard counter snapshot, one entry per shard in index order.
    #[must_use]
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardMetrics {
                shard: i as u32,
                entries: s.map.read().len(),
                hits: s.cache_hits.load(Ordering::Relaxed),
                misses: s.jobs.load(Ordering::Relaxed) + s.infeasible.load(Ordering::Relaxed),
                contentions: s.contentions.load(Ordering::Relaxed),
                lock_waits: s.lock_waits.load(Ordering::Relaxed),
                lock_wait_nanos: s.lock_wait_nanos.load(Ordering::Relaxed),
                lock_wait_max_nanos: s.lock_wait_max.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Whole-cache lock-wait aggregate: `(waits, total_nanos, max_nanos)`.
    /// All zero unless [`ShardedCache::enable_lock_timing`] was called.
    #[must_use]
    pub fn lock_wait_totals(&self) -> (u64, u64, u64) {
        let mut waits = 0;
        let mut total = 0;
        let mut max = 0;
        for s in &self.shards {
            waits += s.lock_waits.load(Ordering::Relaxed);
            total += s.lock_wait_nanos.load(Ordering::Relaxed);
            max = max.max(s.lock_wait_max.load(Ordering::Relaxed));
        }
        (waits, total, max)
    }

    /// Publishes every shard's occupancy and hit/miss/contention counters
    /// as gauges on `registry` (`cache.shard<i>.entries`, `.hits`,
    /// `.misses`, `.contentions`, `.lock_wait_nanos`).
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        for m in self.shard_metrics() {
            let prefix = format!("cache.shard{}", m.shard);
            registry.gauge(&format!("{prefix}.entries")).set(m.entries as f64);
            registry.gauge(&format!("{prefix}.hits")).set(m.hits as f64);
            registry.gauge(&format!("{prefix}.misses")).set(m.misses as f64);
            registry.gauge(&format!("{prefix}.contentions")).set(m.contentions as f64);
            registry.gauge(&format!("{prefix}.lock_wait_nanos")).set(m.lock_wait_nanos as f64);
        }
    }

    /// Total memoized entries (feasible and infeasible) across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.read().len()).sum()
    }

    /// Whether no entry has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ShardedCache {
    fn default() -> Self {
        ShardedCache::new()
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &NUM_SHARDS)
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .field("contentions", &self.contentions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricCatalog;

    fn metrics(v: f64) -> MetricSet {
        MetricCatalog::new([("v", "")]).unwrap().set(vec![v]).unwrap()
    }

    #[test]
    fn shard_count_is_a_power_of_two() {
        assert!(NUM_SHARDS.is_power_of_two(), "mask routing requires a power of two");
    }

    #[test]
    fn lookup_miss_then_insert_then_hit() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![1, 2, 3]);
        assert_eq!(cache.lookup(&g), None);
        assert_eq!(cache.insert_or_hit(&g, &Some(metrics(4.0)), 120), InsertOutcome::Inserted);
        assert_eq!(cache.lookup(&g), Some(Some(metrics(4.0))));
        let s = cache.stats();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.simulated_tool_secs, 120);
        assert_eq!(cache.contentions(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn infeasible_insert_charges_no_tool_time() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![9]);
        assert_eq!(cache.insert_or_hit(&g, &None, 0), InsertOutcome::Inserted);
        let s = cache.stats();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.infeasible, 1);
        assert_eq!(s.simulated_tool_secs, 0);
    }

    #[test]
    fn lost_race_counts_as_hit_and_contention() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![5, 5]);
        assert_eq!(cache.insert_or_hit(&g, &Some(metrics(1.0)), 60), InsertOutcome::Inserted);
        // A second insert of the same genome models the losing thread.
        match cache.insert_or_hit(&g, &Some(metrics(2.0)), 60) {
            InsertOutcome::Lost { cached, shard } => {
                assert_eq!(cached, Some(metrics(1.0)), "loser sees the winner's result");
                assert!((shard as usize) < NUM_SHARDS);
            }
            InsertOutcome::Inserted => panic!("duplicate insert must lose"),
        }
        let s = cache.stats();
        assert_eq!(s.jobs, 1, "only the winner's job is charged");
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.simulated_tool_secs, 60);
        assert_eq!(cache.contentions(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eight_thread_hammer_preserves_exact_accounting_identity() {
        // 8 threads race over a deliberately tiny genome universe so both
        // read-path hits and lost-insert races are frequent. No operation
        // may be double-counted or dropped: every resolve charges exactly
        // one of jobs / infeasible / cache_hits.
        use std::sync::{Arc, Barrier};

        const THREADS: usize = 8;
        const OPS_PER_THREAD: usize = 400;
        const UNIVERSE: u32 = 24;

        let cache = Arc::new(ShardedCache::new());
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..OPS_PER_THREAD {
                        // Deterministic per-thread walk over the universe.
                        let x = ((t * 7 + i * 13) as u32) % UNIVERSE;
                        let g = Genome::from_genes(vec![x, x + 1]);
                        if cache.lookup(&g).is_some() {
                            continue; // resolved via read-path hit
                        }
                        // Miss: "evaluate" (odd genes are infeasible) and
                        // publish, possibly losing the race to a peer.
                        let result = x.is_multiple_of(2).then(|| metrics(f64::from(x)));
                        let _ = cache.insert_or_hit(&g, &result, 10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let s = cache.stats();
        let total_ops = (THREADS * OPS_PER_THREAD) as u64;
        assert_eq!(
            s.jobs + s.infeasible + s.cache_hits,
            total_ops,
            "every resolve must charge exactly one counter: {s:?}"
        );
        assert_eq!(
            s.jobs + s.infeasible,
            cache.len() as u64,
            "winning inserts must equal distinct cached genomes"
        );
        assert_eq!(cache.len() as u32, UNIVERSE, "all universe points resolved");
        assert_eq!(s.jobs, u64::from(UNIVERSE / 2), "even genes are feasible");
        assert_eq!(s.infeasible, u64::from(UNIVERSE.div_ceil(2)));
        assert!(
            cache.contentions() <= s.cache_hits,
            "contentions ({}) is a subcount of cache_hits ({})",
            cache.contentions(),
            s.cache_hits
        );
        assert_eq!(s.simulated_tool_secs, u64::from(UNIVERSE / 2) * 10);
    }

    #[test]
    fn shard_metrics_reconcile_with_merged_stats() {
        let cache = ShardedCache::new();
        for x in 0..40u32 {
            let g = Genome::from_genes(vec![x, x % 3]);
            let result = x.is_multiple_of(2).then(|| metrics(f64::from(x)));
            cache.insert_or_hit(&g, &result, 5);
        }
        for x in 0..10u32 {
            let g = Genome::from_genes(vec![x, x % 3]);
            let _ = cache.lookup(&g);
        }
        let per = cache.shard_metrics();
        assert_eq!(per.len(), NUM_SHARDS);
        assert!(per.iter().enumerate().all(|(i, m)| m.shard as usize == i));
        let s = cache.stats();
        assert_eq!(per.iter().map(|m| m.entries).sum::<usize>(), cache.len());
        assert_eq!(per.iter().map(|m| m.hits).sum::<u64>(), s.cache_hits);
        assert_eq!(per.iter().map(|m| m.misses).sum::<u64>(), s.jobs + s.infeasible);
        assert_eq!(per.iter().map(|m| m.contentions).sum::<u64>(), cache.contentions());
        assert!(per.iter().all(|m| m.lock_waits == 0), "lock timing is off by default");
    }

    #[test]
    fn lock_timing_is_gated_and_counts_acquisitions() {
        let cache = ShardedCache::new();
        let g = Genome::from_genes(vec![1, 2]);
        cache.insert_or_hit(&g, &Some(metrics(1.0)), 1);
        let _ = cache.lookup(&g);
        assert!(!cache.lock_timing_enabled());
        assert_eq!(cache.lock_wait_totals(), (0, 0, 0), "no timing before enablement");

        cache.enable_lock_timing();
        assert!(cache.lock_timing_enabled());
        let _ = cache.lookup(&g); // one timed read acquisition
        cache.insert_or_hit(&g, &Some(metrics(1.0)), 1); // one timed write acquisition
        let (waits, total, max) = cache.lock_wait_totals();
        assert_eq!(waits, 2);
        assert!(total >= max);
        let per_shard_waits: u64 = cache.shard_metrics().iter().map(|m| m.lock_waits).sum();
        assert_eq!(per_shard_waits, waits);
    }

    #[test]
    fn publish_metrics_exports_per_shard_gauges() {
        let cache = ShardedCache::new();
        let a = Genome::from_genes(vec![3, 4]);
        let b = Genome::from_genes(vec![5, 6]);
        cache.insert_or_hit(&a, &Some(metrics(2.0)), 1);
        cache.insert_or_hit(&b, &None, 0);
        let _ = cache.lookup(&a);
        let registry = MetricsRegistry::new();
        cache.publish_metrics(&registry);
        let sum = |field: &str| -> f64 {
            (0..NUM_SHARDS).map(|i| registry.gauge(&format!("cache.shard{i}.{field}")).get()).sum()
        };
        assert!((sum("entries") - 2.0).abs() < 1e-9);
        assert!((sum("hits") - 1.0).abs() < 1e-9);
        assert!((sum("misses") - 2.0).abs() < 1e-9);
        assert!((sum("contentions") - 0.0).abs() < 1e-9);
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = ShardedCache::new();
        for x in 0..64u32 {
            let g = Genome::from_genes(vec![x, x / 2]);
            cache.insert_or_hit(&g, &None, 0);
        }
        assert_eq!(cache.len(), 64);
        let populated = cache.shards.iter().filter(|s| !s.map.read().is_empty()).count();
        assert!(populated > NUM_SHARDS / 2, "only {populated} shards populated");
    }
}
