//! # nautilus-synth — the simulated EDA substrate
//!
//! The Nautilus paper evaluates design points by running FPGA synthesis
//! (Xilinx XST 14.7 targeting a Virtex-6) for minutes to hours per point.
//! This crate is the reproduction's stand-in for that toolchain:
//!
//! * [`MetricCatalog`] / [`MetricSet`] — what a characterization run reports
//!   (area in LUTs, Fmax, power, SNR, ...).
//! * [`MetricExpr`] — the objective language for queries, covering raw and
//!   composite metrics (throughput-per-LUT, area-delay product).
//! * [`CostModel`] — an IP generator's backend: parameter space in, metric
//!   set (or infeasible) out, with deterministic hash-based synthesis noise
//!   from [`noise`] making the landscape as rugged as real synthesis data.
//! * [`SynthJobRunner`] — the caching, accounting front-end every search
//!   strategy evaluates through; counts distinct synthesis jobs and
//!   accumulates simulated tool time.
//! * [`Dataset`] — the paper's offline characterization artifact: an
//!   exhaustive multi-threaded sweep of a swept sub-space, with the rank and
//!   percentile queries the evaluation section needs (top-1% thresholds,
//!   normalized scores, expected random-sampling cost).
//!
//! ## Example
//!
//! ```
//! use nautilus_ga::Direction;
//! use nautilus_synth::{Dataset, MetricExpr};
//! # use nautilus_ga::{Genome, ParamSpace};
//! # use nautilus_synth::{CostModel, MetricCatalog, MetricSet};
//! # struct Toy { space: ParamSpace, catalog: MetricCatalog }
//! # impl CostModel for Toy {
//! #     fn name(&self) -> &str { "toy" }
//! #     fn space(&self) -> &ParamSpace { &self.space }
//! #     fn catalog(&self) -> &MetricCatalog { &self.catalog }
//! #     fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
//! #         Some(self.catalog.set(vec![f64::from(g.gene_at(0)) + 1.0]).unwrap())
//! #     }
//! # }
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let model = Toy {
//! #     space: ParamSpace::builder().int("x", 0, 15, 1).build()?,
//! #     catalog: MetricCatalog::new([("luts", "LUTs")])?,
//! # };
//! let dataset = Dataset::characterize(&model, 4)?;
//! let luts = MetricExpr::metric(dataset.catalog().require("luts")?);
//! let (best, value) = dataset.best(&luts, Direction::Minimize);
//! println!("best design {best} uses {value} LUTs");
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
mod error;
mod expr;
mod faults;
mod fitness;
mod job;
mod metric;
mod model;
pub mod noise;
mod shard;

pub use dataset::{Dataset, DatasetModel, CHARACTERIZE_LIMIT};
pub use error::{Result, SynthError};
pub use expr::{ExprDisplay, MetricExpr};
pub use faults::{FaultPlan, FaultyEvaluator, InjectedFault};
pub use fitness::QueryFitness;
pub use job::{JobStats, SynthJobRunner};
pub use metric::{MetricCatalog, MetricDef, MetricId, MetricSet};
pub use model::CostModel;
pub use shard::{InsertOutcome, ShardMetrics, ShardedCache, NUM_SHARDS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricCatalog>();
        assert_send_sync::<MetricSet>();
        assert_send_sync::<MetricExpr>();
        assert_send_sync::<Dataset>();
        assert_send_sync::<SynthJobRunner<'static>>();
        assert_send_sync::<SynthError>();
        assert_send_sync::<FaultPlan>();
        assert_send_sync::<FaultyEvaluator<'static>>();
    }
}
