//! Pre-characterized design-space datasets.
//!
//! The paper's methodology first maps a large swept sub-space offline
//! ("a dedicated cluster with 200+ cores running non-stop for about 2
//! weeks") and then replays search strategies against the resulting dataset.
//! [`Dataset::characterize`] performs the same sweep against a surrogate
//! model — multi-threaded, seconds instead of weeks — and offers the rank
//! and percentile queries the evaluation needs ("within the top 1%",
//! "within 1% of the best").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use nautilus_ga::{Direction, Genome, ParamSpace};

use crate::error::{Result, SynthError};
use crate::expr::MetricExpr;
use crate::metric::{MetricCatalog, MetricSet};
use crate::model::CostModel;

/// Exhaustive-sweep safety limit (design points).
pub const CHARACTERIZE_LIMIT: u128 = 2_000_000;

/// Indices claimed per steal; amortizes the atomic increment without
/// letting a slow block starve the other workers.
const STEAL_BLOCK: u64 = 256;

/// One objective column sorted best-first, memoized per
/// (expression, direction) pair so rank queries bisect instead of
/// re-sorting the whole dataset on every call.
#[derive(Debug)]
struct SortedColumn {
    /// Finite objective values, best value first.
    values: Vec<f64>,
}

/// A fully characterized (feasible) design-space sub-region.
#[derive(Debug, Clone)]
pub struct Dataset {
    space: ParamSpace,
    catalog: MetricCatalog,
    name: String,
    entries: Vec<(Genome, MetricSet)>,
    index: HashMap<Genome, usize>,
    /// Lazily built per-objective sorted columns. Shared across clones:
    /// entries are immutable after construction, so a memoized column is
    /// valid for every clone of the dataset.
    sorted: Arc<RwLock<HashMap<String, Arc<SortedColumn>>>>,
}

impl Dataset {
    /// Characterizes every point of `model`'s space with `threads` workers.
    ///
    /// Pass `threads == 0` to use every core the host offers
    /// (`std::thread::available_parallelism`); any non-zero count is used
    /// as given — there is no hidden cap. Workers pull
    /// [`STEAL_BLOCK`]-sized index blocks from a shared atomic cursor, so
    /// an expensive region of the space cannot strand one statically
    /// chunked worker with most of the work. Results are merged in flat
    /// index order: entry order (and hence every rank query) is identical
    /// at any thread count.
    ///
    /// Infeasible points are probed (so they are *known* infeasible) but not
    /// stored.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::SpaceTooLarge`] if the space exceeds
    /// [`CHARACTERIZE_LIMIT`] points and [`SynthError::EmptyDataset`] if no
    /// point is feasible.
    pub fn characterize(model: &dyn CostModel, threads: usize) -> Result<Dataset> {
        let space = model.space().clone();
        let total = space.cardinality();
        if total > CHARACTERIZE_LIMIT {
            return Err(SynthError::SpaceTooLarge {
                cardinality: total,
                limit: CHARACTERIZE_LIMIT,
            });
        }
        let total = total as u64;
        let threads = match threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        } as u64;
        let threads = threads.min(total.div_ceil(STEAL_BLOCK)).max(1);

        let cursor = AtomicU64::new(0);
        let mut indexed: Vec<(u64, Genome, MetricSet)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let space = &space;
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(STEAL_BLOCK, Ordering::Relaxed);
                        if lo >= total {
                            break;
                        }
                        for i in lo..(lo + STEAL_BLOCK).min(total) {
                            let g = space.genome_at(u128::from(i));
                            if let Some(m) = model.evaluate(&g) {
                                out.push((i, g, m));
                            }
                        }
                    }
                    out
                }));
            }
            for h in handles {
                indexed.extend(h.join().expect("characterization worker panicked"));
            }
        });

        // Deterministic entry order regardless of steal interleaving.
        indexed.sort_unstable_by_key(|(i, _, _)| *i);
        let entries: Vec<(Genome, MetricSet)> =
            indexed.into_iter().map(|(_, g, m)| (g, m)).collect();
        if entries.is_empty() {
            return Err(SynthError::EmptyDataset);
        }
        let index = entries.iter().enumerate().map(|(i, (g, _))| (g.clone(), i)).collect();
        Ok(Dataset {
            space,
            catalog: model.catalog().clone(),
            name: model.name().to_owned(),
            entries,
            index,
            sorted: Arc::new(RwLock::new(HashMap::new())),
        })
    }

    /// The generator name this dataset was characterized from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The swept parameter space.
    #[must_use]
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// The metric catalog.
    #[must_use]
    pub fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    /// Number of feasible characterized points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dataset is empty (never true for a built dataset).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(genome, metrics)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &(Genome, MetricSet)> {
        self.entries.iter()
    }

    /// The metrics of one design point, if feasible and in the sweep.
    #[must_use]
    pub fn metrics_for(&self, genome: &Genome) -> Option<&MetricSet> {
        self.index.get(genome).map(|&i| &self.entries[i].1)
    }

    /// Evaluates `expr` for every entry, in entry order.
    #[must_use]
    pub fn eval_all(&self, expr: &MetricExpr) -> Vec<f64> {
        self.entries.iter().map(|(_, m)| expr.eval(m)).collect()
    }

    /// The best entry under (`expr`, `direction`): `(genome, value)`.
    ///
    /// Non-finite objective values are skipped.
    #[must_use]
    pub fn best(&self, expr: &MetricExpr, direction: Direction) -> (&Genome, f64) {
        self.extreme(expr, direction, true)
    }

    /// The worst entry under (`expr`, `direction`): `(genome, value)`.
    #[must_use]
    pub fn worst(&self, expr: &MetricExpr, direction: Direction) -> (&Genome, f64) {
        self.extreme(expr, direction, false)
    }

    fn extreme(&self, expr: &MetricExpr, direction: Direction, best: bool) -> (&Genome, f64) {
        let mut out: Option<(&Genome, f64)> = None;
        for (g, m) in &self.entries {
            let v = expr.eval(m);
            if !v.is_finite() {
                continue;
            }
            let replace = match &out {
                None => true,
                Some((_, cur)) => {
                    if best {
                        direction.is_better(v, *cur)
                    } else {
                        direction.is_better(*cur, v)
                    }
                }
            };
            if replace {
                out = Some((g, v));
            }
        }
        out.expect("dataset has at least one finite entry")
    }

    /// The memoized best-first sorted objective column for
    /// (`expr`, `direction`), built on first use.
    fn sorted_column(&self, expr: &MetricExpr, direction: Direction) -> Arc<SortedColumn> {
        let key = format!("{expr:?}|{direction:?}");
        if let Some(col) = self.sorted.read().get(&key) {
            return Arc::clone(col);
        }
        let mut values: Vec<f64> =
            self.eval_all(expr).into_iter().filter(|v| v.is_finite()).collect();
        values.sort_by(|a, b| {
            if direction.is_better(*a, *b) {
                std::cmp::Ordering::Less
            } else if direction.is_better(*b, *a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        let col = Arc::new(SortedColumn { values });
        // A concurrent builder may have raced us; either result is
        // identical, so keep whichever landed first.
        Arc::clone(self.sorted.write().entry(key).or_insert(col))
    }

    /// Quality percentile of `value` under (`expr`, `direction`):
    /// the percentage of dataset entries that `value` ties or beats.
    ///
    /// The dataset optimum scores 100; "within the top 1%" means
    /// `quality_pct >= 99`.
    #[must_use]
    pub fn quality_pct(&self, expr: &MetricExpr, direction: Direction, value: f64) -> f64 {
        let col = self.sorted_column(expr, direction);
        let finite = col.values.len();
        if finite == 0 {
            return 0.0;
        }
        // Strictly-better values form a prefix of the best-first column.
        let better = col.values.partition_point(|&v| direction.is_better(v, value));
        100.0 * (finite - better) as f64 / finite as f64
    }

    /// Normalized 0–100 score of `value` between the dataset's worst (0) and
    /// best (100) objective values — the paper's Figure 3 y-axis.
    #[must_use]
    pub fn normalized_score(&self, expr: &MetricExpr, direction: Direction, value: f64) -> f64 {
        let (_, best) = self.best(expr, direction);
        let (_, worst) = self.worst(expr, direction);
        if (best - worst).abs() < f64::EPSILON {
            return 100.0;
        }
        (100.0 * (value - worst) / (best - worst)).clamp(0.0, 100.0)
    }

    /// The objective value at the boundary of the top `frac` of the dataset
    /// (e.g. `frac = 0.01` gives the top-1% threshold).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `(0, 1]`.
    #[must_use]
    pub fn top_fraction_threshold(
        &self,
        expr: &MetricExpr,
        direction: Direction,
        frac: f64,
    ) -> f64 {
        assert!(frac > 0.0 && frac <= 1.0, "frac {frac} outside (0, 1]");
        let col = self.sorted_column(expr, direction);
        let k = ((col.values.len() as f64 * frac).ceil() as usize).clamp(1, col.values.len());
        col.values[k - 1]
    }

    /// How many entries meet or beat `threshold` under the direction.
    #[must_use]
    pub fn count_reaching(&self, expr: &MetricExpr, direction: Direction, threshold: f64) -> usize {
        let col = self.sorted_column(expr, direction);
        // Values tying-or-beating the threshold form a prefix.
        col.values.partition_point(|&v| !direction.is_better(threshold, v))
    }

    /// Expected number of uniform random draws (with replacement) needed to
    /// hit an entry meeting `threshold` — the paper's "if random sampling
    /// was used, it would take on average 11,921 synthesis runs" comparison.
    ///
    /// Returns `None` if no entry meets the threshold.
    #[must_use]
    pub fn expected_random_draws(
        &self,
        expr: &MetricExpr,
        direction: Direction,
        threshold: f64,
    ) -> Option<f64> {
        let hits = self.count_reaching(expr, direction, threshold);
        if hits == 0 {
            None
        } else {
            Some(self.entries.len() as f64 / hits as f64)
        }
    }

    /// Wraps the dataset as a replayable [`CostModel`]: evaluation is a table
    /// lookup, and points outside the dataset are infeasible.
    #[must_use]
    pub fn as_model(&self) -> DatasetModel<'_> {
        DatasetModel { dataset: self }
    }

    /// Serializes the dataset as tab-separated text: one header row with
    /// parameter names then metric names, one row per feasible design.
    /// The format plots directly in gnuplot/pandas.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for p in self.space.params() {
            out.push_str(p.name());
            out.push('\t');
        }
        let names: Vec<&str> = self.catalog.defs().iter().map(|d| d.name()).collect();
        out.push_str(&names.join("\t"));
        out.push('\n');
        for (g, m) in &self.entries {
            for (p, &gene) in self.space.params().iter().zip(g.genes()) {
                out.push_str(&p.domain().value(gene as usize).to_string());
                out.push('\t');
            }
            let values: Vec<String> = m.values().iter().map(|v| format!("{v}")).collect();
            out.push_str(&values.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// A [`CostModel`] that replays a characterized [`Dataset`].
///
/// Produced by [`Dataset::as_model`]; this is the paper's evaluation mode
/// (searches run against the offline-characterized datasets).
#[derive(Debug, Clone, Copy)]
pub struct DatasetModel<'d> {
    dataset: &'d Dataset,
}

impl CostModel for DatasetModel<'_> {
    fn name(&self) -> &str {
        self.dataset.name()
    }

    fn space(&self) -> &ParamSpace {
        self.dataset.space()
    }

    fn catalog(&self) -> &MetricCatalog {
        self.dataset.catalog()
    }

    fn evaluate(&self, genome: &Genome) -> Option<MetricSet> {
        self.dataset.metrics_for(genome).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testing::BowlModel;
    use nautilus_ga::ParamValue;

    fn dataset() -> Dataset {
        let model = BowlModel::new(0.0).unwrap();
        Dataset::characterize(&model, 4).unwrap()
    }

    #[test]
    fn characterization_covers_feasible_space() {
        let d = dataset();
        // 20x20 space minus the 20-point infeasible stripe at x == 7.
        assert_eq!(d.len(), 380);
        assert_eq!(d.space().num_params(), 2);
    }

    #[test]
    fn characterization_is_thread_count_invariant() {
        let model = BowlModel::new(0.07).unwrap();
        let a = Dataset::characterize(&model, 1).unwrap();
        let b = Dataset::characterize(&model, 7).unwrap();
        assert_eq!(a.len(), b.len());
        let ea: Vec<_> = a.iter().collect();
        let eb: Vec<_> = b.iter().collect();
        assert_eq!(ea, eb, "entry order must not depend on thread count");
    }

    #[test]
    fn characterization_auto_threads_and_large_counts_are_equivalent() {
        let model = BowlModel::new(0.07).unwrap();
        let serial = Dataset::characterize(&model, 1).unwrap();
        // threads == 0: auto-detect; 128: formerly silently capped at 64,
        // now honored (and bounded by the number of steal blocks).
        for threads in [0usize, 128] {
            let d = Dataset::characterize(&model, threads).unwrap();
            let ea: Vec<_> = serial.iter().collect();
            let eb: Vec<_> = d.iter().collect();
            assert_eq!(ea, eb, "threads={threads} changed the entries");
        }
    }

    #[test]
    fn indexed_queries_match_linear_scans() {
        let d = dataset();
        let cost = MetricExpr::metric(d.catalog().require("cost").unwrap());
        for direction in [Direction::Minimize, Direction::Maximize] {
            for threshold in [-1.0, 0.0, 1.0, 1.5, 50.0, 200.0, 378.0, 1000.0] {
                let linear_count = d
                    .iter()
                    .map(|(_, m)| cost.eval(m))
                    .filter(|v| v.is_finite() && !direction.is_better(threshold, *v))
                    .count();
                assert_eq!(
                    d.count_reaching(&cost, direction, threshold),
                    linear_count,
                    "count_reaching({direction:?}, {threshold})"
                );
                let (not_better, finite) = d
                    .iter()
                    .map(|(_, m)| cost.eval(m))
                    .filter(|v| v.is_finite())
                    .fold((0usize, 0usize), |(nb, n), v| {
                        (nb + usize::from(!direction.is_better(v, threshold)), n + 1)
                    });
                let linear_pct = 100.0 * not_better as f64 / finite as f64;
                let pct = d.quality_pct(&cost, direction, threshold);
                assert!(
                    (pct - linear_pct).abs() < 1e-12,
                    "quality_pct({direction:?}, {threshold}): {pct} vs {linear_pct}"
                );
            }
        }
    }

    #[test]
    fn cloned_datasets_share_memoized_columns() {
        let d = dataset();
        let cost = MetricExpr::metric(d.catalog().require("cost").unwrap());
        let t = d.top_fraction_threshold(&cost, Direction::Minimize, 0.10);
        let clone = d.clone();
        assert_eq!(clone.top_fraction_threshold(&cost, Direction::Minimize, 0.10), t);
        assert_eq!(d.sorted.read().len(), clone.sorted.read().len());
        assert_eq!(d.sorted.read().len(), 1, "one memoized column for one (expr, direction)");
    }

    #[test]
    fn best_and_worst_match_known_optimum() {
        let d = dataset();
        let cost = MetricExpr::metric(d.catalog().require("cost").unwrap());
        let (g, v) = d.best(&cost, Direction::Minimize);
        let dp = d.space().decode(g);
        assert_eq!(dp.get("x"), Some(&ParamValue::Int(3)));
        assert_eq!(dp.get("y"), Some(&ParamValue::Int(11)));
        assert_eq!(v, 1.0);
        let (_, w) = d.worst(&cost, Direction::Minimize);
        // Farthest feasible corner is (19, 0): 16^2 + 11^2 + 1 = 378.
        assert_eq!(w, 378.0, "worst bowl cost {w}");
    }

    #[test]
    fn quality_pct_is_100_at_best_and_low_at_worst() {
        let d = dataset();
        let cost = MetricExpr::metric(d.catalog().require("cost").unwrap());
        let (_, best) = d.best(&cost, Direction::Minimize);
        let (_, worst) = d.worst(&cost, Direction::Minimize);
        assert_eq!(d.quality_pct(&cost, Direction::Minimize, best), 100.0);
        let wq = d.quality_pct(&cost, Direction::Minimize, worst);
        assert!(wq <= 1.0, "worst quality {wq}");
        let mid = d.quality_pct(&cost, Direction::Minimize, 50.0);
        assert!(mid > 10.0 && mid < 90.0, "mid quality {mid}");
    }

    #[test]
    fn normalized_score_endpoints() {
        let d = dataset();
        let cost = MetricExpr::metric(d.catalog().require("cost").unwrap());
        let (_, best) = d.best(&cost, Direction::Minimize);
        let (_, worst) = d.worst(&cost, Direction::Minimize);
        assert_eq!(d.normalized_score(&cost, Direction::Minimize, best), 100.0);
        assert_eq!(d.normalized_score(&cost, Direction::Minimize, worst), 0.0);
    }

    #[test]
    fn top_fraction_threshold_brackets_the_best() {
        let d = dataset();
        let cost = MetricExpr::metric(d.catalog().require("cost").unwrap());
        let t1 = d.top_fraction_threshold(&cost, Direction::Minimize, 0.01);
        let t10 = d.top_fraction_threshold(&cost, Direction::Minimize, 0.10);
        let (_, best) = d.best(&cost, Direction::Minimize);
        assert!(t1 >= best);
        assert!(t10 >= t1);
        // Counting entries that reach the top-10% threshold gives ~10%.
        let n = d.count_reaching(&cost, Direction::Minimize, t10);
        let frac = n as f64 / d.len() as f64;
        assert!((0.08..=0.12).contains(&frac), "frac {frac}");
    }

    #[test]
    fn expected_random_draws_inverse_of_hit_rate() {
        let d = dataset();
        let cost = MetricExpr::metric(d.catalog().require("cost").unwrap());
        let (_, best) = d.best(&cost, Direction::Minimize);
        let draws = d.expected_random_draws(&cost, Direction::Minimize, best).unwrap();
        assert_eq!(draws, d.len() as f64); // unique optimum
        assert_eq!(d.expected_random_draws(&cost, Direction::Minimize, best - 1.0), None);
    }

    #[test]
    fn dataset_model_replays_and_rejects_unknown_points() {
        let d = dataset();
        let m = d.as_model();
        let (g, _) =
            d.best(&MetricExpr::metric(d.catalog().require("cost").unwrap()), Direction::Minimize);
        let g = g.clone();
        assert_eq!(m.evaluate(&g), d.metrics_for(&g).cloned());
        // The infeasible stripe is absent from the dataset.
        let bad = d
            .space()
            .genome_from_values([("x", ParamValue::Int(7)), ("y", ParamValue::Int(1))])
            .unwrap();
        assert_eq!(m.evaluate(&bad), None);
        assert_eq!(m.name(), "bowl");
    }

    #[test]
    fn tsv_export_round_trips_structure() {
        let d = dataset();
        let tsv = d.to_tsv();
        let mut lines = tsv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, "x\ty\tcost\tgain");
        assert_eq!(tsv.lines().count(), d.len() + 1);
        // Every row has the same column count and parses numerically.
        for line in tsv.lines().skip(1).take(20) {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 4);
            for c in cols {
                let _: f64 = c.parse().expect("numeric cell");
            }
        }
    }

    #[test]
    fn maximize_direction_queries_work() {
        let d = dataset();
        let gain = MetricExpr::metric(d.catalog().require("gain").unwrap());
        let (g, v) = d.best(&gain, Direction::Maximize);
        let dp = d.space().decode(g);
        // gain = x + 2y + 1 is maximized at x=19, y=19 -> 58.
        assert_eq!(dp.get("x"), Some(&ParamValue::Int(19)));
        assert_eq!(dp.get("y"), Some(&ParamValue::Int(19)));
        assert_eq!(v, 58.0);
    }
}
