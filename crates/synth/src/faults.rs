//! Deterministic fault injection for chaos-testing the evaluation
//! pipeline.
//!
//! A [`FaultPlan`] decides, from nothing but its seed, a genome's stable
//! hash and the attempt number, whether an evaluation attempt fails and
//! how. Because no clock, RNG stream or thread identity is consulted, the
//! same plan injects the same faults at every `eval_workers` setting —
//! which is what lets the chaos suite assert bit-for-bit determinism
//! across worker counts.
//!
//! [`FaultyEvaluator`] wraps any [`FitnessFn`] (e.g. a `QueryFitness` over
//! a `SynthJobRunner`, or a dataset-backed evaluator) as a
//! [`FallibleEvaluator`]: injected transient/timeout/persistent faults
//! simulate the backend dying *without* invoking it, while injected
//! corruption runs the backend and then garbles its report.

use std::sync::atomic::{AtomicU64, Ordering};

use nautilus_ga::rng::{hash_combine, mix_to_unit, splitmix64};
use nautilus_ga::{
    AttemptOutcome, EvalFailure, FallibleEvaluator, FitnessFn, Genome, SupervisableEvaluator,
};
use nautilus_obs::FailureKind;

/// Salts separating the per-kind fault draws (and this module's hashing
/// from every other `stable_hash` consumer).
const SALT_PLAN: u64 = 0x6661_756c_7421; // "fault!"
const SALT_PERSISTENT: u64 = 0x01;
const SALT_TRANSIENT: u64 = 0x02;
const SALT_TIMEOUT: u64 = 0x03;
const SALT_CORRUPT: u64 = 0x04;
const SALT_HANG: u64 = 0x05;
const SALT_COST: u64 = 0x06;

/// Everything a [`FaultPlan`] can inject into one evaluation attempt.
///
/// The first four kinds map 1:1 onto [`FailureKind`]; [`InjectedFault::Hang`]
/// is the supervision-only kind: the attempt never returns and only a
/// watchdog deadline ends it. Under the legacy (unsupervised)
/// [`FallibleEvaluator`] path a hang degrades to an injected timeout, so
/// fault plans stay usable — if blunter — without a supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Simulated worker crash; retryable.
    Transient,
    /// Simulated tool timeout; retryable.
    Timeout,
    /// The tool ran but its report is garbage.
    Corrupted,
    /// The design deterministically kills the generator; never retryable.
    Persistent,
    /// The attempt hangs forever (supervised runs only).
    Hang,
}

/// A seeded, rate-configured fault-injection plan.
///
/// Per-kind rates are probabilities in `[0, 1]`, drawn independently in
/// priority order persistent → transient → timeout → corrupted.
/// Persistent faults are keyed off the genome alone (no attempt number),
/// so a persistently failing design fails *every* retry — exactly the
/// deterministic quarantine case. The retryable kinds mix the attempt
/// number in, so retries can recover.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    seed: u64,
    transient: f64,
    timeout: f64,
    corrupt: f64,
    persistent: f64,
    #[serde(default)]
    hang: f64,
}

impl FaultPlan {
    /// A plan with the given seed and all rates at zero.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, transient: 0.0, timeout: 0.0, corrupt: 0.0, persistent: 0.0, hang: 0.0 }
    }

    /// Sets the transient-failure rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the timeout rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_timeout_rate(mut self, rate: f64) -> Self {
        self.timeout = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the corrupted-metrics rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the persistent-failure rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_persistent_rate(mut self, rate: f64) -> Self {
        self.persistent = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the hang rate (clamped to `[0, 1]`). Hangs mix the attempt
    /// number in, so a retry (or a hedged duplicate, which carries a
    /// different attempt tag) can recover.
    #[must_use]
    pub fn with_hang_rate(mut self, rate: f64) -> Self {
        self.hang = rate.clamp(0.0, 1.0);
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the fate of one (genome, attempt) pair: `None` means the
    /// attempt proceeds normally.
    ///
    /// This is the legacy (unsupervised) view: an injected hang degrades
    /// to [`FailureKind::Timeout`], because without a watchdog the only
    /// honest approximation of "never returns" is "took too long".
    #[must_use]
    pub fn decide(&self, genome: &Genome, attempt: u32) -> Option<FailureKind> {
        self.decide_full(genome, attempt).map(|fault| match fault {
            InjectedFault::Transient => FailureKind::Transient,
            InjectedFault::Timeout | InjectedFault::Hang => FailureKind::Timeout,
            InjectedFault::Corrupted => FailureKind::Corrupted,
            InjectedFault::Persistent => FailureKind::Persistent,
        })
    }

    /// Decides the fate of one (genome, attempt) pair including the
    /// supervision-only [`InjectedFault::Hang`] kind.
    ///
    /// Hangs draw last: a genome/attempt already fated to fail some
    /// other way keeps that fate, so enabling a hang rate never *removes*
    /// faults from an existing plan.
    #[must_use]
    pub fn decide_full(&self, genome: &Genome, attempt: u32) -> Option<InjectedFault> {
        let g = genome.stable_hash(splitmix64(self.seed) ^ SALT_PLAN);
        if self.persistent > 0.0 && mix_to_unit(hash_combine(g, SALT_PERSISTENT)) < self.persistent
        {
            return Some(InjectedFault::Persistent);
        }
        let a = hash_combine(g, splitmix64(u64::from(attempt)));
        if self.transient > 0.0 && mix_to_unit(hash_combine(a, SALT_TRANSIENT)) < self.transient {
            return Some(InjectedFault::Transient);
        }
        if self.timeout > 0.0 && mix_to_unit(hash_combine(a, SALT_TIMEOUT)) < self.timeout {
            return Some(InjectedFault::Timeout);
        }
        if self.corrupt > 0.0 && mix_to_unit(hash_combine(a, SALT_CORRUPT)) < self.corrupt {
            return Some(InjectedFault::Corrupted);
        }
        if self.hang > 0.0 && mix_to_unit(hash_combine(a, SALT_HANG)) < self.hang {
            return Some(InjectedFault::Hang);
        }
        None
    }

    /// Deterministic virtual duration for one attempt, in milliseconds
    /// (uniform over `100..=2000`). Supervised runs use this as the
    /// attempt's wall-clock stand-in, so straggler hedging and watchdog
    /// decisions replay identically at every worker count.
    #[must_use]
    pub fn attempt_cost_ms(&self, genome: &Genome, attempt: u32) -> u64 {
        let g = genome.stable_hash(splitmix64(self.seed) ^ SALT_PLAN);
        let a = hash_combine(g, splitmix64(u64::from(attempt)));
        100 + hash_combine(a, SALT_COST) % 1901
    }
}

/// Wraps an infallible evaluator with plan-driven fault injection.
///
/// Injection semantics per kind:
///
/// * **Transient / timeout / persistent** — the simulated backend died
///   before producing anything: the inner evaluator is *not* invoked, so
///   runner job accounting sees nothing.
/// * **Corrupted** — the backend ran to completion (the inner evaluator
///   *is* invoked and charged) but its report is garbage: the wrapper
///   returns `Ok(Some(NaN))`, which the engine's retry loop converts to
///   [`EvalFailure::Corrupted`] and quarantines.
///
/// Injection counters are exposed per kind for exact reconciliation in
/// chaos tests.
pub struct FaultyEvaluator<'a> {
    inner: &'a dyn FitnessFn,
    plan: FaultPlan,
    injected: [AtomicU64; FailureKind::ALL.len()],
    /// Hangs tracked separately: they are not a [`FailureKind`] (under
    /// supervision they surface as watchdog timeouts, unsupervised as
    /// injected timeouts).
    hangs: AtomicU64,
}

impl<'a> FaultyEvaluator<'a> {
    /// Wraps `inner` with `plan`.
    #[must_use]
    pub fn new(inner: &'a dyn FitnessFn, plan: FaultPlan) -> Self {
        FaultyEvaluator { inner, plan, injected: Default::default(), hangs: AtomicU64::new(0) }
    }

    /// The active fault plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many faults of `kind` have been injected so far.
    #[must_use]
    pub fn injected(&self, kind: FailureKind) -> u64 {
        self.injected[Self::kind_index(kind)].load(Ordering::Relaxed)
    }

    /// How many hangs have been injected so far.
    #[must_use]
    pub fn injected_hangs(&self) -> u64 {
        self.hangs.load(Ordering::Relaxed)
    }

    /// Total injected faults across all kinds, hangs included.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum::<u64>()
            + self.hangs.load(Ordering::Relaxed)
    }

    fn kind_index(kind: FailureKind) -> usize {
        FailureKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)
    }

    fn count(&self, kind: FailureKind) {
        self.injected[Self::kind_index(kind)].fetch_add(1, Ordering::Relaxed);
    }
}

impl FallibleEvaluator for FaultyEvaluator<'_> {
    fn try_fitness(&self, genome: &Genome, attempt: u32) -> Result<Option<f64>, EvalFailure> {
        match self.plan.decide_full(genome, attempt) {
            Some(InjectedFault::Transient) => {
                self.count(FailureKind::Transient);
                Err(EvalFailure::Transient("injected: synthesis worker crashed".into()))
            }
            Some(InjectedFault::Timeout) => {
                self.count(FailureKind::Timeout);
                Err(EvalFailure::Timeout { elapsed_ms: 1_001, limit_ms: 1_000 })
            }
            Some(InjectedFault::Hang) => {
                // Without a watchdog the closest honest rendering of
                // "never returns" is an injected timeout.
                self.hangs.fetch_add(1, Ordering::Relaxed);
                Err(EvalFailure::Timeout { elapsed_ms: 1_001, limit_ms: 1_000 })
            }
            Some(InjectedFault::Persistent) => {
                self.count(FailureKind::Persistent);
                Err(EvalFailure::Persistent("injected: generator rejects this design".into()))
            }
            Some(InjectedFault::Corrupted) => {
                self.count(FailureKind::Corrupted);
                // The tool ran (and is charged by the runner) but its
                // report is garbage.
                let _ = self.inner.fitness(genome);
                Ok(Some(f64::NAN))
            }
            None => Ok(self.inner.fitness(genome)),
        }
    }
}

impl SupervisableEvaluator for FaultyEvaluator<'_> {
    fn attempt(&self, genome: &Genome, attempt: u32) -> AttemptOutcome {
        if self.plan.decide_full(genome, attempt) == Some(InjectedFault::Hang) {
            self.hangs.fetch_add(1, Ordering::Relaxed);
            return AttemptOutcome::Hang;
        }
        AttemptOutcome::Finished {
            result: self.try_fitness(genome, attempt),
            cost_ms: self.plan.attempt_cost_ms(genome, attempt),
        }
    }
}

impl std::fmt::Debug for FaultyEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyEvaluator").field("plan", &self.plan).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::{Direction, FnFitness};

    fn g(x: u32) -> Genome {
        Genome::from_genes(vec![x])
    }

    fn value_fn() -> FnFitness<impl Fn(&Genome) -> Option<f64> + Send + Sync> {
        FnFitness::new(Direction::Maximize, |g: &Genome| Some(f64::from(g.gene_at(0))))
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let f = value_fn();
        let eval = FaultyEvaluator::new(&f, FaultPlan::new(1));
        for x in 0..50 {
            assert_eq!(eval.try_fitness(&g(x), 1), Ok(Some(f64::from(x))));
        }
        assert_eq!(eval.total_injected(), 0);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan_a = FaultPlan::new(1).with_transient_rate(0.5);
        let plan_b = FaultPlan::new(2).with_transient_rate(0.5);
        let decisions_a: Vec<_> = (0..64).map(|x| plan_a.decide(&g(x), 1)).collect();
        let decisions_b: Vec<_> = (0..64).map(|x| plan_b.decide(&g(x), 1)).collect();
        assert_eq!(decisions_a, (0..64).map(|x| plan_a.decide(&g(x), 1)).collect::<Vec<_>>());
        assert_ne!(decisions_a, decisions_b, "different seeds should inject differently");
        let injected = decisions_a.iter().filter(|d| d.is_some()).count();
        assert!((16..=48).contains(&injected), "50% rate wildly off: {injected}/64");
    }

    #[test]
    fn persistent_faults_ignore_the_attempt_number() {
        let plan = FaultPlan::new(3).with_persistent_rate(0.3).with_transient_rate(0.5);
        for x in 0..64 {
            if plan.decide(&g(x), 1) == Some(FailureKind::Persistent) {
                for attempt in 2..6 {
                    assert_eq!(
                        plan.decide(&g(x), attempt),
                        Some(FailureKind::Persistent),
                        "persistent fault must survive retries"
                    );
                }
            }
        }
    }

    #[test]
    fn transient_faults_can_clear_on_retry() {
        let plan = FaultPlan::new(4).with_transient_rate(0.5);
        let recovered = (0..64).any(|x| {
            plan.decide(&g(x), 1) == Some(FailureKind::Transient) && plan.decide(&g(x), 2).is_none()
        });
        assert!(recovered, "at 50% some first-attempt failure should clear on attempt 2");
    }

    #[test]
    fn rates_are_clamped() {
        let plan = FaultPlan::new(5).with_transient_rate(7.0).with_corrupt_rate(-1.0);
        assert_eq!(plan, FaultPlan::new(5).with_transient_rate(1.0).with_corrupt_rate(0.0));
        assert!(plan.decide(&g(0), 1).is_some(), "rate 1.0 must always inject");
    }

    #[test]
    fn hangs_draw_last_and_never_displace_other_faults() {
        let base = FaultPlan::new(7)
            .with_transient_rate(0.2)
            .with_timeout_rate(0.1)
            .with_corrupt_rate(0.1)
            .with_persistent_rate(0.1);
        let hanging = base.with_hang_rate(0.3);
        let mut hangs = 0;
        for x in 0..256 {
            let before = base.decide_full(&g(x), 1);
            let after = hanging.decide_full(&g(x), 1);
            match before {
                Some(fault) => assert_eq!(after, Some(fault), "hang rate displaced a fault"),
                None => {
                    assert!(matches!(after, None | Some(InjectedFault::Hang)));
                    if after == Some(InjectedFault::Hang) {
                        hangs += 1;
                    }
                }
            }
        }
        assert!(hangs > 0, "30% hang rate injected nothing over 256 genomes");
    }

    #[test]
    fn hangs_mix_the_attempt_number_so_retries_can_recover() {
        let plan = FaultPlan::new(8).with_hang_rate(0.5);
        let recovered = (0..64).any(|x| {
            plan.decide_full(&g(x), 1) == Some(InjectedFault::Hang)
                && plan.decide_full(&g(x), 2).is_none()
        });
        assert!(recovered, "at 50% some first-attempt hang should clear on attempt 2");
    }

    #[test]
    fn attempt_costs_are_deterministic_and_in_range() {
        let plan = FaultPlan::new(9);
        for x in 0..64 {
            for attempt in 1..4 {
                let cost = plan.attempt_cost_ms(&g(x), attempt);
                assert_eq!(cost, plan.attempt_cost_ms(&g(x), attempt));
                assert!((100..=2000).contains(&cost), "cost {cost} outside 100..=2000");
            }
        }
        let spread: std::collections::HashSet<u64> =
            (0..64).map(|x| plan.attempt_cost_ms(&g(x), 1)).collect();
        assert!(spread.len() > 32, "costs should vary across genomes: {}", spread.len());
    }

    #[test]
    fn supervised_attempts_hang_where_the_plan_says_and_finish_elsewhere() {
        let f = value_fn();
        let plan = FaultPlan::new(10).with_hang_rate(0.4);
        let eval = FaultyEvaluator::new(&f, plan);
        let mut saw_hang = false;
        let mut saw_finish = false;
        for x in 0..64 {
            match eval.attempt(&g(x), 1) {
                AttemptOutcome::Hang => {
                    assert_eq!(plan.decide_full(&g(x), 1), Some(InjectedFault::Hang));
                    saw_hang = true;
                }
                AttemptOutcome::Finished { result, cost_ms } => {
                    assert_eq!(result, Ok(Some(f64::from(x))));
                    assert_eq!(cost_ms, plan.attempt_cost_ms(&g(x), 1));
                    saw_finish = true;
                }
            }
        }
        assert!(saw_hang && saw_finish, "40% hang rate should split 64 genomes both ways");
        assert_eq!(eval.injected_hangs(), eval.total_injected());
    }

    #[test]
    fn unsupervised_hangs_degrade_to_injected_timeouts() {
        let f = value_fn();
        let plan = FaultPlan::new(10).with_hang_rate(1.0);
        let eval = FaultyEvaluator::new(&f, plan);
        assert_eq!(
            eval.try_fitness(&g(1), 1),
            Err(EvalFailure::Timeout { elapsed_ms: 1_001, limit_ms: 1_000 })
        );
        assert_eq!(eval.injected_hangs(), 1);
        assert_eq!(eval.injected(FailureKind::Timeout), 0, "a hang is not a timeout injection");
        assert_eq!(eval.total_injected(), 1);
    }

    #[test]
    fn crash_faults_skip_the_backend_but_corruption_charges_it() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let f = FnFitness::new(Direction::Maximize, |g: &Genome| {
            calls.fetch_add(1, Ordering::Relaxed);
            Some(f64::from(g.gene_at(0)))
        });
        let crash = FaultyEvaluator::new(&f, FaultPlan::new(6).with_transient_rate(1.0));
        assert!(crash.try_fitness(&g(1), 1).is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 0, "crashed backend must not be charged");
        assert_eq!(crash.injected(FailureKind::Transient), 1);

        let corrupt = FaultyEvaluator::new(&f, FaultPlan::new(6).with_corrupt_rate(1.0));
        let out = corrupt.try_fitness(&g(1), 1).unwrap().unwrap();
        assert!(out.is_nan(), "corruption should return garbage, not an error");
        assert_eq!(calls.load(Ordering::Relaxed), 1, "corrupted run still charged the backend");
        assert_eq!(corrupt.injected(FailureKind::Corrupted), 1);
    }
}
