//! Error types for the synthesis substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by metric catalogs, datasets and job runners.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthError {
    /// A metric name was looked up that the catalog does not define.
    UnknownMetric(String),
    /// Two metrics were declared with the same name.
    DuplicateMetric(String),
    /// A metric set was built with the wrong number of values.
    ArityMismatch {
        /// Values supplied.
        got: usize,
        /// Values the catalog expects.
        expected: usize,
    },
    /// An operation requires a non-empty dataset.
    EmptyDataset,
    /// The design space is too large to characterize exhaustively.
    SpaceTooLarge {
        /// Cardinality of the offending space.
        cardinality: u128,
        /// Exhaustive-sweep limit.
        limit: u128,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnknownMetric(name) => write!(f, "unknown metric `{name}`"),
            SynthError::DuplicateMetric(name) => write!(f, "duplicate metric name `{name}`"),
            SynthError::ArityMismatch { got, expected } => {
                write!(f, "metric set has {got} values but the catalog defines {expected}")
            }
            SynthError::EmptyDataset => write!(f, "dataset contains no feasible design points"),
            SynthError::SpaceTooLarge { cardinality, limit } => write!(
                f,
                "space with {cardinality} points exceeds the exhaustive characterization limit of {limit}"
            ),
        }
    }
}

impl Error for SynthError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SynthError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every current variant; extend when variants are
    /// added so the round-trip tests below stay exhaustive.
    fn all_variants() -> Vec<SynthError> {
        vec![
            SynthError::UnknownMetric("luts".into()),
            SynthError::DuplicateMetric("fmax".into()),
            SynthError::ArityMismatch { got: 2, expected: 3 },
            SynthError::EmptyDataset,
            SynthError::SpaceTooLarge { cardinality: 10, limit: 5 },
        ]
    }

    #[test]
    fn messages_name_the_offender() {
        assert!(SynthError::UnknownMetric("luts".into()).to_string().contains("luts"));
        assert!(SynthError::ArityMismatch { got: 2, expected: 3 }.to_string().contains('2'));
        assert!(SynthError::SpaceTooLarge { cardinality: 10, limit: 5 }.to_string().contains("10"));
    }

    #[test]
    fn every_variant_displays_and_implements_error() {
        for err in all_variants() {
            let msg = err.to_string();
            assert!(!msg.is_empty(), "{err:?} has an empty message");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error messages start lowercase by convention: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing period by convention: {msg}");
            let boxed: Box<dyn Error> = Box::new(err.clone());
            assert!(boxed.source().is_none(), "SynthError is a leaf error");
            assert_eq!(boxed.to_string(), msg);
        }
    }

    #[test]
    fn variants_compare_and_clone_consistently() {
        for err in all_variants() {
            assert_eq!(err.clone(), err);
        }
        assert_ne!(SynthError::UnknownMetric("a".into()), SynthError::UnknownMetric("b".into()));
    }

    /// `SynthError` is `#[non_exhaustive]`: downstream matches must carry
    /// a wildcard arm so adding a variant (as this PR's `EvalFailure`
    /// work did elsewhere) is not a breaking change. This test pins the
    /// idiom the rest of the workspace should use.
    #[test]
    // In-crate matches still see every variant, so the wildcard the
    // attribute mandates for downstream crates is "unreachable" here.
    #[allow(unreachable_patterns)]
    fn non_exhaustive_matching_requires_a_wildcard_arm() {
        for err in all_variants() {
            let class = match err {
                SynthError::UnknownMetric(_) | SynthError::DuplicateMetric(_) => "catalog",
                SynthError::ArityMismatch { .. } => "metrics",
                SynthError::EmptyDataset | SynthError::SpaceTooLarge { .. } => "dataset",
                // Future variants land here instead of breaking the build.
                _ => "other",
            };
            assert_ne!(class, "other", "unclassified current variant");
        }
    }
}
