//! Error types for the synthesis substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by metric catalogs, datasets and job runners.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthError {
    /// A metric name was looked up that the catalog does not define.
    UnknownMetric(String),
    /// Two metrics were declared with the same name.
    DuplicateMetric(String),
    /// A metric set was built with the wrong number of values.
    ArityMismatch {
        /// Values supplied.
        got: usize,
        /// Values the catalog expects.
        expected: usize,
    },
    /// An operation requires a non-empty dataset.
    EmptyDataset,
    /// The design space is too large to characterize exhaustively.
    SpaceTooLarge {
        /// Cardinality of the offending space.
        cardinality: u128,
        /// Exhaustive-sweep limit.
        limit: u128,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnknownMetric(name) => write!(f, "unknown metric `{name}`"),
            SynthError::DuplicateMetric(name) => write!(f, "duplicate metric name `{name}`"),
            SynthError::ArityMismatch { got, expected } => {
                write!(f, "metric set has {got} values but the catalog defines {expected}")
            }
            SynthError::EmptyDataset => write!(f, "dataset contains no feasible design points"),
            SynthError::SpaceTooLarge { cardinality, limit } => write!(
                f,
                "space with {cardinality} points exceeds the exhaustive characterization limit of {limit}"
            ),
        }
    }
}

impl Error for SynthError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SynthError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(SynthError::UnknownMetric("luts".into()).to_string().contains("luts"));
        assert!(SynthError::ArityMismatch { got: 2, expected: 3 }.to_string().contains('2'));
        assert!(SynthError::SpaceTooLarge { cardinality: 10, limit: 5 }.to_string().contains("10"));
    }
}
