//! Bridging synthesis jobs to the GA's fitness interface.

use nautilus_ga::{Direction, FitnessFn, GeneRows, Genome};

use crate::expr::MetricExpr;
use crate::job::SynthJobRunner;

/// A [`FitnessFn`] that evaluates a metric expression through a caching
/// [`SynthJobRunner`].
///
/// This is the glue between a query ("minimize area-delay product") and the
/// simulated EDA backend: every fitness evaluation is a synthesis-job lookup,
/// and the runner's counters give the paper's "# designs evaluated" cost.
pub struct QueryFitness<'r, 'm> {
    runner: &'r SynthJobRunner<'m>,
    expr: MetricExpr,
    direction: Direction,
}

impl<'r, 'm> QueryFitness<'r, 'm> {
    /// Creates a fitness function for (`expr`, `direction`) over `runner`.
    #[must_use]
    pub fn new(runner: &'r SynthJobRunner<'m>, expr: MetricExpr, direction: Direction) -> Self {
        QueryFitness { runner, expr, direction }
    }

    /// The objective expression.
    #[must_use]
    pub fn expr(&self) -> &MetricExpr {
        &self.expr
    }

    /// The job runner backing the fitness function.
    #[must_use]
    pub fn runner(&self) -> &'r SynthJobRunner<'m> {
        self.runner
    }
}

impl FitnessFn for QueryFitness<'_, '_> {
    fn direction(&self) -> Direction {
        self.direction
    }

    fn fitness(&self, genome: &Genome) -> Option<f64> {
        let metrics = self.runner.evaluate(genome)?;
        let v = self.expr.eval(&metrics);
        // A composite objective can be non-finite (e.g. ratio with a zero
        // denominator); treat such points as infeasible.
        v.is_finite().then_some(v)
    }

    fn fitness_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<f64>>) {
        // One batched runner call per slice: the runner deduplicates
        // within-batch misses and characterizes them through the model's
        // structure-of-arrays kernel, so a GA worker evaluating a chunk of
        // the population pays one dynamic dispatch instead of one per
        // design point. Results and events stay in row order.
        let mut metrics = Vec::with_capacity(rows.len());
        self.runner.evaluate_rows(rows, &mut metrics);
        out.extend(metrics.into_iter().map(|m| {
            let v = self.expr.eval(&m?);
            v.is_finite().then_some(v)
        }));
    }
}

impl std::fmt::Debug for QueryFitness<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryFitness")
            .field("direction", &self.direction)
            .field("expr", &self.expr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testing::BowlModel;
    use crate::model::CostModel;

    #[test]
    fn fitness_evaluates_expression_through_cache() {
        let model = BowlModel::new(0.0).unwrap();
        let runner = SynthJobRunner::new(&model);
        let cost = MetricExpr::metric(model.catalog().require("cost").unwrap());
        let f = QueryFitness::new(&runner, cost, Direction::Minimize);
        let g = Genome::from_genes(vec![3, 11]);
        assert_eq!(f.fitness(&g), Some(1.0));
        assert_eq!(f.fitness(&g), Some(1.0));
        assert_eq!(runner.stats().jobs, 1);
        assert_eq!(f.direction(), Direction::Minimize);
    }

    #[test]
    fn infeasible_points_surface_as_none() {
        let model = BowlModel::new(0.0).unwrap();
        let runner = SynthJobRunner::new(&model);
        let cost = MetricExpr::metric(model.catalog().require("cost").unwrap());
        let f = QueryFitness::new(&runner, cost, Direction::Minimize);
        assert_eq!(f.fitness(&Genome::from_genes(vec![7, 0])), None);
    }

    #[test]
    fn non_finite_objective_is_infeasible() {
        let model = BowlModel::new(0.0).unwrap();
        let runner = SynthJobRunner::new(&model);
        // gain / (cost - cost) = inf everywhere.
        let cost = MetricExpr::metric(model.catalog().require("cost").unwrap());
        let gain = MetricExpr::metric(model.catalog().require("gain").unwrap());
        let broken = gain / (cost.clone() - cost);
        let f = QueryFitness::new(&runner, broken, Direction::Maximize);
        assert_eq!(f.fitness(&Genome::from_genes(vec![1, 1])), None);
    }

    #[test]
    fn fitness_rows_matches_per_point_fitness_and_caches_once() {
        let model = BowlModel::new(0.04).unwrap();
        let runner = SynthJobRunner::new(&model);
        let cost = MetricExpr::metric(model.catalog().require("cost").unwrap());
        let f = QueryFitness::new(&runner, cost, Direction::Minimize);
        // Mix feasible points, the infeasible stripe (x == 7) and a
        // duplicate row.
        let rows: Vec<[u32; 2]> = vec![[1, 2], [7, 3], [4, 4], [1, 2], [0, 19]];
        let flat: Vec<u32> = rows.iter().flatten().copied().collect();
        let mut batch = Vec::new();
        f.fitness_rows(GeneRows::new(&flat, 2), &mut batch);
        let serial: Vec<Option<f64>> =
            rows.iter().map(|r| f.fitness(&Genome::from_genes(r.to_vec()))).collect();
        assert_eq!(batch, serial);
        // 4 distinct rows: 3 feasible jobs + 1 infeasible probe, evaluated
        // once despite the serial re-query afterwards.
        let s = runner.stats();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.infeasible, 1);
    }

    #[test]
    fn ga_engine_runs_over_query_fitness() {
        let model = BowlModel::new(0.02).unwrap();
        let runner = SynthJobRunner::new(&model);
        let cost = MetricExpr::metric(model.catalog().require("cost").unwrap());
        let f = QueryFitness::new(&runner, cost, Direction::Minimize);
        let run = nautilus_ga::GaEngine::new(model.space(), &f).run(3).unwrap();
        assert!(run.best_value < 5.0, "GA over synth backend failed: {}", run.best_value);
        // The GA's distinct-eval accounting and the runner's job count agree
        // on feasible evaluations.
        assert_eq!(run.cache.distinct_evals, runner.stats().jobs);
    }
}
