//! Deterministic "synthesis noise" for surrogate cost models.
//!
//! Real EDA results are rugged: two adjacent design points can synthesize to
//! noticeably different area/frequency because of placement, packing and
//! timing-closure artifacts (compare the scatter in the paper's Figure 1).
//! Surrogate models reproduce that ruggedness with *stateless* noise derived
//! from a hash of the genome, so a design point always synthesizes to the
//! same value regardless of visit order — exactly like re-running XST on the
//! same RTL.

use nautilus_ga::rng::{hash_genes, mix_to_unit, splitmix64};
use nautilus_ga::Genome;

/// A standard-normal deviate derived from hash `h` (Box–Muller), clamped to
/// ±4σ so a single point can never be an absurd outlier.
#[must_use]
pub fn gauss_from_hash(h: u64) -> f64 {
    let u1 = mix_to_unit(h).max(1e-12);
    let u2 = mix_to_unit(splitmix64(h));
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    z.clamp(-4.0, 4.0)
}

/// A multiplicative log-normal noise factor for `genome`.
///
/// `salt` decorrelates metrics (use a different salt per metric); `sigma` is
/// the log-standard-deviation (0.05–0.10 matches FPGA synthesis jitter).
/// The factor is `exp(sigma * z)` with `z` standard normal, so it is always
/// positive and has median 1.
///
/// ```
/// use nautilus_ga::Genome;
/// use nautilus_synth::noise::noise_factor;
/// let g = Genome::from_genes(vec![1, 2, 3]);
/// let f = noise_factor(&g, 0xA0EA, 0.08);
/// assert!(f > 0.0);
/// assert_eq!(f, noise_factor(&g, 0xA0EA, 0.08), "noise is deterministic");
/// ```
#[must_use]
pub fn noise_factor(genome: &Genome, salt: u64, sigma: f64) -> f64 {
    noise_factor_genes(genome.genes(), salt, sigma)
}

/// Slice-native [`noise_factor`]: identical value for the same genes.
///
/// Batch evaluation kernels work over structure-of-arrays gene rows and
/// must not rehydrate a [`Genome`] per point just to derive noise.
#[must_use]
pub fn noise_factor_genes(genes: &[u32], salt: u64, sigma: f64) -> f64 {
    (sigma * gauss_from_hash(hash_genes(genes, salt))).exp()
}

/// A uniform deviate in `[lo, hi)` for `genome`, per `salt`.
#[must_use]
pub fn uniform_in(genome: &Genome, salt: u64, lo: f64, hi: f64) -> f64 {
    uniform_in_genes(genome.genes(), salt, lo, hi)
}

/// Slice-native [`uniform_in`]: identical value for the same genes.
#[must_use]
pub fn uniform_in_genes(genes: &[u32], salt: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * mix_to_unit(hash_genes(genes, salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_is_deterministic_and_bounded() {
        for i in 0..1000u64 {
            let z = gauss_from_hash(splitmix64(i));
            assert_eq!(z, gauss_from_hash(splitmix64(i)));
            assert!((-4.0..=4.0).contains(&z));
        }
    }

    #[test]
    fn gauss_has_roughly_standard_moments() {
        let n = 200_000u64;
        let samples: Vec<f64> = (0..n).map(|i| gauss_from_hash(splitmix64(i))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn noise_factor_is_positive_with_median_near_one() {
        let mut factors: Vec<f64> =
            (0..10_001u32).map(|i| noise_factor(&Genome::from_genes(vec![i]), 7, 0.08)).collect();
        assert!(factors.iter().all(|&f| f > 0.0));
        factors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = factors[factors.len() / 2];
        assert!((median - 1.0).abs() < 0.01, "median {median}");
        // 0.08 log-sigma keeps everything within a ~1.4x band at 4 sigma.
        assert!(factors.iter().all(|&f| (0.7..1.4).contains(&f)));
    }

    #[test]
    fn different_salts_decorrelate() {
        let g = Genome::from_genes(vec![1, 2, 3]);
        assert_ne!(noise_factor(&g, 1, 0.1), noise_factor(&g, 2, 0.1));
        assert_ne!(uniform_in(&g, 1, 0.0, 1.0), uniform_in(&g, 2, 0.0, 1.0));
    }

    #[test]
    fn slice_native_variants_match_genome_variants() {
        for i in 0..200u32 {
            let genes = vec![i, i * 3 + 1, i % 7];
            let g = Genome::from_genes(genes.clone());
            assert_eq!(noise_factor(&g, 0xA1, 0.07), noise_factor_genes(&genes, 0xA1, 0.07));
            assert_eq!(uniform_in(&g, 0xB2, 1.0, 9.0), uniform_in_genes(&genes, 0xB2, 1.0, 9.0));
        }
    }

    #[test]
    fn uniform_in_respects_bounds() {
        for i in 0..1000u32 {
            let g = Genome::from_genes(vec![i, i + 1]);
            let v = uniform_in(&g, 3, 5.0, 9.0);
            assert!((5.0..9.0).contains(&v), "{v}");
        }
    }
}
