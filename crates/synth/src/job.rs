//! The synthesis-job runner: a caching, accounting front-end to a cost model.
//!
//! Every search strategy evaluates through a [`SynthJobRunner`]. The runner
//! memoizes results (re-visiting a previously synthesized design is free,
//! as in the paper's methodology) and accounts both the number of distinct
//! synthesis jobs and the *simulated* EDA tool time they would have cost.
//!
//! Memoization is backed by a [`ShardedCache`](crate::ShardedCache): lock
//! striping keeps concurrent evaluators (batched GA scoring, parallel
//! strategy comparisons) from serializing on one global lock.

use std::collections::HashMap;
use std::time::Duration;

use nautilus_ga::{GeneRows, Genome};
use nautilus_obs::{SearchEvent, SearchObserver};

use crate::metric::MetricSet;
use crate::model::CostModel;
use crate::shard::{InsertOutcome, ShardedCache};

/// Counter snapshot of a [`SynthJobRunner`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobStats {
    /// Distinct feasible design points synthesized.
    pub jobs: u64,
    /// Distinct infeasible design points attempted.
    pub infeasible: u64,
    /// Lookups served from the cache.
    pub cache_hits: u64,
    /// Accumulated simulated EDA tool time for all jobs, in seconds.
    pub simulated_tool_secs: u64,
}

impl JobStats {
    /// Simulated tool time as a [`Duration`].
    #[must_use]
    pub fn simulated_tool_time(&self) -> Duration {
        Duration::from_secs(self.simulated_tool_secs)
    }

    /// Every evaluation request seen: jobs + infeasible + cache hits.
    #[must_use]
    pub fn total_lookups(&self) -> u64 {
        self.jobs + self.infeasible + self.cache_hits
    }

    /// Fraction of lookups served from the cache (0 when nothing was
    /// looked up yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_lookups();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A thread-safe caching evaluator over a [`CostModel`].
///
/// ```
/// use nautilus_synth::{SynthJobRunner, CostModel};
/// # use nautilus_ga::{ParamSpace, Genome};
/// # struct M { space: ParamSpace, catalog: nautilus_synth::MetricCatalog }
/// # impl CostModel for M {
/// #     fn name(&self) -> &str { "m" }
/// #     fn space(&self) -> &ParamSpace { &self.space }
/// #     fn catalog(&self) -> &nautilus_synth::MetricCatalog { &self.catalog }
/// #     fn evaluate(&self, g: &Genome) -> Option<nautilus_synth::MetricSet> {
/// #         Some(self.catalog.set(vec![f64::from(g.gene_at(0))]).unwrap())
/// #     }
/// # }
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let model = M {
/// #     space: ParamSpace::builder().int("x", 0, 3, 1).build()?,
/// #     catalog: nautilus_synth::MetricCatalog::new([("v", "")])?,
/// # };
/// let runner = SynthJobRunner::new(&model);
/// let g = Genome::from_genes(vec![2]);
/// runner.evaluate(&g);
/// runner.evaluate(&g); // cache hit: no new job
/// assert_eq!(runner.stats().jobs, 1);
/// assert_eq!(runner.stats().cache_hits, 1);
/// # Ok(()) }
/// ```
pub struct SynthJobRunner<'m> {
    model: &'m dyn CostModel,
    cache: ShardedCache,
    observer: &'m dyn SearchObserver,
}

impl<'m> SynthJobRunner<'m> {
    /// Creates a runner with an empty cache.
    #[must_use]
    pub fn new(model: &'m dyn CostModel) -> Self {
        SynthJobRunner { model, cache: ShardedCache::new(), observer: nautilus_obs::noop() }
    }

    /// Routes one [`SearchEvent::EvalCompleted`] per lookup to `observer`
    /// (plus a [`SearchEvent::CacheShardContended`] on lost insert races).
    #[must_use]
    pub fn with_observer(mut self, observer: &'m dyn SearchObserver) -> Self {
        self.observer = observer;
        self
    }

    /// The underlying cost model.
    #[must_use]
    pub fn model(&self) -> &'m dyn CostModel {
        self.model
    }

    /// Evaluates `genome`, synthesizing on a cache miss.
    ///
    /// Returns `None` for infeasible design points.
    pub fn evaluate(&self, genome: &Genome) -> Option<MetricSet> {
        if let Some(cached) = self.cache.lookup(genome) {
            self.emit(true, cached.is_some(), 0);
            return cached;
        }
        let result = self.model.evaluate(genome);
        let tool_secs = match &result {
            Some(_) => self.model.synth_time(genome).as_secs(),
            None => 0,
        };
        match self.cache.insert_or_hit(genome, &result, tool_secs) {
            InsertOutcome::Inserted => {
                self.emit(false, result.is_some(), tool_secs);
                result
            }
            // Another thread synthesized the same point concurrently; its
            // result wins and this lookup is accounted as a cache hit.
            InsertOutcome::Lost { cached, shard } => {
                if self.observer.enabled() {
                    self.observer.on_event(&SearchEvent::CacheShardContended { shard });
                }
                self.emit(true, cached.is_some(), 0);
                cached
            }
        }
    }

    /// Evaluates a contiguous batch of gene rows, appending one result per
    /// row to `out` in row order.
    ///
    /// Observable behavior matches calling
    /// [`evaluate`](SynthJobRunner::evaluate) once per row in order:
    /// identical results, one `EvalCompleted` event per row in row order,
    /// and identical final counter totals. The difference is dispatch
    /// shape: cache misses are deduplicated within the batch, packed into
    /// one contiguous structure-of-arrays buffer, and characterized by a
    /// single [`CostModel::evaluate_rows`] kernel call instead of one
    /// virtual `evaluate` dispatch per point. Within-batch duplicate
    /// misses resolve as cache hits, exactly as the serial order would
    /// produce.
    pub fn evaluate_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<MetricSet>>) {
        /// How row `i` resolves once the miss kernel has run.
        enum Slot {
            /// Served by the read path in pass 1 (always a plain hit).
            Hit(Option<MetricSet>),
            /// First occurrence of miss `idx`: inserts the kernel result.
            MissFirst(usize),
            /// Later occurrence of a within-batch miss: re-probes the
            /// cache after the first occurrence has inserted.
            MissDup(usize),
        }

        let gene_len = rows.gene_len();
        let mut slots: Vec<Slot> = Vec::with_capacity(rows.len());
        let mut miss_flat: Vec<u32> = Vec::new();
        let mut miss_genomes: Vec<Genome> = Vec::new();
        // First-occurrence index of each within-batch miss row; keys
        // borrow directly from the caller's flat buffer.
        let mut first_of: HashMap<&[u32], usize> = HashMap::new();
        let mut scratch = Genome::from_genes(Vec::with_capacity(gene_len));
        for row in rows.iter() {
            if let Some(&idx) = first_of.get(row) {
                slots.push(Slot::MissDup(idx));
                continue;
            }
            scratch.copy_from_slice(row);
            if let Some(cached) = self.cache.lookup(&scratch) {
                slots.push(Slot::Hit(cached));
            } else {
                first_of.insert(row, miss_genomes.len());
                slots.push(Slot::MissFirst(miss_genomes.len()));
                miss_flat.extend_from_slice(row);
                miss_genomes.push(scratch.clone());
            }
        }

        // One kernel call characterizes every distinct miss in the batch.
        let mut results: Vec<Option<MetricSet>> = Vec::with_capacity(miss_genomes.len());
        if !miss_genomes.is_empty() {
            self.model.evaluate_rows(GeneRows::new(&miss_flat, gene_len), &mut results);
            assert_eq!(
                results.len(),
                miss_genomes.len(),
                "cost model batch kernel must return one result per row"
            );
        }

        // Resolve rows in order so events and insert order match the
        // serial path exactly.
        for slot in slots {
            match slot {
                Slot::Hit(cached) => {
                    self.emit(true, cached.is_some(), 0);
                    out.push(cached);
                }
                Slot::MissFirst(idx) => {
                    let genome = &miss_genomes[idx];
                    let result = results[idx].clone();
                    let tool_secs = match &result {
                        Some(_) => self.model.synth_time(genome).as_secs(),
                        None => 0,
                    };
                    match self.cache.insert_or_hit(genome, &result, tool_secs) {
                        InsertOutcome::Inserted => {
                            self.emit(false, result.is_some(), tool_secs);
                            out.push(result);
                        }
                        InsertOutcome::Lost { cached, shard } => {
                            if self.observer.enabled() {
                                self.observer.on_event(&SearchEvent::CacheShardContended { shard });
                            }
                            self.emit(true, cached.is_some(), 0);
                            out.push(cached);
                        }
                    }
                }
                Slot::MissDup(idx) => {
                    let cached = self
                        .cache
                        .lookup(&miss_genomes[idx])
                        .expect("first occurrence inserted earlier in this pass");
                    self.emit(true, cached.is_some(), 0);
                    out.push(cached);
                }
            }
        }
    }

    /// Emits one `EvalCompleted` event when the observer is enabled.
    fn emit(&self, cached: bool, feasible: bool, tool_secs: u64) {
        if self.observer.enabled() {
            self.observer.on_event(&SearchEvent::EvalCompleted { cached, feasible, tool_secs });
        }
    }

    /// Counter snapshot, merged across all cache shards.
    #[must_use]
    pub fn stats(&self) -> JobStats {
        self.cache.stats()
    }

    /// Number of distinct feasible jobs run so far (the paper's
    /// "# designs evaluated").
    #[must_use]
    pub fn distinct_jobs(&self) -> u64 {
        self.stats().jobs
    }

    /// Number of memoized entries (feasible and infeasible).
    #[must_use]
    pub fn cached_points(&self) -> usize {
        self.cache.len()
    }

    /// Insert races lost across all shards: lookups that found the point
    /// already being synthesized by another thread.
    #[must_use]
    pub fn shard_contentions(&self) -> u64 {
        self.cache.contentions()
    }

    /// Enables per-shard lock-wait timing on the cache (builder form).
    #[must_use]
    pub fn with_lock_timing(self) -> Self {
        self.cache.enable_lock_timing();
        self
    }

    /// Enables per-shard lock-wait timing on the cache. Traced runs call
    /// this so contention can be attributed to the `shard_lock_wait`
    /// phase; untimed runs pay one relaxed load per acquisition.
    pub fn enable_lock_timing(&self) {
        self.cache.enable_lock_timing();
    }

    /// Per-shard occupancy and hit/miss/contention/lock-wait counters.
    #[must_use]
    pub fn shard_metrics(&self) -> Vec<crate::ShardMetrics> {
        self.cache.shard_metrics()
    }

    /// Whole-cache lock-wait aggregate: `(waits, total_nanos, max_nanos)`.
    #[must_use]
    pub fn lock_wait_totals(&self) -> (u64, u64, u64) {
        self.cache.lock_wait_totals()
    }

    /// Publishes per-shard cache gauges onto `registry`.
    pub fn publish_cache_metrics(&self, registry: &nautilus_obs::MetricsRegistry) {
        self.cache.publish_metrics(registry);
    }
}

impl std::fmt::Debug for SynthJobRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthJobRunner")
            .field("model", &self.model.name())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricCatalog;
    use crate::model::testing::BowlModel;
    use nautilus_ga::ParamSpace;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn distinct_jobs_counted_once() {
        let model = BowlModel::new(0.0).unwrap();
        let runner = SynthJobRunner::new(&model);
        let g = Genome::from_genes(vec![2, 3]);
        for _ in 0..5 {
            assert!(runner.evaluate(&g).is_some());
        }
        let s = runner.stats();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.cache_hits, 4);
        assert_eq!(runner.cached_points(), 1);
    }

    #[test]
    fn infeasible_points_tracked_separately_and_cost_no_tool_time() {
        let model = BowlModel::new(0.0).unwrap();
        let runner = SynthJobRunner::new(&model);
        let bad = Genome::from_genes(vec![7, 0]);
        assert!(runner.evaluate(&bad).is_none());
        assert!(runner.evaluate(&bad).is_none());
        let s = runner.stats();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.infeasible, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.simulated_tool_secs, 0);
    }

    #[test]
    fn simulated_tool_time_accumulates() {
        let model = BowlModel::new(0.0).unwrap();
        let runner = SynthJobRunner::new(&model);
        for x in 0..5u32 {
            runner.evaluate(&Genome::from_genes(vec![x, x]));
        }
        let s = runner.stats();
        assert_eq!(s.jobs, 5);
        // Each job simulates 5-45 minutes of tool time.
        assert!(s.simulated_tool_time() >= Duration::from_secs(5 * 5 * 60));
        assert!(s.simulated_tool_time() <= Duration::from_secs(5 * 45 * 60));
    }

    #[test]
    fn total_lookups_and_hit_rate_reconcile() {
        let empty = JobStats::default();
        assert_eq!(empty.total_lookups(), 0);
        assert_eq!(empty.hit_rate(), 0.0, "zero lookups must not divide by zero");

        let model = BowlModel::new(0.0).unwrap();
        let runner = SynthJobRunner::new(&model);
        let good = Genome::from_genes(vec![2, 3]);
        let bad = Genome::from_genes(vec![7, 0]);
        runner.evaluate(&good);
        runner.evaluate(&good);
        runner.evaluate(&good);
        runner.evaluate(&bad);
        let s = runner.stats();
        assert_eq!(s.total_lookups(), 4);
        assert_eq!(s.jobs + s.infeasible + s.cache_hits, s.total_lookups());
        assert!((s.hit_rate() - 0.5).abs() < 1e-12, "2 hits of 4 lookups: {}", s.hit_rate());
    }

    #[test]
    fn observed_runner_emits_one_event_per_lookup() {
        let model = BowlModel::new(0.0).unwrap();
        let sink = nautilus_obs::InMemorySink::new();
        let runner = SynthJobRunner::new(&model).with_observer(&sink);
        let good = Genome::from_genes(vec![1, 1]);
        let bad = Genome::from_genes(vec![7, 0]);
        runner.evaluate(&good); // miss, feasible
        runner.evaluate(&good); // hit
        runner.evaluate(&bad); // miss, infeasible
        let events = sink.events();
        assert_eq!(events.len(), 3);
        match &events[0] {
            SearchEvent::EvalCompleted { cached, feasible, tool_secs } => {
                assert!(!cached && *feasible);
                assert!(*tool_secs >= 5 * 60, "feasible misses charge tool time");
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(
            events[1],
            SearchEvent::EvalCompleted { cached: true, feasible: true, tool_secs: 0 }
        );
        assert_eq!(
            events[2],
            SearchEvent::EvalCompleted { cached: false, feasible: false, tool_secs: 0 }
        );
        // Event tallies reconcile with the runner's own counters.
        let s = runner.stats();
        assert_eq!(events.len() as u64, s.total_lookups());
    }

    #[test]
    fn concurrent_evaluation_counts_each_point_once() {
        let model = BowlModel::new(0.05).unwrap();
        let runner = SynthJobRunner::new(&model);
        crossbeam::scope(|scope| {
            for t in 0..8 {
                let runner = &runner;
                scope.spawn(move |_| {
                    for i in 0..100u32 {
                        // All threads hammer the same 20 points.
                        let g = Genome::from_genes(vec![(i + t) % 5, i % 4]);
                        runner.evaluate(&g);
                    }
                });
            }
        })
        .unwrap();
        let s = runner.stats();
        // 5 x values x 4 y values = 20 distinct points.
        assert_eq!(s.jobs, 20);
        assert_eq!(
            u64::from(runner.cached_points() as u32),
            20,
            "cache holds exactly the distinct points"
        );
        assert_eq!(s.cache_hits, 8 * 100 - 20);
    }

    /// A [`CostModel`] that counts every real evaluation it performs.
    struct CountingModel {
        space: ParamSpace,
        catalog: MetricCatalog,
        evals: AtomicU64,
    }

    impl CountingModel {
        fn new() -> CountingModel {
            CountingModel {
                space: ParamSpace::builder().int("x", 0, 4, 1).int("y", 0, 3, 1).build().unwrap(),
                catalog: MetricCatalog::new([("cost", "")]).unwrap(),
                evals: AtomicU64::new(0),
            }
        }
    }

    impl CostModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }

        fn space(&self) -> &ParamSpace {
            &self.space
        }

        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }

        fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
            self.evals.fetch_add(1, Ordering::Relaxed);
            // One infeasible stripe so both result kinds race.
            if g.gene_at(0) == 3 {
                return None;
            }
            let cost = f64::from(g.gene_at(0)) + 10.0 * f64::from(g.gene_at(1));
            Some(self.catalog.set(vec![cost]).unwrap())
        }
    }

    /// N real threads hammering the same 20 points: the sharded cache must
    /// run exactly one synthesis job per distinct point, and the merged
    /// stats must reconcile exactly with the lookups issued.
    ///
    /// `std::thread` is used directly so this exercises true concurrency
    /// regardless of how the `crossbeam` dependency schedules its scope.
    #[test]
    fn sharded_cache_hammer_runs_one_job_per_distinct_point() {
        const THREADS: u32 = 8;
        const ITERS: u32 = 100;
        let model = CountingModel::new();
        let runner = SynthJobRunner::new(&model);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let runner = &runner;
                scope.spawn(move || {
                    for i in 0..ITERS {
                        // Every thread walks the full 5x4 grid, offset by
                        // its id so first touches interleave across points.
                        let g = Genome::from_genes(vec![(i + t) % 5, i % 4]);
                        runner.evaluate(&g);
                    }
                });
            }
        });
        let s = runner.stats();
        // 5 x values x 4 y values = 20 distinct points; x == 3 stripe
        // (4 points) is infeasible.
        assert_eq!(s.jobs, 16, "one job per distinct feasible point");
        assert_eq!(s.infeasible, 4, "one probe per distinct infeasible point");
        assert_eq!(runner.cached_points(), 20);
        // The model ran once per distinct point, plus once per lost insert
        // race (the loser evaluated before discovering the winner's entry).
        let contentions = runner.shard_contentions();
        assert_eq!(
            model.evals.load(Ordering::Relaxed),
            20 + contentions,
            "model invocations reconcile with jobs + lost races"
        );
        // Every one of the 800 lookups is accounted exactly once.
        assert_eq!(s.total_lookups(), u64::from(THREADS * ITERS));
        assert_eq!(s.cache_hits, u64::from(THREADS * ITERS) - 20);
        // Infeasible jobs charge no tool time; feasible ones charge some.
        assert!(s.simulated_tool_secs > 0);
    }

    #[test]
    fn batch_evaluate_rows_matches_serial_results_events_and_counters() {
        let model = BowlModel::new(0.03).unwrap();
        // Rows mix fresh misses, an infeasible point, a pre-cached hit and
        // within-batch duplicates (one duplicated miss, one duplicated hit).
        let rows: Vec<[u32; 2]> =
            vec![[1, 2], [7, 0], [1, 2], [3, 11], [5, 5], [3, 11], [2, 2], [1, 2]];
        let flat: Vec<u32> = rows.iter().flatten().copied().collect();

        let serial_sink = nautilus_obs::InMemorySink::new();
        let serial = SynthJobRunner::new(&model).with_observer(&serial_sink);
        serial.evaluate(&Genome::from_genes(vec![9, 9])); // pre-cache a point
        let serial_out: Vec<Option<MetricSet>> =
            rows.iter().map(|r| serial.evaluate(&Genome::from_genes(r.to_vec()))).collect();

        let batch_sink = nautilus_obs::InMemorySink::new();
        let batch = SynthJobRunner::new(&model).with_observer(&batch_sink);
        batch.evaluate(&Genome::from_genes(vec![9, 9]));
        let mut batch_out = Vec::new();
        batch.evaluate_rows(GeneRows::new(&flat, 2), &mut batch_out);

        assert_eq!(batch_out, serial_out, "batch results must match the serial path");
        assert_eq!(batch.stats(), serial.stats(), "counter totals must match");
        assert_eq!(batch.cached_points(), serial.cached_points());
        assert_eq!(
            batch_sink.events(),
            serial_sink.events(),
            "per-row events must match serial order"
        );
    }

    #[test]
    fn batch_miss_kernel_runs_once_per_distinct_miss() {
        let model = CountingModel::new();
        let runner = SynthJobRunner::new(&model);
        // 4 distinct points, each duplicated: only 4 kernel rows evaluate.
        let flat: Vec<u32> =
            [[0u32, 0], [1, 1], [0, 0], [2, 2], [1, 1], [3, 0]].iter().flatten().copied().collect();
        let mut out = Vec::new();
        runner.evaluate_rows(GeneRows::new(&flat, 2), &mut out);
        assert_eq!(out.len(), 6);
        assert_eq!(model.evals.load(Ordering::Relaxed), 4, "duplicates must not re-evaluate");
        let s = runner.stats();
        assert_eq!(s.jobs + s.infeasible, 4);
        assert_eq!(s.cache_hits, 2, "within-batch duplicates resolve as hits");
        assert_eq!(out[0], out[2], "duplicate rows observe the first row's result");
    }

    #[test]
    fn contended_inserts_surface_as_events_and_counters() {
        let model = BowlModel::new(0.0).unwrap();
        let sink = nautilus_obs::InMemorySink::new();
        let runner = SynthJobRunner::new(&model).with_observer(&sink);
        let g = Genome::from_genes(vec![1, 2]);
        runner.evaluate(&g);
        runner.evaluate(&g);
        // Serial re-lookups are read-path hits, never contentions.
        assert_eq!(runner.shard_contentions(), 0);
        let contended = sink
            .events()
            .iter()
            .filter(|e| matches!(e, SearchEvent::CacheShardContended { .. }))
            .count();
        assert_eq!(contended, 0);
    }
}
