//! Metric expressions: the objective language of optimization queries.
//!
//! The paper optimizes raw metrics ("maximize frequency", "minimize LUTs")
//! and *composite* metrics ("throughput in MSPS divided by the number of
//! LUTs", "clock period × LUTs"). [`MetricExpr`] is a small arithmetic
//! expression tree over catalog metrics that covers all of these.

use std::fmt;
use std::ops;

use serde::{Deserialize, Serialize};

use crate::metric::{MetricCatalog, MetricId, MetricSet};

/// An arithmetic expression over the metrics of one catalog.
///
/// ```
/// use nautilus_synth::{MetricCatalog, MetricExpr};
/// # fn main() -> Result<(), nautilus_synth::SynthError> {
/// let catalog = MetricCatalog::new([("luts", "LUTs"), ("fmax", "MHz")])?;
/// let luts = MetricExpr::metric(catalog.require("luts")?);
/// let fmax = MetricExpr::metric(catalog.require("fmax")?);
///
/// // Area-delay product: clock period (ns) × LUTs.
/// let adp = MetricExpr::constant(1000.0) / fmax * luts;
///
/// let m = catalog.set(vec![500.0, 200.0])?;
/// assert_eq!(adp.eval(&m), 1000.0 / 200.0 * 500.0);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricExpr {
    /// A raw metric value.
    Metric(MetricId),
    /// A constant.
    Const(f64),
    /// Sum of two sub-expressions.
    Add(Box<MetricExpr>, Box<MetricExpr>),
    /// Difference of two sub-expressions.
    Sub(Box<MetricExpr>, Box<MetricExpr>),
    /// Product of two sub-expressions.
    Mul(Box<MetricExpr>, Box<MetricExpr>),
    /// Quotient of two sub-expressions.
    Div(Box<MetricExpr>, Box<MetricExpr>),
}

impl MetricExpr {
    /// A raw metric leaf.
    #[must_use]
    pub fn metric(id: MetricId) -> Self {
        MetricExpr::Metric(id)
    }

    /// A constant leaf.
    #[must_use]
    pub fn constant(v: f64) -> Self {
        MetricExpr::Const(v)
    }

    /// Convenience: the ratio `a / b` (e.g. throughput per LUT).
    #[must_use]
    pub fn ratio(a: MetricExpr, b: MetricExpr) -> Self {
        a / b
    }

    /// Convenience: `period_ns × area` from a frequency-in-MHz metric and an
    /// area metric — the paper's Figure 5 objective.
    #[must_use]
    pub fn area_delay(fmax_mhz: MetricId, area: MetricId) -> Self {
        MetricExpr::constant(1000.0) / MetricExpr::metric(fmax_mhz) * MetricExpr::metric(area)
    }

    /// Evaluates against one design's metric values.
    ///
    /// Division by zero follows IEEE semantics (yields ±inf or NaN); search
    /// engines treat non-finite objective values as infeasible.
    #[must_use]
    pub fn eval(&self, m: &MetricSet) -> f64 {
        match self {
            MetricExpr::Metric(id) => m.get(*id),
            MetricExpr::Const(c) => *c,
            MetricExpr::Add(a, b) => a.eval(m) + b.eval(m),
            MetricExpr::Sub(a, b) => a.eval(m) - b.eval(m),
            MetricExpr::Mul(a, b) => a.eval(m) * b.eval(m),
            MetricExpr::Div(a, b) => a.eval(m) / b.eval(m),
        }
    }

    /// All metric ids referenced by the expression, in first-use order
    /// without duplicates. Hint books use this to know which per-metric hint
    /// vectors apply to a query.
    #[must_use]
    pub fn referenced_metrics(&self) -> Vec<MetricId> {
        let mut out = Vec::new();
        self.collect_metrics(&mut out);
        out
    }

    fn collect_metrics(&self, out: &mut Vec<MetricId>) {
        match self {
            MetricExpr::Metric(id) => {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
            MetricExpr::Const(_) => {}
            MetricExpr::Add(a, b)
            | MetricExpr::Sub(a, b)
            | MetricExpr::Mul(a, b)
            | MetricExpr::Div(a, b) => {
                a.collect_metrics(out);
                b.collect_metrics(out);
            }
        }
    }

    /// Renders the expression with metric names from `catalog`.
    #[must_use]
    pub fn display_with<'a>(&'a self, catalog: &'a MetricCatalog) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, catalog }
    }
}

/// Displays a [`MetricExpr`] with human-readable metric names.
///
/// Produced by [`MetricExpr::display_with`].
#[derive(Debug)]
pub struct ExprDisplay<'a> {
    expr: &'a MetricExpr,
    catalog: &'a MetricCatalog,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &MetricExpr, c: &MetricCatalog, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                MetricExpr::Metric(id) => f.write_str(c.def(*id).name()),
                MetricExpr::Const(v) => write!(f, "{v}"),
                MetricExpr::Add(a, b) => bin(a, "+", b, c, f),
                MetricExpr::Sub(a, b) => bin(a, "-", b, c, f),
                MetricExpr::Mul(a, b) => bin(a, "*", b, c, f),
                MetricExpr::Div(a, b) => bin(a, "/", b, c, f),
            }
        }
        fn bin(
            a: &MetricExpr,
            op: &str,
            b: &MetricExpr,
            c: &MetricCatalog,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            f.write_str("(")?;
            go(a, c, f)?;
            write!(f, " {op} ")?;
            go(b, c, f)?;
            f.write_str(")")
        }
        go(self.expr, self.catalog, f)
    }
}

impl From<MetricId> for MetricExpr {
    fn from(id: MetricId) -> Self {
        MetricExpr::Metric(id)
    }
}

impl From<f64> for MetricExpr {
    fn from(v: f64) -> Self {
        MetricExpr::Const(v)
    }
}

impl ops::Add for MetricExpr {
    type Output = MetricExpr;
    fn add(self, rhs: MetricExpr) -> MetricExpr {
        MetricExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for MetricExpr {
    type Output = MetricExpr;
    fn sub(self, rhs: MetricExpr) -> MetricExpr {
        MetricExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for MetricExpr {
    type Output = MetricExpr;
    fn mul(self, rhs: MetricExpr) -> MetricExpr {
        MetricExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl ops::Div for MetricExpr {
    type Output = MetricExpr;
    fn div(self, rhs: MetricExpr) -> MetricExpr {
        MetricExpr::Div(Box::new(self), Box::new(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (MetricCatalog, MetricSet) {
        let c = MetricCatalog::new([("luts", "LUTs"), ("fmax", "MHz"), ("msps", "MSPS")]).unwrap();
        let m = c.set(vec![1000.0, 150.0, 600.0]).unwrap();
        (c, m)
    }

    #[test]
    fn leaves_evaluate() {
        let (c, m) = fixture();
        assert_eq!(MetricExpr::metric(c.id("fmax").unwrap()).eval(&m), 150.0);
        assert_eq!(MetricExpr::constant(2.5).eval(&m), 2.5);
    }

    #[test]
    fn operator_overloads_compose() {
        let (c, m) = fixture();
        let luts = MetricExpr::metric(c.id("luts").unwrap());
        let msps = MetricExpr::metric(c.id("msps").unwrap());
        let tpl = msps / luts.clone();
        assert!((tpl.eval(&m) - 0.6).abs() < 1e-12);
        let sum = luts.clone() + MetricExpr::constant(24.0);
        assert_eq!(sum.eval(&m), 1024.0);
        let diff = luts - MetricExpr::constant(1.0);
        assert_eq!(diff.eval(&m), 999.0);
    }

    #[test]
    fn area_delay_product_matches_definition() {
        let (c, m) = fixture();
        let adp = MetricExpr::area_delay(c.id("fmax").unwrap(), c.id("luts").unwrap());
        // period = 1000/150 ns, ADP = period * 1000 LUTs.
        assert!((adp.eval(&m) - (1000.0 / 150.0) * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn referenced_metrics_dedupes_in_order() {
        let (c, _) = fixture();
        let luts = c.id("luts").unwrap();
        let fmax = c.id("fmax").unwrap();
        let e = (MetricExpr::metric(fmax) * MetricExpr::metric(luts))
            / (MetricExpr::metric(fmax) + MetricExpr::constant(1.0));
        assert_eq!(e.referenced_metrics(), vec![fmax, luts]);
    }

    #[test]
    fn division_by_zero_is_non_finite() {
        let (c, _) = fixture();
        let m = c.set(vec![0.0, 0.0, 0.0]).unwrap();
        let tpl =
            MetricExpr::metric(c.id("msps").unwrap()) / MetricExpr::metric(c.id("luts").unwrap());
        assert!(tpl.eval(&m).is_nan());
        let inv = MetricExpr::constant(1.0) / MetricExpr::metric(c.id("luts").unwrap());
        assert!(inv.eval(&m).is_infinite());
    }

    #[test]
    fn display_uses_metric_names() {
        let (c, _) = fixture();
        let adp = MetricExpr::area_delay(c.id("fmax").unwrap(), c.id("luts").unwrap());
        assert_eq!(adp.display_with(&c).to_string(), "((1000 / fmax) * luts)");
    }

    #[test]
    fn conversions_from_leaves() {
        let (c, m) = fixture();
        let e: MetricExpr = c.id("luts").unwrap().into();
        assert_eq!(e.eval(&m), 1000.0);
        let k: MetricExpr = 3.0f64.into();
        assert_eq!(k.eval(&m), 3.0);
    }
}
