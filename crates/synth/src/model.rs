//! The cost-model abstraction: what an IP generator's EDA backend looks like
//! to a search engine.

use std::time::Duration;

use nautilus_ga::{GeneRows, Genome, ParamSpace};

use crate::metric::{MetricCatalog, MetricSet};
use crate::noise::uniform_in;

/// A characterization backend for one IP generator.
///
/// In the paper this is "running FPGA synthesis and/or simulations for each
/// design instance"; here it is an analytic surrogate. A model owns its
/// parameter space (the genetic representation) and its metric catalog (what
/// a synthesis run reports).
///
/// `evaluate` returning `None` marks the parameter combination *infeasible*:
/// the generator refuses to elaborate it (the paper's "sparsely populated
/// design spaces that include infeasible points or regions").
pub trait CostModel: Send + Sync {
    /// The IP generator's name, for reports.
    fn name(&self) -> &str;

    /// The parameter space the generator exposes.
    fn space(&self) -> &ParamSpace;

    /// The metrics a characterization run reports.
    fn catalog(&self) -> &MetricCatalog;

    /// Characterizes one design point, or `None` if infeasible.
    fn evaluate(&self, genome: &Genome) -> Option<MetricSet>;

    /// Characterizes a contiguous batch of gene rows, appending one result
    /// per row to `out` in row order.
    ///
    /// This is the structure-of-arrays entry point the parallel hot path
    /// uses: a worker hands the model one contiguous slice of design
    /// points instead of dispatching per genome. The default rehydrates a
    /// single reused scratch [`Genome`] (no per-row allocation) and calls
    /// [`CostModel::evaluate`]; slice-native models override this to skip
    /// the rehydration entirely. Overrides must return bit-identical
    /// results in row order — cross-worker determinism depends on it.
    fn evaluate_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<MetricSet>>) {
        let mut scratch = Genome::from_genes(Vec::with_capacity(rows.gene_len()));
        for row in rows.iter() {
            scratch.copy_from_slice(row);
            out.push(self.evaluate(&scratch));
        }
    }

    /// Simulated EDA tool runtime for synthesizing this design point.
    ///
    /// The default draws a deterministic 5–45 simulated minutes per job,
    /// matching the paper's "minutes to hours of EDA execution time".
    /// Models may override this with an area-dependent estimate.
    fn synth_time(&self, genome: &Genome) -> Duration {
        let minutes = uniform_in(genome, 0x51_AE, 5.0, 45.0);
        Duration::from_secs_f64(minutes * 60.0)
    }
}

#[cfg(test)]
pub(crate) mod testing {
    //! A tiny closed-form model shared by this crate's tests.

    use super::*;
    use crate::error::Result;
    use crate::noise::noise_factor;

    /// Quadratic-bowl model over a 2-D integer space with a known optimum,
    /// one infeasible stripe, and optional noise.
    #[derive(Debug)]
    pub struct BowlModel {
        space: ParamSpace,
        catalog: MetricCatalog,
        pub sigma: f64,
    }

    impl BowlModel {
        pub fn new(sigma: f64) -> Result<BowlModel> {
            Ok(BowlModel {
                space: ParamSpace::builder()
                    .int("x", 0, 19, 1)
                    .int("y", 0, 19, 1)
                    .build()
                    .expect("static space"),
                catalog: MetricCatalog::new([("cost", "units"), ("gain", "units")])?,
                sigma,
            })
        }
    }

    impl CostModel for BowlModel {
        fn name(&self) -> &str {
            "bowl"
        }

        fn space(&self) -> &ParamSpace {
            &self.space
        }

        fn catalog(&self) -> &MetricCatalog {
            &self.catalog
        }

        fn evaluate(&self, genome: &Genome) -> Option<MetricSet> {
            let x = f64::from(genome.gene_at(0));
            let y = f64::from(genome.gene_at(1));
            // Infeasible stripe: x == 7.
            if genome.gene_at(0) == 7 {
                return None;
            }
            let cost = ((x - 3.0).powi(2) + (y - 11.0).powi(2) + 1.0)
                * noise_factor(genome, 11, self.sigma);
            let gain = (x + 2.0 * y + 1.0) * noise_factor(genome, 22, self.sigma);
            Some(self.catalog.set(vec![cost, gain]).expect("arity matches catalog"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::BowlModel;
    use super::*;

    #[test]
    fn bowl_model_shape() {
        let m = BowlModel::new(0.0).unwrap();
        let best = m.space().genome_from_values([
            ("x", nautilus_ga::ParamValue::Int(3)),
            ("y", nautilus_ga::ParamValue::Int(11)),
        ]);
        let best = best.unwrap();
        let ms = m.evaluate(&best).unwrap();
        let cost_id = m.catalog().require("cost").unwrap();
        assert_eq!(ms.get(cost_id), 1.0);
        // Infeasible stripe.
        let bad = m.space().genome_from_values([
            ("x", nautilus_ga::ParamValue::Int(7)),
            ("y", nautilus_ga::ParamValue::Int(0)),
        ]);
        assert!(m.evaluate(&bad.unwrap()).is_none());
    }

    #[test]
    fn default_synth_time_is_deterministic_and_in_range() {
        let m = BowlModel::new(0.0).unwrap();
        let g = Genome::from_genes(vec![1, 2]);
        let t = m.synth_time(&g);
        assert_eq!(t, m.synth_time(&g));
        assert!(t >= Duration::from_secs(5 * 60));
        assert!(t <= Duration::from_secs(45 * 60));
    }

    #[test]
    fn default_evaluate_rows_matches_per_point_evaluation() {
        let m = BowlModel::new(0.05).unwrap();
        let points: Vec<[u32; 2]> = (0..30).map(|i| [i % 20, (i * 3) % 20]).collect();
        let flat: Vec<u32> = points.iter().flatten().copied().collect();
        let mut batch = Vec::new();
        m.evaluate_rows(GeneRows::new(&flat, 2), &mut batch);
        assert_eq!(batch.len(), points.len());
        for (p, got) in points.iter().zip(&batch) {
            let serial = m.evaluate(&Genome::from_genes(p.to_vec()));
            assert_eq!(*got, serial, "batch row diverged for {p:?}");
        }
    }

    #[test]
    fn evaluation_is_deterministic_even_with_noise() {
        let m = BowlModel::new(0.1).unwrap();
        let g = Genome::from_genes(vec![5, 9]);
        assert_eq!(m.evaluate(&g), m.evaluate(&g));
    }
}
