//! Property-based tests for the synthesis substrate: metric expressions
//! and dataset rank/percentile queries.

use nautilus_ga::{Direction, Genome, ParamSpace};
use nautilus_synth::{CostModel, Dataset, MetricCatalog, MetricExpr, MetricSet};
use proptest::prelude::*;

/// A linear-ish model over a small 3-D grid, for dataset properties.
#[derive(Debug)]
struct Grid {
    space: ParamSpace,
    catalog: MetricCatalog,
    w: [f64; 3],
}

impl Grid {
    fn new(w: [f64; 3]) -> Self {
        Grid {
            space: ParamSpace::builder()
                .int("a", 0, 7, 1)
                .int("b", 0, 7, 1)
                .int("c", 0, 7, 1)
                .build()
                .expect("static space"),
            catalog: MetricCatalog::new([("m0", "u"), ("m1", "u")]).expect("static catalog"),
            w,
        }
    }
}

impl CostModel for Grid {
    fn name(&self) -> &str {
        "grid"
    }
    fn space(&self) -> &ParamSpace {
        &self.space
    }
    fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }
    fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
        let v: f64 = g.genes().iter().zip(self.w).map(|(&x, w)| w * f64::from(x)).sum();
        Some(self.catalog.set(vec![v, 100.0 - v]).expect("arity"))
    }
}

/// Arbitrary small metric expression over a 2-metric catalog.
fn arb_expr(depth: u32) -> BoxedStrategy<MetricExpr> {
    let catalog = MetricCatalog::new([("m0", "u"), ("m1", "u")]).expect("static catalog");
    let m0 = catalog.require("m0").expect("m0");
    let m1 = catalog.require("m1").expect("m1");
    let leaf = prop_oneof![
        Just(MetricExpr::metric(m0)),
        Just(MetricExpr::metric(m1)),
        (-10.0f64..10.0).prop_map(MetricExpr::constant),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (inner.clone(), inner, 0u8..4).prop_map(|(a, b, op)| match op {
            0 => a + b,
            1 => a - b,
            2 => a * b,
            _ => a / b,
        })
    })
    .boxed()
}

proptest! {
    /// Expression evaluation is a pure function of the metric values.
    #[test]
    fn expr_eval_is_deterministic(expr in arb_expr(4), v0 in -50.0f64..50.0, v1 in -50.0f64..50.0) {
        let catalog = MetricCatalog::new([("m0", "u"), ("m1", "u")]).unwrap();
        let m = catalog.set(vec![v0, v1]).unwrap();
        let a = expr.eval(&m);
        let b = expr.eval(&m);
        prop_assert!(a == b || (a.is_nan() && b.is_nan()));
    }

    /// Constant-only expressions reference no metrics; others reference a
    /// subset of the catalog.
    #[test]
    fn referenced_metrics_is_a_catalog_subset(expr in arb_expr(4)) {
        let refs = expr.referenced_metrics();
        prop_assert!(refs.len() <= 2);
        for r in refs {
            prop_assert!(r.index() < 2);
        }
    }

    /// Dataset extremes, percentiles and thresholds are mutually
    /// consistent for any model weights.
    #[test]
    fn dataset_rank_queries_are_consistent(
        w0 in 0.5f64..5.0,
        w1 in 0.5f64..5.0,
        w2 in 0.5f64..5.0,
        frac in 0.01f64..0.5,
    ) {
        let model = Grid::new([w0, w1, w2]);
        let d = Dataset::characterize(&model, 2).unwrap();
        let m0 = MetricExpr::metric(d.catalog().require("m0").unwrap());
        for dir in [Direction::Minimize, Direction::Maximize] {
            let (_, best) = d.best(&m0, dir);
            let (_, worst) = d.worst(&m0, dir);
            prop_assert!(!dir.is_better(worst, best));
            prop_assert_eq!(d.quality_pct(&m0, dir, best), 100.0);
            prop_assert!((d.normalized_score(&m0, dir, best) - 100.0).abs() < 1e-9);
            prop_assert!(d.normalized_score(&m0, dir, worst).abs() < 1e-9);

            // The top-`frac` threshold admits ~frac of the dataset.
            let t = d.top_fraction_threshold(&m0, dir, frac);
            let n = d.count_reaching(&m0, dir, t);
            let observed = n as f64 / d.len() as f64;
            prop_assert!(observed >= frac * 0.99, "threshold too tight: {observed} < {frac}");
            // Ties can push the count above the ideal fraction, but the
            // count just below the threshold must be smaller than asked.
            prop_assert!(
                d.expected_random_draws(&m0, dir, t).unwrap() <= 1.0 / frac * 1.01 + 1.0
            );
        }
    }

    /// quality_pct is monotone: improving the value never lowers the
    /// percentile.
    #[test]
    fn quality_pct_is_monotone(w0 in 0.5f64..5.0, v in 0.0f64..60.0, delta in 0.0f64..20.0) {
        let model = Grid::new([w0, 1.0, 1.0]);
        let d = Dataset::characterize(&model, 2).unwrap();
        let m0 = MetricExpr::metric(d.catalog().require("m0").unwrap());
        let better = d.quality_pct(&m0, Direction::Minimize, v);
        let worse = d.quality_pct(&m0, Direction::Minimize, v + delta);
        prop_assert!(better >= worse);
    }
}
