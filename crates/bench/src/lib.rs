//! # nautilus-bench — the paper's evaluation, regenerated
//!
//! One function per figure of the DAC'15 Nautilus paper (Figures 1–7; the
//! paper has no numbered tables, so its in-text convergence-cost claims
//! are collected as "Table A"). Each returns an [`ExperimentReport`] with
//! paper-vs-measured headlines, a rendered data table and CSV artifacts.
//!
//! Run everything with the `experiments` binary:
//!
//! ```text
//! cargo run --release -p nautilus-bench --bin experiments           # all, paper scale
//! cargo run --release -p nautilus-bench --bin experiments -- fig4   # one figure
//! cargo run --release -p nautilus-bench --bin experiments -- --quick all
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod data;
pub mod figures;
pub mod report;
pub mod subprocess;
pub mod telemetry;
pub mod traceview;

pub use chaos::{
    chaos_digest, chaos_recover_digest, chaos_resume_digest, chaos_victim, hang_storm_digest,
    CHAOS_TRANSIENT_RATE, STORM_HANG_RATE,
};
pub use figures::{
    abl_confidence, abl_decay, abl_hint_classes, abl_metaheuristics, abl_operators,
    abl_wrong_hints, all_ablations, fig1, fig2, fig3, fig4, fig5, fig6, fig7, Scale,
};
pub use report::{render_table_a, ExperimentReport, Headline};
pub use subprocess::{
    clean_digest, measure_subprocess_dispatch, subprocess_chaos_digest, subprocess_clean_digest,
    subprocess_storm_digest, DispatchReport,
};
pub use telemetry::{
    capture_chaos_telemetry, capture_telemetry, capture_traced, TelemetryArtifacts, TraceArtifacts,
};
pub use traceview::{
    diff_artifacts, digest, parse_trace, summarize, DiffReport, TraceData, TraceDigest,
    TraceSummary, TraceViewError,
};
