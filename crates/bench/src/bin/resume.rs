//! Kill-and-resume determinism gate for the crash-safe search path.
//!
//! Two modes, both printing the same digest format as the `chaos` binary
//! so `scripts/check.sh` can diff them against a straight-through run:
//!
//! * **Budget mode** (default): interrupt each chaos search after
//!   `--budget-generations` generations with durable checkpoints in
//!   `--dir`, then resume from disk to completion.
//!
//!   ```text
//!   resume --seed 2 --workers 8 --dir /tmp/ckpt --budget-generations 2
//!   ```
//!
//! * **Kill mode** (`--kill`): re-spawn this binary as a slowed-down
//!   victim (`--victim`), SIGKILL it once checkpoints appear on disk,
//!   then recover whatever state survived and finish the searches.
//!
//!   ```text
//!   resume --seed 1 --workers 1 --dir /tmp/ckpt --kill
//!   ```
//!
//! The victim additionally wires SIGINT and SIGTERM to the run budget's
//! cooperative cancel flag: Ctrl-C or a service manager's stop both halt
//! at the next generation boundary with a final checkpoint instead of
//! tearing the process down mid-write.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use nautilus_bench::{chaos_digest, chaos_recover_digest, chaos_resume_digest, chaos_victim};

/// SIGINT's POSIX signal number.
const SIGINT: i32 = 2;
/// SIGTERM's POSIX signal number — service managers send this on stop,
/// and it must drain exactly like Ctrl-C rather than kill mid-write.
const SIGTERM: i32 = 15;

static CANCEL: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(flag) = CANCEL.get() {
        flag.store(true, Ordering::Release);
    }
}

/// Installs `on_sigint` for SIGINT and SIGTERM and returns the cancel
/// flag it raises.
fn install_sigint_cancel() -> Arc<AtomicBool> {
    let flag = CANCEL.get_or_init(|| Arc::new(AtomicBool::new(false))).clone();
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_sigint);
        signal(SIGTERM, on_sigint);
    }
    flag
}

struct Cli {
    seed: u64,
    workers: usize,
    dir: Option<PathBuf>,
    budget_generations: u32,
    kill: bool,
    victim: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: resume [--seed N] [--workers N] [--dir PATH] \
         [--budget-generations N] [--kill | --victim]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli =
        Cli { seed: 1, workers: 1, dir: None, budget_generations: 2, kill: false, victim: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cli.seed = v,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cli.workers = v,
                None => usage(),
            },
            "--dir" => match args.next() {
                Some(v) => cli.dir = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--budget-generations" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cli.budget_generations = v,
                None => usage(),
            },
            "--kill" => cli.kill = true,
            "--victim" => cli.victim = true,
            _ => usage(),
        }
    }
    if cli.kill && cli.victim {
        usage();
    }
    cli
}

/// Spawns this binary as a slowed victim writing checkpoints into `dir`,
/// SIGKILLs it once checkpoint files exist, and returns once it is dead.
fn kill_a_victim(cli: &Cli, dir: &Path) {
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .arg("--victim")
        .arg("--seed")
        .arg(cli.seed.to_string())
        .arg("--workers")
        .arg(cli.workers.to_string())
        .arg("--dir")
        .arg(dir)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim process");

    // Wait until the victim has durable state worth losing: at least two
    // checkpoint records in the baseline directory.
    let baseline = dir.join("baseline");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let checkpoints = std::fs::read_dir(&baseline)
            .map(|entries| {
                entries
                    .filter_map(std::result::Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "nckpt"))
                    .count()
            })
            .unwrap_or(0);
        if checkpoints >= 2 {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            // Victim finished before we could kill it — its checkpoints
            // are still on disk, recovery just replays the ending.
            eprintln!("victim exited early ({status}); recovering its final state");
            return;
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            eprintln!("victim produced no checkpoints within 30s");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL victim");
    let _ = child.wait();
}

fn main() {
    let cli = parse_cli();
    let dir = cli.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("nautilus-resume-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).expect("create checkpoint directory");

    if cli.victim {
        let cancel = install_sigint_cancel();
        let digest = chaos_victim(cli.seed, cli.workers, &dir, Duration::from_millis(2), cancel);
        println!("{digest}");
        return;
    }

    let digest = if cli.kill {
        kill_a_victim(&cli, &dir);
        chaos_recover_digest(cli.seed, cli.workers, &dir)
    } else {
        chaos_resume_digest(cli.seed, cli.workers, &dir, cli.budget_generations)
    };
    println!("{digest}");

    // Belt-and-braces self-check so a mis-wired gate fails loudly even if
    // the caller forgets to diff: the resumed digest must equal a straight
    // in-process run.
    let straight = chaos_digest(cli.seed, cli.workers);
    if digest != straight {
        eprintln!("resumed digest diverged from straight-through run");
        std::process::exit(1);
    }
}
