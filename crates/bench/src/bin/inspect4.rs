use nautilus_ga::Direction;
use nautilus_synth::MetricExpr;
fn main() {
    let d = nautilus_bench::data::router_dataset();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").unwrap());
    let (_, best) = d.best(&fmax, Direction::Maximize);
    for frac in [0.97, 0.98, 0.99, 0.995] {
        let n = d.count_reaching(&fmax, Direction::Maximize, frac * best);
        println!(
            "within {:.1}% of best ({:.1} MHz): {} designs (random: {:.0} draws)",
            (1.0 - frac) * 100.0,
            frac * best,
            n,
            d.len() as f64 / n as f64
        );
    }
}
