//! `mock-synth` — a stand-in synthesis tool speaking the `NAUTPROC`
//! protocol over stdin/stdout.
//!
//! This is the out-of-process counterpart of the in-process cost models:
//! it characterizes the same dataset the parent replays and answers every
//! `Eval` frame from it, so a search routed through
//! `Nautilus::with_subprocess_evaluator` lands on byte-identical outcomes.
//! Fault knobs turn it into a chaos instrument — the seeded `FaultPlan`
//! mirrors `--fault-plan` runs bit for bit, while `--crash-after`,
//! `--hang-on-hash` and `--garbage-rate` model the messier ways real
//! tools die (no reply, silence, undecodable output).
//!
//! ```text
//! mock-synth --model router --plan-seed 3 --transient-rate 0.10
//! mock-synth --model router --crash-after 40        # dies every 40th request
//! mock-synth --model fft --garbage-rate 0.05 --slow-ms 2
//! ```
//!
//! Exit codes: 0 orderly shutdown, 1 protocol error, 2 bad usage,
//! 101 dying-gasp transient, 102 crash-after, 103 wrote garbage.

use std::io::Write;

use nautilus::proc::{serve, ServeExit, ServeOptions};
use nautilus_bench::data::{connect_dataset, fft_dataset, router_dataset};
use nautilus_synth::FaultPlan;

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a value");
        std::process::exit(2);
    })
}

fn main() {
    let mut model_name = String::from("router");
    let mut plan_seed: Option<u64> = None;
    let mut transient_rate = 0.0f64;
    let mut timeout_rate = 0.0f64;
    let mut corrupt_rate = 0.0f64;
    let mut persistent_rate = 0.0f64;
    let mut hang_rate = 0.0f64;
    let mut opts = ServeOptions::default();
    let mut log_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => model_name = parse(&mut args, "--model"),
            "--plan-seed" => plan_seed = Some(parse(&mut args, "--plan-seed")),
            "--transient-rate" => transient_rate = parse(&mut args, "--transient-rate"),
            "--timeout-rate" => timeout_rate = parse(&mut args, "--timeout-rate"),
            "--corrupt-rate" => corrupt_rate = parse(&mut args, "--corrupt-rate"),
            "--persistent-rate" => persistent_rate = parse(&mut args, "--persistent-rate"),
            "--hang-rate" => hang_rate = parse(&mut args, "--hang-rate"),
            "--crash-after" => opts.crash_after = Some(parse(&mut args, "--crash-after")),
            "--hang-on-hash" => opts.hang_on_hash = Some(parse(&mut args, "--hang-on-hash")),
            "--garbage-rate" => opts.garbage_rate = parse(&mut args, "--garbage-rate"),
            "--garbage-seed" => opts.garbage_seed = parse(&mut args, "--garbage-seed"),
            "--slow-ms" => opts.slow_ms = parse(&mut args, "--slow-ms"),
            "--log" => log_path = Some(parse(&mut args, "--log")),
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: mock-synth [--model router|connect|fft] \
                     [--plan-seed S] [--transient-rate R] [--timeout-rate R] [--corrupt-rate R] \
                     [--persistent-rate R] [--hang-rate R] [--crash-after K] [--hang-on-hash H] \
                     [--garbage-rate R] [--garbage-seed S] [--slow-ms M] [--log FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    opts.plan = plan_seed.map(|seed| {
        FaultPlan::new(seed)
            .with_transient_rate(transient_rate)
            .with_timeout_rate(timeout_rate)
            .with_corrupt_rate(corrupt_rate)
            .with_persistent_rate(persistent_rate)
            .with_hang_rate(hang_rate)
    });
    if opts.plan.is_none()
        && (transient_rate > 0.0
            || timeout_rate > 0.0
            || corrupt_rate > 0.0
            || persistent_rate > 0.0
            || hang_rate > 0.0)
    {
        eprintln!("fault rates require --plan-seed");
        std::process::exit(2);
    }

    let dataset = match model_name.as_str() {
        "router" => router_dataset(),
        "connect" => connect_dataset(),
        "fft" => fft_dataset(),
        other => {
            eprintln!("unknown model `{other}`; expected router, connect or fft");
            std::process::exit(2);
        }
    };
    let model = dataset.as_model();

    let mut log = log_path.map(|p| {
        std::fs::OpenOptions::new().create(true).append(true).open(&p).unwrap_or_else(|e| {
            eprintln!("cannot open --log {p}: {e}");
            std::process::exit(2);
        })
    });
    let on_request = |hash: u64, attempt: u32| {
        if let Some(f) = log.as_mut() {
            let _ = writeln!(f, "{hash} {attempt}");
        }
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let exit = serve(&model, &opts, &mut stdin.lock(), &mut stdout.lock(), on_request);
    match exit {
        Ok(ServeExit::Shutdown) => {}
        Ok(ServeExit::Dying) => std::process::exit(101),
        Ok(ServeExit::CrashRequested) => std::process::exit(102),
        Ok(ServeExit::HangRequested) => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
        Ok(ServeExit::WroteGarbage) => std::process::exit(103),
        Err(e) => {
            eprintln!("mock-synth protocol error: {e}");
            std::process::exit(1);
        }
    }
}
