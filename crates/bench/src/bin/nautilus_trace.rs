//! Offline analysis CLI for Nautilus profiling artifacts.
//!
//! Usage:
//!
//! ```text
//! nautilus-trace summarize TRACE.json
//! nautilus-trace diff A B
//! nautilus-trace capture DIR [SEED]
//! ```
//!
//! * **summarize** prints the per-phase attribution tables (count, total,
//!   self time, percent of wall) — one for the merge thread's track,
//!   whose self times telescope to the wall clock, and one aggregating
//!   the worker tracks' *concurrent* CPU time, which may sum past 100% —
//!   plus per-track busy time / utilization and a critical-path estimate
//!   for one `*.trace.json` file.
//! * **diff** compares the *logical* content of two artifacts of the same
//!   kind — two Perfetto trace files (structural digest: tracks, span
//!   counts, per-track span sequences, aggregate counts) or two JSONL
//!   event streams (timing fields and batch-shape events normalized
//!   away). Same-seed runs of the same build must diff clean; exit code 1
//!   flags differences, 2 flags malformed input.
//! * **capture** runs the exemplar traced baseline/guided pair (the
//!   router Fmax query) into DIR, default seed 27; this is what the
//!   `scripts/check.sh` trace-determinism gate captures twice and diffs.

use std::path::Path;
use std::process::ExitCode;

use nautilus_bench::{capture_traced, diff_artifacts, parse_trace, summarize};

const USAGE: &str = "usage: nautilus-trace summarize TRACE.json | diff A B | capture DIR [SEED]";

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") if args.len() == 2 => {
            let text = match read(&args[1]) {
                Ok(text) => text,
                Err(code) => return code,
            };
            match parse_trace(&text) {
                Ok(data) => {
                    print!("{}", summarize(&data));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{}: malformed trace: {e}", args[1]);
                    ExitCode::from(2)
                }
            }
        }
        Some("diff") if args.len() == 3 => {
            let (a, b) = match (read(&args[1]), read(&args[2])) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            match diff_artifacts(&a, &b) {
                Ok(report) if report.differences.is_empty() => {
                    println!("identical ({} content)", report.mode);
                    ExitCode::SUCCESS
                }
                Ok(report) => {
                    println!(
                        "{} logical difference(s) ({} content):",
                        report.differences.len(),
                        report.mode
                    );
                    for d in &report.differences {
                        println!("  {d}");
                    }
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("malformed artifact: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("capture") if args.len() == 2 || args.len() == 3 => {
            let seed = match args.get(2).map(|s| s.parse::<u64>()) {
                Some(Ok(seed)) => seed,
                Some(Err(_)) => {
                    eprintln!("SEED must be an unsigned integer");
                    return ExitCode::from(2);
                }
                None => 27,
            };
            match capture_traced(Path::new(&args[1]), seed) {
                Ok(artifacts) => {
                    for a in artifacts {
                        println!(
                            "captured {} trace: {} + {} + {}",
                            a.strategy,
                            a.trace_path.display(),
                            a.events_path.display(),
                            a.report_path.display()
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("could not capture traces into {}: {e}", args[1]);
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
