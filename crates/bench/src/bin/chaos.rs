//! Prints the deterministic chaos-run digest for one (seed, workers)
//! pair. `scripts/check.sh` diffs this binary's output across worker
//! counts to gate on evaluation-pipeline determinism under faults.
//!
//! ```text
//! cargo run --release -p nautilus-bench --bin chaos -- --seed 3 --workers 8
//! cargo run --release -p nautilus-bench --bin chaos -- --storm hang --workers 8
//! ```
//!
//! `--storm hang` selects the supervised hang-storm digest (watchdog,
//! hedging and circuit-breaker counters included). `--check-workers N`
//! additionally recomputes the digest at `N` workers in-process and exits
//! nonzero with a one-line reason if the two diverge, so the gate fails
//! loudly even when the calling script forgets to diff.

use nautilus_bench::{chaos_digest, hang_storm_digest};

enum Storm {
    Transient,
    Hang,
}

fn main() {
    let mut seed = 1u64;
    let mut workers = 1usize;
    let mut storm = Storm::Transient;
    let mut check_workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--workers expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--storm" => match args.next().as_deref() {
                Some("transient") => storm = Storm::Transient,
                Some("hang") => storm = Storm::Hang,
                _ => {
                    eprintln!("--storm expects `transient` or `hang`");
                    std::process::exit(2);
                }
            },
            "--check-workers" => {
                check_workers = args.next().and_then(|v| v.parse().ok()).or_else(|| {
                    eprintln!("--check-workers expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: chaos [--seed N] [--workers N] \
                     [--storm transient|hang] [--check-workers N]"
                );
                std::process::exit(2);
            }
        }
    }
    let digest_at = |workers: usize| match storm {
        Storm::Transient => chaos_digest(seed, workers),
        Storm::Hang => hang_storm_digest(seed, workers),
    };
    let digest = digest_at(workers);
    println!("{digest}");
    if let Some(other) = check_workers {
        if digest_at(other) != digest {
            eprintln!("chaos digest diverged between {workers} and {other} workers at seed {seed}");
            std::process::exit(1);
        }
    }
}
