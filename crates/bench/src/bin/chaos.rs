//! Prints the deterministic chaos-run digest for one (seed, workers)
//! pair. `scripts/check.sh` diffs this binary's output across worker
//! counts — and across the process boundary — to gate on
//! evaluation-pipeline determinism under faults.
//!
//! ```text
//! cargo run --release -p nautilus-bench --bin chaos -- --seed 3 --workers 8
//! cargo run --release -p nautilus-bench --bin chaos -- --storm hang --workers 8
//! cargo run --release -p nautilus-bench --bin chaos -- --subprocess target/release/mock-synth
//! ```
//!
//! `--storm` selects the digest family: `transient` (default), `hang`
//! (supervised hang storm, health counters included), or `clean` (no
//! faults). `--subprocess TOOL` reruns the *same* digest with every
//! evaluation served by a `mock-synth` pool at TOOL — fault storms move
//! to the tool side (`--plan-seed`), crashes become real process deaths —
//! and exits nonzero if the two digests differ by even one byte; the
//! in-process digest is printed either way. `--check-workers N`
//! additionally recomputes the digest at `N` workers in-process and exits
//! nonzero with a one-line reason if the two diverge, so the gate fails
//! loudly even when the calling script forgets to diff.

use std::path::PathBuf;

use nautilus_bench::{
    chaos_digest, clean_digest, hang_storm_digest, subprocess_chaos_digest,
    subprocess_clean_digest, subprocess_storm_digest,
};

enum Storm {
    Transient,
    Hang,
    Clean,
}

fn main() {
    let mut seed = 1u64;
    let mut workers = 1usize;
    let mut storm = Storm::Transient;
    let mut check_workers: Option<usize> = None;
    let mut subprocess: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--workers expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--storm" => match args.next().as_deref() {
                Some("transient") => storm = Storm::Transient,
                Some("hang") => storm = Storm::Hang,
                Some("clean") => storm = Storm::Clean,
                _ => {
                    eprintln!("--storm expects `transient`, `hang` or `clean`");
                    std::process::exit(2);
                }
            },
            "--check-workers" => {
                check_workers = args.next().and_then(|v| v.parse().ok()).or_else(|| {
                    eprintln!("--check-workers expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--subprocess" => {
                subprocess = args.next().map(PathBuf::from).or_else(|| {
                    eprintln!("--subprocess expects a path to a NAUTPROC tool");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: chaos [--seed N] [--workers N] \
                     [--storm transient|hang|clean] [--check-workers N] [--subprocess TOOL]"
                );
                std::process::exit(2);
            }
        }
    }
    let digest_at = |workers: usize| match storm {
        Storm::Transient => chaos_digest(seed, workers),
        Storm::Hang => hang_storm_digest(seed, workers),
        Storm::Clean => clean_digest(seed, workers),
    };
    let digest = digest_at(workers);
    println!("{digest}");
    if let Some(tool) = &subprocess {
        let routed = match storm {
            Storm::Transient => subprocess_chaos_digest(seed, workers, tool),
            Storm::Hang => subprocess_storm_digest(seed, workers, tool),
            Storm::Clean => subprocess_clean_digest(seed, workers, tool),
        };
        if routed != digest {
            eprintln!(
                "chaos digest diverged across the process boundary at seed {seed}: \
                 subprocess said\n{routed}"
            );
            std::process::exit(1);
        }
    }
    if let Some(other) = check_workers {
        if digest_at(other) != digest {
            eprintln!("chaos digest diverged between {workers} and {other} workers at seed {seed}");
            std::process::exit(1);
        }
    }
}
