//! Prints the deterministic chaos-run digest for one (seed, workers)
//! pair. `scripts/check.sh` diffs this binary's output across worker
//! counts to gate on evaluation-pipeline determinism under faults.
//!
//! ```text
//! cargo run --release -p nautilus-bench --bin chaos -- --seed 3 --workers 8
//! ```

use nautilus_bench::chaos_digest;

fn main() {
    let mut seed = 1u64;
    let mut workers = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--workers expects an unsigned integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument `{other}`; usage: chaos [--seed N] [--workers N]");
                std::process::exit(2);
            }
        }
    }
    println!("{}", chaos_digest(seed, workers));
}
