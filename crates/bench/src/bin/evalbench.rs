//! Headline measurements for the parallel evaluation pipeline.
//!
//! Usage:
//!
//! ```text
//! evalbench [OUTPUT.json] [--floors] [--mock-synth PATH]
//! ```
//!
//! Times three surfaces and writes a JSON summary (default
//! `BENCH_evalpipeline.json`):
//!
//! * **eval_batch** — one identical GA search at every worker count in
//!   the 1/2/4/8 matrix, verifying bit-for-bit equal outcomes along the
//!   way and recording per-count wall clock against the serial baseline.
//! * **cache_sharded** — the pre-refactor monolithic `RwLock<HashMap>`
//!   cache vs the lock-free-read [`ShardedCache`], hammered by 8 threads.
//! * **dataset_query** — `top_fraction_threshold` on the 27,648-point
//!   router dataset: the old sort-per-call algorithm vs the memoized
//!   sorted-column index (the PR 5's >= 5x acceptance headline).
//! * **service_latency** — submit -> result round-trip for a trivial
//!   search through an in-process `nautilus-serve` daemon over real
//!   localhost TCP: the fixed tax of going through the service.
//! * **subprocess_dispatch** (with `--mock-synth PATH`) — the same short
//!   router search in-process and through one `mock-synth` child,
//!   reporting the per-job cost of crossing the `NAUTPROC` process
//!   boundary. Skipped (with a marker in the JSON) when the flag is
//!   absent, because the mock tool binary only exists after a test
//!   build.
//!
//! `--floors` additionally enforces the perf floors from ISSUE 7 and
//! exits non-zero on regression:
//!
//! * the 1-worker configuration must stay >= 0.99x the serial baseline
//!   (the "zero-overhead" floor);
//! * every batched configuration must stay >= 0.90x serial even when
//!   parallelism cannot help — a sanity bound on pool/SoA overhead that
//!   tolerates scheduler noise on single-thread shared hosts;
//! * batched eval must be *strictly faster* than serial when the host
//!   has >= 2 hardware threads (skipped, loudly, on smaller hosts);
//! * the sharded cache must be >= 1.0x the monolithic baseline under the
//!   8-thread read-mostly hammer.
//!
//! The dataset-query >= 5x floor is always enforced, with or without
//! `--floors`. `scripts/bench.sh` decides whether `--floors` applies by
//! comparing this host's thread count against the committed run's
//! recorded `host_threads`.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use nautilus::{Nautilus, Phase, Query, Tracer};
use nautilus_ga::{Direction, GaSettings, Genome};
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, Dataset, MetricExpr, MetricSet, ShardedCache};

const HAMMER_THREADS: u32 = 8;
const HAMMER_OPS_PER_THREAD: u32 = 200_000;
const HAMMER_DISTINCT: u32 = 4096;
const QUERY_CALLS: usize = 200;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A surrogate made artificially expensive (re-evaluated `REPEAT` times per
/// point) so batch evaluation has synthesis-shaped work to parallelize.
struct SlowRouter {
    inner: RouterModel,
}

const REPEAT: usize = 2000;

impl CostModel for SlowRouter {
    fn name(&self) -> &str {
        "router-slow"
    }

    fn space(&self) -> &nautilus_ga::ParamSpace {
        self.inner.space()
    }

    fn catalog(&self) -> &nautilus_synth::MetricCatalog {
        self.inner.catalog()
    }

    fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
        let mut out = None;
        for _ in 0..REPEAT {
            out = std::hint::black_box(self.inner.evaluate(g));
        }
        out
    }
}

/// Worker counts of the eval-batch matrix. `1` is the serial scoring
/// loop; every other count takes the persistent-pool batched path.
const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn bench_eval_batch() -> (f64, Vec<(usize, f64)>) {
    let model = SlowRouter { inner: RouterModel::swept() };
    let fmax = MetricExpr::metric(model.catalog().require("fmax").expect("metric"));
    let query = Query::maximize("fmax", fmax);
    let run = |workers: usize| {
        let settings =
            GaSettings { generations: 40, eval_workers: workers, ..GaSettings::default() };
        let engine = Nautilus::new(&model).with_settings(settings);
        let start = Instant::now();
        let outcome = engine.run_baseline(&query, 42).expect("search runs");
        (start.elapsed(), outcome)
    };
    // Warm-up, then the worker matrix. Every run must reproduce the
    // serial outcome bit for bit. Each configuration reports its best of
    // `ROUNDS` samples, taken round-robin (each matrix entry once per
    // round) so every configuration sees the same background-load
    // regimes rather than its own contiguous window. The workers=1 entry
    // runs the serial scoring loop, so it *is* the serial baseline.
    const ROUNDS: usize = 5;
    let (_, serial_outcome) = run(1);
    let mut best = vec![f64::INFINITY; WORKER_MATRIX.len()];
    for _ in 0..ROUNDS {
        for (slot, workers) in WORKER_MATRIX.into_iter().enumerate() {
            let (t, outcome) = run(workers);
            assert_eq!(outcome, serial_outcome, "worker pools must not change outcomes");
            best[slot] = best[slot].min(ms(t));
        }
    }
    let serial = best[0];
    let matrix = WORKER_MATRIX.into_iter().zip(best.iter().copied()).collect();
    (serial, matrix)
}

/// Repeats the 4-worker search with a span tracer attached and returns
/// the per-phase attribution as pre-rendered JSON member lines plus the
/// top *overhead* phase — the largest self time that is not useful
/// evaluation work ([`Phase::MissEval`]) — naming where the wall clock
/// beyond the evaluations themselves goes.
fn trace_eval_batch() -> (String, String) {
    let model = SlowRouter { inner: RouterModel::swept() };
    let fmax = MetricExpr::metric(model.catalog().require("fmax").expect("metric"));
    let query = Query::maximize("fmax", fmax);
    let settings = GaSettings { generations: 40, eval_workers: 4, ..GaSettings::default() };
    let tracer = Tracer::new();
    let engine = Nautilus::new(&model).with_settings(settings).with_tracer(&tracer);
    engine.run_baseline(&query, 42).expect("search runs");
    let stats = tracer.phase_stats();
    let top = stats
        .iter()
        .filter(|(p, _)| **p != Phase::MissEval)
        .max_by_key(|(_, s)| s.self_nanos)
        .map(|(p, _)| p.label().to_owned())
        .expect("traced run records phases");
    let members: Vec<String> = stats
        .iter()
        .map(|(p, s)| {
            format!(
                "      \"{}\": {{ \"count\": {}, \"total_ms\": {:.3}, \"self_ms\": {:.3} }}",
                p.label(),
                s.count,
                s.total_nanos as f64 / 1e6,
                s.self_nanos as f64 / 1e6
            )
        })
        .collect();
    (members.join(",\n"), top)
}

/// The pre-refactor cache design, kept here as the measurement baseline:
/// one `RwLock` around the whole map plus one `Mutex` around the stats
/// counters, charged on every lookup exactly as the old runner did.
struct MonolithicCache {
    map: RwLock<HashMap<Genome, Option<MetricSet>>>,
    stats: parking_lot::Mutex<nautilus_synth::JobStats>,
}

impl MonolithicCache {
    fn lookup_or_insert(&self, genome: &Genome) {
        if self.map.read().get(genome).is_some() {
            self.stats.lock().cache_hits += 1;
            return;
        }
        let mut map = self.map.write();
        if map.get(genome).is_none() {
            map.insert(genome.clone(), None);
            drop(map);
            self.stats.lock().infeasible += 1;
        } else {
            drop(map);
            self.stats.lock().cache_hits += 1;
        }
    }
}

fn hammer(op: impl Fn(u32, u32) + Sync) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..HAMMER_THREADS {
            let op = &op;
            scope.spawn(move || {
                for i in 0..HAMMER_OPS_PER_THREAD {
                    op(t, i);
                }
            });
        }
    });
    start.elapsed()
}

fn bench_cache_sharded() -> (f64, f64, u64) {
    let genomes: Vec<Genome> =
        (0..HAMMER_DISTINCT).map(|i| Genome::from_genes(vec![i % 64, i / 64, i % 7])).collect();
    // Offset start points per thread so first touches interleave.
    let pick = |t: u32, i: u32| &genomes[((i + t * 37) % HAMMER_DISTINCT) as usize];

    // Same sampling policy as the eval-batch matrix: interleaved
    // best-of-`ROUNDS`, because the >= 1.0x floor cannot hold on a single
    // sample from a shared host. Fresh caches each round so every sample
    // pays the same insert phase.
    const ROUNDS: usize = 5;
    let (mut mono_best, mut sharded_best) = (f64::INFINITY, f64::INFINITY);
    let mut contentions = 0;
    for _ in 0..ROUNDS {
        let mono = MonolithicCache {
            map: RwLock::new(HashMap::new()),
            stats: parking_lot::Mutex::new(nautilus_synth::JobStats::default()),
        };
        let mono_time = hammer(|t, i| mono.lookup_or_insert(pick(t, i)));
        assert_eq!(mono.map.read().len() as u32, HAMMER_DISTINCT);
        mono_best = mono_best.min(ms(mono_time));

        let sharded = ShardedCache::new();
        let sharded_time = hammer(|t, i| {
            let g = pick(t, i);
            if sharded.lookup(g).is_none() {
                sharded.insert_or_hit(g, &None, 0);
            }
        });
        assert_eq!(sharded.len() as u32, HAMMER_DISTINCT);
        sharded_best = sharded_best.min(ms(sharded_time));
        contentions = sharded.contentions();
    }
    (mono_best, sharded_best, contentions)
}

/// Repeats the sharded hammer with per-shard lock-wait timing enabled
/// (untimed pass, so the headline numbers above stay comparable) and
/// returns `(acquisitions, total wait ms, max wait us)` — the shard
/// result's own attribution: its only non-work phase is lock waiting.
fn trace_cache_sharded() -> (u64, f64, f64) {
    let genomes: Vec<Genome> =
        (0..HAMMER_DISTINCT).map(|i| Genome::from_genes(vec![i % 64, i / 64, i % 7])).collect();
    let pick = |t: u32, i: u32| &genomes[((i + t * 37) % HAMMER_DISTINCT) as usize];
    let sharded = ShardedCache::new();
    sharded.enable_lock_timing();
    hammer(|t, i| {
        let g = pick(t, i);
        if sharded.lookup(g).is_none() {
            sharded.insert_or_hit(g, &None, 0);
        }
    });
    let (waits, total_nanos, max_nanos) = sharded.lock_wait_totals();
    (waits, total_nanos as f64 / 1e6, max_nanos as f64 / 1e3)
}

/// Submit -> result round-trip latency through a real `nautilus-serve`
/// daemon (in-process instance, real TCP, real state directory): the
/// fixed service tax a client pays over calling the engine directly.
/// Returns `(best ms, mean ms, jobs)`.
fn bench_service_latency() -> (f64, f64, usize) {
    use nautilus_serve::job::JobSpec;
    use nautilus_serve::{Daemon, DaemonConfig, ServeClient};

    let dir = std::env::temp_dir().join(format!("nautilus-evalbench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create daemon state dir");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("start daemon");
    let client = ServeClient::from_state_dir(&dir).expect("read endpoint");

    const JOBS: usize = 8;
    let mut samples = Vec::with_capacity(JOBS);
    for seed in 0..JOBS {
        let spec = JobSpec {
            tenant: "bench".into(),
            model: "bowl".into(),
            strategy: "baseline".into(),
            seed: seed as u64,
            generations: 4,
            eval_workers: 1,
            max_evals: 0,
            deadline_ms: 0,
            eval_delay_us: 0,
            dedupe_key: String::new(),
        };
        let start = Instant::now();
        let job = client.submit(&spec).expect("submit").expect("admitted");
        client.wait_result(job, Duration::from_secs(60)).expect("result");
        samples.push(ms(start.elapsed()));
    }
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);

    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (best, mean, JOBS)
}

fn bench_dataset_query() -> (f64, f64, usize) {
    let router = RouterModel::swept();
    let d = Dataset::characterize(&router, 0).expect("characterizes");
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("metric"));
    let fracs: Vec<f64> = (0..QUERY_CALLS).map(|i| 0.01 + 0.9 * i as f64 / 250.0).collect();

    let sort_per_call = |frac: f64| {
        let mut values: Vec<f64> =
            d.eval_all(&fmax).into_iter().filter(|v| v.is_finite()).collect();
        values.sort_by(|a, b| {
            if Direction::Maximize.is_better(*a, *b) {
                std::cmp::Ordering::Less
            } else if Direction::Maximize.is_better(*b, *a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        let k = ((values.len() as f64 * frac).ceil() as usize).clamp(1, values.len());
        values[k - 1]
    };

    let start = Instant::now();
    let mut reference = Vec::with_capacity(fracs.len());
    for &f in &fracs {
        reference.push(std::hint::black_box(sort_per_call(f)));
    }
    let linear_time = start.elapsed();

    // Measured cold: the first call pays the one-time index build.
    let start = Instant::now();
    let mut indexed = Vec::with_capacity(fracs.len());
    for &f in &fracs {
        indexed.push(std::hint::black_box(d.top_fraction_threshold(&fmax, Direction::Maximize, f)));
    }
    let indexed_time = start.elapsed();
    assert_eq!(indexed, reference, "indexed thresholds must match sort-per-call");

    (ms(linear_time), ms(indexed_time), d.len())
}

fn main() -> ExitCode {
    let mut out_path = "BENCH_evalpipeline.json".to_owned();
    let mut floors = false;
    let mut mock_synth: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--floors" => floors = true,
            "--mock-synth" => match args.next() {
                Some(path) => mock_synth = Some(path),
                None => {
                    eprintln!("--mock-synth expects a path to the mock tool binary");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag {flag}; usage: evalbench [OUTPUT.json] [--floors] \
                     [--mock-synth PATH]"
                );
                return ExitCode::FAILURE;
            }
            path => out_path = path.to_owned(),
        }
    }
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    eprintln!("eval_batch: identical search across the {WORKER_MATRIX:?} worker matrix ...");
    let (serial_ms, matrix) = bench_eval_batch();
    let entry = |workers: usize| {
        matrix.iter().find(|(w, _)| *w == workers).map(|(_, t)| *t).expect("matrix entry")
    };
    let parallel_ms = entry(4);
    for (workers, t) in &matrix {
        eprintln!("  workers {workers}: {t:.1} ms ({:.2}x serial)", serial_ms / t);
    }

    eprintln!("cache_sharded: monolithic vs sharded, {HAMMER_THREADS} threads ...");
    let (mono_ms, sharded_ms, contentions) = bench_cache_sharded();
    eprintln!("  monolithic {mono_ms:.1} ms, sharded {sharded_ms:.1} ms");

    eprintln!("dataset_query: {QUERY_CALLS} thresholds on the router dataset ...");
    let (linear_ms, indexed_ms, points) = bench_dataset_query();
    eprintln!("  sort-per-call {linear_ms:.1} ms, indexed {indexed_ms:.1} ms");

    eprintln!("service_latency: submit -> result through a nautilus-serve daemon ...");
    let (service_best_ms, service_mean_ms, service_jobs) = bench_service_latency();
    eprintln!("  {service_jobs} jobs, best {service_best_ms:.1} ms, mean {service_mean_ms:.1} ms");

    // Optional: per-job cost of the NAUTPROC process boundary, measured
    // against a real mock-synth child with bit-identical outcomes
    // verified inside the measurement itself.
    let subprocess_block = match &mock_synth {
        Some(tool) => {
            eprintln!("subprocess_dispatch: short router search across the process boundary ...");
            let r = nautilus_bench::measure_subprocess_dispatch(std::path::Path::new(tool));
            eprintln!(
                "  in-process {:.1} ms, subprocess {:.1} ms, {:.1} us/job over {} jobs",
                r.inprocess_ms, r.subprocess_ms, r.overhead_us_per_job, r.jobs
            );
            format!(
                concat!(
                    "  \"subprocess_dispatch\": {{\n",
                    "    \"search\": \"router baseline, 20 generations, seed 42\",\n",
                    "    \"inprocess_ms\": {:.2},\n",
                    "    \"subprocess_ms\": {:.2},\n",
                    "    \"jobs\": {},\n",
                    "    \"overhead_us_per_job\": {:.1},\n",
                    "    \"outcomes_identical\": true\n",
                    "  }},"
                ),
                r.inprocess_ms, r.subprocess_ms, r.jobs, r.overhead_us_per_job
            )
        }
        None => {
            "  \"subprocess_dispatch\": { \"skipped\": \"pass --mock-synth PATH\" },".to_owned()
        }
    };

    eprintln!("phase_attribution: traced re-runs of the batch and shard surfaces ...");
    let (batch_phases, batch_top) = trace_eval_batch();
    let (lock_waits, lock_wait_ms, lock_wait_max_us) = trace_cache_sharded();
    eprintln!("  eval_batch top overhead phase: {batch_top}");
    eprintln!("  cache_sharded lock waits: {lock_waits} ({lock_wait_ms:.2} ms total)");

    let query_speedup = linear_ms / indexed_ms;
    let matrix_rows: Vec<String> = matrix
        .iter()
        .map(|(workers, t)| {
            format!(
                "      {{ \"workers\": {workers}, \"ms\": {t:.2}, \"speedup_vs_serial\": {:.3} }}",
                serial_ms / t
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"evalpipeline\",\n",
            "  \"host_threads\": {host_threads},\n",
            "  \"eval_batch\": {{\n",
            "    \"search\": \"router-slow baseline, 40 generations, seed 42\",\n",
            "    \"serial_ms\": {serial:.2},\n",
            "    \"parallel_ms\": {parallel:.2},\n",
            "    \"speedup\": {batch_speedup:.2},\n",
            "    \"outcomes_identical\": true,\n",
            "    \"matrix\": [\n",
            "{matrix_rows}\n",
            "    ]\n",
            "  }},\n",
            "  \"cache_sharded\": {{\n",
            "    \"threads\": {threads},\n",
            "    \"ops\": {ops},\n",
            "    \"distinct_points\": {distinct},\n",
            "    \"monolithic_ms\": {mono:.2},\n",
            "    \"sharded_ms\": {sharded:.2},\n",
            "    \"speedup\": {cache_speedup:.2},\n",
            "    \"contentions\": {contentions}\n",
            "  }},\n",
            "  \"dataset_query\": {{\n",
            "    \"points\": {points},\n",
            "    \"calls\": {calls},\n",
            "    \"sort_per_call_ms\": {linear:.2},\n",
            "    \"indexed_ms\": {indexed:.2},\n",
            "    \"speedup\": {query_speedup:.2}\n",
            "  }},\n",
            "  \"service_latency\": {{\n",
            "    \"search\": \"bowl baseline, 4 generations, via nautilus-serve\",\n",
            "    \"jobs\": {service_jobs},\n",
            "    \"submit_to_result_best_ms\": {service_best:.2},\n",
            "    \"submit_to_result_mean_ms\": {service_mean:.2}\n",
            "  }},\n",
            "{subprocess_block}\n",
            "  \"phase_attribution\": {{\n",
            "    \"eval_batch\": {{\n",
            "      \"workers\": 4,\n",
            "      \"top_overhead_phase\": \"{batch_top}\",\n",
            "      \"phases\": {{\n",
            "{batch_phases}\n",
            "      }}\n",
            "    }},\n",
            "    \"cache_sharded\": {{\n",
            "      \"top_overhead_phase\": \"shard_lock_wait\",\n",
            "      \"lock_waits\": {lock_waits},\n",
            "      \"lock_wait_ms\": {lock_wait_ms:.3},\n",
            "      \"lock_wait_max_us\": {lock_wait_max_us:.1}\n",
            "    }}\n",
            "  }}\n",
            "}}\n",
        ),
        host_threads = host_threads,
        matrix_rows = matrix_rows.join(",\n"),
        serial = serial_ms,
        parallel = parallel_ms,
        batch_speedup = serial_ms / parallel_ms,
        threads = HAMMER_THREADS,
        ops = u64::from(HAMMER_THREADS) * u64::from(HAMMER_OPS_PER_THREAD),
        distinct = HAMMER_DISTINCT,
        mono = mono_ms,
        sharded = sharded_ms,
        cache_speedup = mono_ms / sharded_ms,
        contentions = contentions,
        points = points,
        calls = QUERY_CALLS,
        linear = linear_ms,
        indexed = indexed_ms,
        query_speedup = query_speedup,
        service_jobs = service_jobs,
        service_best = service_best_ms,
        service_mean = service_mean_ms,
        subprocess_block = subprocess_block,
        batch_top = batch_top,
        batch_phases = batch_phases,
        lock_waits = lock_waits,
        lock_wait_ms = lock_wait_ms,
        lock_wait_max_us = lock_wait_max_us,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    if query_speedup < 5.0 {
        eprintln!("FAIL: indexed dataset queries only {query_speedup:.1}x faster (need >= 5x)");
        return ExitCode::FAILURE;
    }
    if floors {
        let mut failed = false;
        // One-worker floor: the matrix's workers=1 entry must stay within
        // 1% of the serial baseline. The entry currently *is* the
        // baseline (same serial scoring loop), so this gate documents the
        // floor and arms it against any future split of the two paths.
        let one_worker_speedup = serial_ms / entry(1);
        if one_worker_speedup < 0.99 {
            eprintln!("FAIL floor: 1-worker eval {one_worker_speedup:.3}x serial (need >= 0.99x)");
            failed = true;
        }
        // Overhead sanity bound for the batched path. On a single-thread
        // host the pool cannot win, only timeshare; the bound tolerates
        // scheduler noise (a few percent on shared hosts) while still
        // catching any return of per-generation spawn/clone overhead.
        let batched_min_speedup = matrix
            .iter()
            .filter(|(w, _)| *w >= 2)
            .map(|(_, t)| serial_ms / t)
            .fold(f64::INFINITY, f64::min);
        if batched_min_speedup < 0.90 {
            eprintln!("FAIL floor: batched eval {batched_min_speedup:.3}x serial (need >= 0.90x)");
            failed = true;
        }
        let batched_best_speedup =
            matrix.iter().filter(|(w, _)| *w >= 2).map(|(_, t)| serial_ms / t).fold(0.0, f64::max);
        if host_threads >= 2 {
            if batched_best_speedup <= 1.0 {
                eprintln!(
                    "FAIL floor: best batched eval {batched_best_speedup:.3}x serial \
                     (need > 1.0x on a {host_threads}-thread host)"
                );
                failed = true;
            }
        } else {
            eprintln!(
                "floor skipped: strictly-faster-than-serial needs >= 2 host threads \
                 (this host has {host_threads})"
            );
        }
        let cache_speedup = mono_ms / sharded_ms;
        if cache_speedup < 1.0 {
            eprintln!(
                "FAIL floor: sharded cache {cache_speedup:.3}x monolithic under the \
                 8-thread hammer (need >= 1.0x)"
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!("perf floors hold: 1-worker >= 0.99x, batched >= 0.90x, sharded >= 1.0x mono");
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
