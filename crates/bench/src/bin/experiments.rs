//! Regenerates every figure and table of the Nautilus DAC'15 paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] [--no-csv] [--telemetry DIR] [--trace DIR] [fig1 fig2 ... | all]
//! ```
//!
//! Prints each experiment's paper-vs-measured headlines and data table,
//! writes the plotted series as CSV into `results/`, and finishes with
//! "Table A", the aggregate of all in-text convergence-cost claims.
//!
//! With `--telemetry DIR` (or the `NAUTILUS_TELEMETRY` environment
//! variable) it additionally captures an exemplar baseline/guided run pair
//! with full search telemetry: a JSONL event stream plus an aggregated
//! run-report JSON per run, written into DIR.
//!
//! With `--trace DIR` (or `NAUTILUS_TRACE`) it captures the same pair
//! with a span tracer attached, writing a Perfetto-loadable
//! `*.trace.json`, the event stream, and a schema-6 report whose `phases`
//! block attributes the run's wall clock; inspect with
//! `nautilus-trace summarize` or at `ui.perfetto.dev`.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use nautilus_bench::{
    abl_confidence, abl_decay, abl_hint_classes, abl_metaheuristics, abl_operators,
    abl_wrong_hints, fig1, fig2, fig3, fig4, fig5, fig6, fig7, render_table_a, Scale,
};

const ALL: [&str; 7] = ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"];
const ABLATIONS: [&str; 6] = [
    "abl-hint-classes",
    "abl-confidence",
    "abl-wrong-hints",
    "abl-decay",
    "abl-operators",
    "abl-metaheuristics",
];

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_dir = match args.iter().position(|a| a == "--telemetry") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--telemetry needs a directory argument");
                return ExitCode::FAILURE;
            }
            let dir = args.remove(i + 1);
            args.remove(i);
            Some(dir)
        }
        None => std::env::var("NAUTILUS_TELEMETRY").ok().filter(|d| !d.is_empty()),
    };
    let trace_dir = match args.iter().position(|a| a == "--trace") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--trace needs a directory argument");
                return ExitCode::FAILURE;
            }
            let dir = args.remove(i + 1);
            args.remove(i);
            Some(dir)
        }
        None => std::env::var("NAUTILUS_TRACE").ok().filter(|d| !d.is_empty()),
    };
    let quick = args.iter().any(|a| a == "--quick");
    let no_csv = args.iter().any(|a| a == "--no-csv");
    let mut wanted: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if wanted.is_empty() {
        wanted = ALL.to_vec();
    }
    if wanted.contains(&"all") {
        wanted.retain(|w| *w != "all");
        for id in ALL {
            if !wanted.contains(&id) {
                wanted.push(id);
            }
        }
    }
    if wanted.contains(&"ablations") {
        wanted.retain(|w| *w != "ablations");
        for id in ABLATIONS {
            if !wanted.contains(&id) {
                wanted.push(id);
            }
        }
    }
    for id in &wanted {
        if !ALL.contains(id) && !ABLATIONS.contains(id) {
            eprintln!(
                "unknown experiment `{id}`; known: {} {} `ablations` or `all`",
                ALL.join(" "),
                ABLATIONS.join(" ")
            );
            return ExitCode::FAILURE;
        }
    }

    let scale = if quick { Scale::quick() } else { Scale::paper() };
    println!(
        "Nautilus DAC'15 reproduction — {} scale ({} runs/strategy, {} generations)\n",
        if quick { "quick" } else { "paper" },
        scale.runs,
        scale.generations
    );

    let results_dir = Path::new("results");
    let mut reports = Vec::new();
    for id in &wanted {
        let start = Instant::now();
        let report = match *id {
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(scale),
            "fig4" => fig4(scale),
            "fig5" => fig5(scale),
            "fig6" => fig6(scale),
            "fig7" => fig7(scale),
            "abl-hint-classes" => abl_hint_classes(scale),
            "abl-confidence" => abl_confidence(scale),
            "abl-wrong-hints" => abl_wrong_hints(scale),
            "abl-decay" => abl_decay(scale),
            "abl-operators" => abl_operators(scale),
            "abl-metaheuristics" => abl_metaheuristics(scale),
            _ => unreachable!("validated above"),
        };
        println!("{report}");
        if !no_csv {
            match report.write_csv(results_dir) {
                Ok(files) => {
                    for f in files {
                        println!("wrote {f}");
                    }
                }
                Err(e) => eprintln!("could not write CSV for {id}: {e}"),
            }
        }
        println!("({id} regenerated in {:.1}s)\n", start.elapsed().as_secs_f64());
        reports.push(report);
    }

    println!("{}", render_table_a(&reports));

    if let Some(dir) = telemetry_dir {
        match nautilus_bench::capture_telemetry(Path::new(&dir), 0xDAC_2015) {
            Ok(artifacts) => {
                for a in artifacts {
                    println!(
                        "captured {} telemetry: {} + {}",
                        a.strategy,
                        a.events_path.display(),
                        a.report_path.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("could not capture telemetry into {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(dir) = trace_dir {
        match nautilus_bench::capture_traced(Path::new(&dir), 0xDAC_2015) {
            Ok(artifacts) => {
                for a in artifacts {
                    println!(
                        "captured {} trace: {} + {} + {}",
                        a.strategy,
                        a.trace_path.display(),
                        a.events_path.display(),
                        a.report_path.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("could not capture traces into {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
