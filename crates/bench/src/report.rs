//! Experiment reports: headline comparisons and CSV artifacts.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One paper-vs-measured headline claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// What is being compared, e.g. "baseline/strong synthesis-job ratio".
    pub label: String,
    /// The paper's reported value, as text (may be a range like "15–23").
    pub paper: String,
    /// Our measured value, as text.
    pub measured: String,
}

impl Headline {
    /// Builds a headline row.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        Headline { label: label.into(), paper: paper.into(), measured: measured.into() }
    }
}

/// The result of regenerating one figure or table.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "fig4".
    pub id: &'static str,
    /// Human title, e.g. "NoC: Maximize Frequency".
    pub title: String,
    /// Paper-vs-measured headline rows.
    pub headlines: Vec<Headline>,
    /// Rendered data table (series the figure plots).
    pub table: String,
    /// CSV artifacts: `(file name, contents)`.
    pub csv: Vec<(String, String)>,
}

impl ExperimentReport {
    /// Writes all CSV artifacts into `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<Vec<String>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (name, contents) in &self.csv {
            let path = dir.join(name);
            fs::write(&path, contents)?;
            written.push(path.display().to_string());
        }
        Ok(written)
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f)?;
        if !self.headlines.is_empty() {
            writeln!(f, "{:<58} {:>16} {:>16}", "claim", "paper", "measured")?;
            for h in &self.headlines {
                writeln!(f, "{:<58} {:>16} {:>16}", h.label, h.paper, h.measured)?;
            }
            writeln!(f)?;
        }
        if !self.table.is_empty() {
            writeln!(f, "{}", self.table)?;
        }
        Ok(())
    }
}

/// Renders Table A: every headline from every experiment, in order.
#[must_use]
pub fn render_table_a(reports: &[ExperimentReport]) -> String {
    let mut out =
        String::from("== Table A — convergence-cost summary (collected in-text claims) ==\n\n");
    out.push_str(&format!("{:<8} {:<58} {:>16} {:>16}\n", "exp", "claim", "paper", "measured"));
    for r in reports {
        for h in &r.headlines {
            out.push_str(&format!(
                "{:<8} {:<58} {:>16} {:>16}\n",
                r.id, h.label, h.paper, h.measured
            ));
        }
    }
    out
}

/// Formats a ratio like "2.8x" (or "n/a").
#[must_use]
pub fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.1}x"),
        None => "n/a".to_owned(),
    }
}

/// Formats a mean count like "101.3" (or "n/a").
#[must_use]
pub fn fmt_mean(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "n/a".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExperimentReport {
        ExperimentReport {
            id: "fig9",
            title: "Test".into(),
            headlines: vec![Headline::new("ratio", "2.8x", "3.0x")],
            table: "gen | data".into(),
            csv: vec![("fig9.csv".into(), "a,b\n1,2\n".into())],
        }
    }

    #[test]
    fn display_includes_headlines_and_table() {
        let text = report().to_string();
        assert!(text.contains("fig9"));
        assert!(text.contains("2.8x"));
        assert!(text.contains("3.0x"));
        assert!(text.contains("gen | data"));
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join("nautilus_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = report().write_csv(&dir).unwrap();
        assert_eq!(written.len(), 1);
        let body = std::fs::read_to_string(dir.join("fig9.csv")).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_a_collects_all_headlines() {
        let t = render_table_a(&[report(), report()]);
        assert_eq!(t.matches("ratio").count(), 2);
        assert!(t.contains("Table A"));
    }

    #[test]
    fn display_omits_empty_sections() {
        let bare = ExperimentReport {
            id: "figX",
            title: "Bare".into(),
            headlines: vec![],
            table: String::new(),
            csv: vec![],
        };
        let text = bare.to_string();
        assert!(text.contains("figX"));
        assert!(!text.contains("claim"), "headline header must not render without rows");
    }

    #[test]
    fn csv_write_creates_nested_directories() {
        let dir = std::env::temp_dir().join("nautilus_report_nested/deep/path");
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("nautilus_report_nested"));
        let written = report().write_csv(&dir).unwrap();
        assert_eq!(written.len(), 1);
        assert!(dir.join("fig9.csv").exists());
        std::fs::remove_dir_all(std::env::temp_dir().join("nautilus_report_nested")).unwrap();
    }

    #[test]
    fn table_a_renders_reports_without_headlines() {
        let mut bare = report();
        bare.headlines.clear();
        let t = render_table_a(&[bare]);
        assert!(t.contains("Table A"));
        assert!(!t.contains("fig9"), "headline-less reports contribute no rows");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(Some(2.84)), "2.8x");
        assert_eq!(fmt_ratio(None), "n/a");
        assert_eq!(fmt_mean(Some(101.33)), "101.3");
        assert_eq!(fmt_mean(None), "n/a");
    }
}
