//! Lazily characterized, process-wide datasets.
//!
//! The paper characterizes each IP's swept sub-space once, offline, and
//! replays every search against the result. These accessors do the same
//! per process: the first caller pays the (multi-threaded, sub-second)
//! sweep; everyone else shares the dataset.

use std::sync::OnceLock;

use nautilus_fft::FftModel;
use nautilus_noc::connect::NocModel;
use nautilus_noc::router::RouterModel;
use nautilus_synth::Dataset;

fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// The 27,648-point router dataset (paper: "approximately 30,000").
pub fn router_dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        Dataset::characterize(&RouterModel::swept(), threads()).expect("router space characterizes")
    })
}

/// The ~10,500-point FFT dataset (paper: "approximately 12,000").
pub fn fft_dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        Dataset::characterize(&FftModel::new(), threads()).expect("fft space characterizes")
    })
}

/// The 64-endpoint CONNECT network dataset (720 configurations).
pub fn connect_dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        Dataset::characterize(&NocModel::new(64), threads()).expect("connect space characterizes")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build_and_are_cached() {
        let a = router_dataset() as *const _;
        let b = router_dataset() as *const _;
        assert_eq!(a, b, "second call must reuse the first dataset");
        assert_eq!(router_dataset().len(), 27_648);
        assert!(fft_dataset().len() > 9_000);
        assert_eq!(
            connect_dataset().len() as u128,
            nautilus_synth::CostModel::space(&NocModel::new(64)).cardinality()
        );
    }

    #[test]
    fn router_dataset_serves_the_paper_queries() {
        use nautilus_ga::Direction;
        use nautilus_synth::MetricExpr;
        let d = router_dataset();
        // The metrics every figure queries must exist in the catalog.
        for metric in ["fmax", "luts"] {
            let id = d.catalog().require(metric).unwrap();
            let (_, value) = d.best(&MetricExpr::metric(id), Direction::Maximize);
            assert!(value.is_finite(), "best {metric} must be finite");
        }
        assert!(d.catalog().require("nope").is_err());
    }

    #[test]
    fn fft_and_connect_datasets_are_cached_like_the_router() {
        assert_eq!(fft_dataset() as *const _, fft_dataset() as *const _);
        assert_eq!(connect_dataset() as *const _, connect_dataset() as *const _);
    }
}
