//! Subprocess-run digests: the process-boundary determinism gate.
//!
//! The chaos digests in [`crate::chaos`] prove the *in-process* fault
//! pipeline deterministic across worker counts. This module extends the
//! same gate across a process boundary: the identical searches are routed
//! through [`nautilus::SubprocessEvaluator`] to a `mock-synth` child (or
//! pool of children) speaking the `NAUTPROC` protocol, and the digests
//! must come back **byte-identical** to their in-process counterparts —
//! clean, under the standard 10% transient storm, and under the
//! supervised hang storm. `scripts/check.sh` diffs exactly that.
//!
//! Two rules keep the comparison honest:
//!
//! * the digest never mentions the worker count, the pool size, or the
//!   tool path — only outcome-shaped facts;
//! * fault chaos is driven from the **tool side** (`mock-synth
//!   --plan-seed`), because an in-process fault plan and a subprocess
//!   evaluator are mutually exclusive by construction.

use std::path::Path;
use std::time::{Duration, Instant};

use nautilus::{
    Confidence, Nautilus, RetryPolicy, SearchOutcome, SubprocessConfig, SupervisePolicy,
};
use nautilus_ga::GaSettings;
use nautilus_noc::hints::fmax_hints;
use nautilus_obs::json::JsonObj;

use crate::chaos::{
    digest_pair, outcome_json, router_query, storm_pair, CHAOS_TRANSIENT_RATE, STORM_HANG_RATE,
};
use crate::data::router_dataset;

/// Warm-child pool size of every subprocess digest. Deliberately neither
/// 1 nor the eval-worker count: routing is keyed on the genome, so the
/// pool size must never show up in any outcome.
pub const DIGEST_POOL: usize = 2;

/// Child I/O deadline of the hang-storm digests. Every injected hang
/// costs the parent one real wait of this length before the kill, so the
/// deadline is tuned for test wall-clock, not for realism.
pub const STORM_IO_TIMEOUT: Duration = Duration::from_millis(200);

/// The standard `mock-synth` invocation serving the router dataset with
/// no fault knobs.
#[must_use]
pub fn router_tool_config(tool: &Path) -> SubprocessConfig {
    SubprocessConfig::new(tool).args(["--model", "router"]).with_pool_size(DIGEST_POOL)
}

/// The `mock-synth` invocation mirroring the in-process chaos plan: the
/// same seeded 10% transient storm, decided child-side.
#[must_use]
pub fn chaos_tool_config(tool: &Path, seed: u64) -> SubprocessConfig {
    SubprocessConfig::new(tool)
        .args(["--model", "router", "--plan-seed"])
        .arg(seed.to_string())
        .arg("--transient-rate")
        .arg(CHAOS_TRANSIENT_RATE.to_string())
        .with_pool_size(DIGEST_POOL)
}

/// The `mock-synth` invocation mirroring the in-process hang-storm plan
/// (10% transients plus 10% hangs), with the short [`STORM_IO_TIMEOUT`]
/// so every real hang is abandoned quickly.
#[must_use]
pub fn storm_tool_config(tool: &Path, seed: u64) -> SubprocessConfig {
    chaos_tool_config(tool, seed)
        .arg("--hang-rate")
        .arg(STORM_HANG_RATE.to_string())
        .with_io_timeout(STORM_IO_TIMEOUT)
}

fn clean_pair(seed: u64, baseline: &SearchOutcome, guided: &SearchOutcome) -> String {
    let mut o = JsonObj::new();
    o.u64("clean_seed", seed)
        .raw("baseline", &outcome_json(baseline))
        .raw("guided", &outcome_json(guided));
    o.finish()
}

fn run_pair(engine: &Nautilus<'_>, seed: u64) -> (SearchOutcome, SearchOutcome) {
    let d = router_dataset();
    let query = router_query(d.catalog());
    let baseline = engine.run_baseline(&query, seed).expect("baseline run");
    let guided = engine
        .run_guided(&query, &fmax_hints(), Some(Confidence::STRONG), seed)
        .expect("guided run");
    (baseline, guided)
}

/// The fault-free in-process reference digest: baseline and strongly
/// guided searches of the router *maximize Fmax* query.
///
/// # Panics
///
/// Panics if a search fails, which the packaged router dataset cannot
/// cause.
#[must_use]
pub fn clean_digest(seed: u64, workers: usize) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let engine = Nautilus::new(&model).with_eval_workers(workers);
    let (baseline, guided) = run_pair(&engine, seed);
    clean_pair(seed, &baseline, &guided)
}

/// [`clean_digest`] with every evaluation served by a `mock-synth` child
/// pool at `tool`. Must be byte-identical to the in-process digest at
/// every `workers` setting.
///
/// # Panics
///
/// Panics if the tool cannot be spawned or a search fails.
#[must_use]
pub fn subprocess_clean_digest(seed: u64, workers: usize, tool: &Path) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let engine = Nautilus::new(&model)
        .with_eval_workers(workers)
        .with_subprocess_evaluator(router_tool_config(tool));
    let (baseline, guided) = run_pair(&engine, seed);
    clean_pair(seed, &baseline, &guided)
}

/// [`crate::chaos_digest`] with the storm decided *child-side*: the
/// `mock-synth` pool carries the same seeded 10% transient plan, every
/// injected crash is a real process death (dying gasp, then nonzero
/// exit), and the parent respawns as it retries. Must be byte-identical
/// to the in-process chaos digest for the same seed at every `workers`
/// setting.
///
/// # Panics
///
/// Panics if the tool cannot be spawned or a search fails.
#[must_use]
pub fn subprocess_chaos_digest(seed: u64, workers: usize, tool: &Path) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let engine = Nautilus::new(&model)
        .with_retry_policy(RetryPolicy::default())
        .with_eval_workers(workers)
        .with_subprocess_evaluator(chaos_tool_config(tool, seed));
    let (baseline, guided) = run_pair(&engine, seed);
    digest_pair(seed, &baseline, &guided)
}

/// [`crate::hang_storm_digest`] across the process boundary: hangs are
/// real child silence abandoned at [`STORM_IO_TIMEOUT`] (then the child
/// is killed and the slot respawned), transients are real child deaths.
/// Must be byte-identical to the in-process hang-storm digest for the
/// same seed at every `workers` setting.
///
/// # Panics
///
/// Panics if the tool cannot be spawned, a search fails, or the hedging
/// identity does not reconcile.
#[must_use]
pub fn subprocess_storm_digest(seed: u64, workers: usize, tool: &Path) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let engine = Nautilus::new(&model)
        .with_retry_policy(RetryPolicy::default())
        .with_supervision(SupervisePolicy::default())
        .with_eval_workers(workers)
        .with_subprocess_evaluator(storm_tool_config(tool, seed));
    let (baseline, guided) = run_pair(&engine, seed);
    storm_pair(seed, &baseline, &guided)
}

/// One dispatch-overhead measurement: the same short router search run
/// in-process and through a single `mock-synth` child.
#[derive(Debug, Clone)]
pub struct DispatchReport {
    /// Wall-clock of the in-process run, milliseconds.
    pub inprocess_ms: f64,
    /// Wall-clock of the subprocess run, milliseconds (includes the one
    /// child spawn and its dataset characterization).
    pub subprocess_ms: f64,
    /// Backend synthesis jobs the search dispatched (identical in both
    /// runs, or the measurement panics).
    pub jobs: u64,
    /// Mean per-job overhead of crossing the process boundary, in
    /// microseconds: `(subprocess_ms - inprocess_ms) / jobs`.
    pub overhead_us_per_job: f64,
}

/// Measures the per-evaluation cost of the process boundary with a short
/// (20-generation) router search at one eval worker against a one-child
/// pool, verifying bit-identical outcomes along the way.
///
/// # Panics
///
/// Panics if the tool cannot be spawned, a search fails, or the two
/// outcomes differ — a perf number for a wrong answer is worthless.
#[must_use]
pub fn measure_subprocess_dispatch(tool: &Path) -> DispatchReport {
    let d = router_dataset();
    let model = d.as_model();
    let query = router_query(d.catalog());
    let settings = GaSettings { generations: 20, ..GaSettings::default() };

    let start = Instant::now();
    let inprocess = Nautilus::new(&model)
        .with_settings(settings)
        .run_baseline(&query, 42)
        .expect("in-process dispatch run");
    let inprocess_ms = start.elapsed().as_secs_f64() * 1e3;

    let config = SubprocessConfig::new(tool).args(["--model", "router"]).with_pool_size(1);
    let start = Instant::now();
    let subprocess = Nautilus::new(&model)
        .with_settings(settings)
        .with_subprocess_evaluator(config)
        .run_baseline(&query, 42)
        .expect("subprocess dispatch run");
    let subprocess_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(subprocess, inprocess, "the process boundary must not change outcomes");
    let jobs = inprocess.jobs.jobs;
    DispatchReport {
        inprocess_ms,
        subprocess_ms,
        jobs,
        overhead_us_per_job: (subprocess_ms - inprocess_ms) * 1e3 / jobs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_digest_is_deterministic_and_worker_invariant() {
        let a = clean_digest(5, 1);
        assert_eq!(a, clean_digest(5, 2), "clean digest must not depend on workers");
        assert_ne!(a, clean_digest(6, 1), "clean digest must depend on the seed");
        assert!(nautilus::obs::json::is_valid_json(&a));
        assert!(!a.contains("workers"), "digest must not leak the worker count");
    }
}
