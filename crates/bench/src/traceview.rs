//! Offline analysis of Nautilus profiling artifacts — the library behind
//! the `nautilus-trace` binary.
//!
//! Two artifact kinds come out of a traced run (see
//! [`nautilus::Nautilus::with_tracer`]):
//!
//! * a Chrome/Perfetto trace-event JSON file written by
//!   [`nautilus::TraceSink`] (an object with a `traceEvents` array), and
//! * the usual JSONL [`nautilus::SearchEvent`] stream.
//!
//! [`parse_trace`] loads the former into a [`TraceData`]; [`summarize`]
//! turns it into the phase table / worker-utilization / critical-path
//! report printed by `nautilus-trace summarize`; [`digest`] reduces it to
//! the timing-invariant [`TraceDigest`] that `nautilus-trace diff`
//! compares. Same-seed runs must digest identically — span *timestamps*
//! differ run to run, span *structure* must not — which is what the
//! `scripts/check.sh` trace-determinism gate enforces.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nautilus::obs::json::{parse_json, JsonValue};

/// Why a trace artifact could not be analyzed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceViewError(pub String);

impl fmt::Display for TraceViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TraceViewError {}

fn malformed<T>(msg: impl Into<String>) -> Result<T, TraceViewError> {
    Err(TraceViewError(msg.into()))
}

/// One complete span parsed from a trace file (Chrome `"X"` event).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Track index (`tid` in the trace).
    pub track: u32,
    /// Phase label (the event `name`).
    pub phase: String,
    /// Start timestamp, microseconds from the run epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// An aggregate-only phase entry (the `phaseAggregates` sidecar block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggregateStat {
    /// Occurrences folded into the aggregate.
    pub count: u64,
    /// Total time across occurrences, nanoseconds.
    pub total_nanos: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_nanos: u64,
}

/// A parsed trace file: named tracks, complete spans, and aggregates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceData {
    /// Track index → track name, from `thread_name` metadata events.
    pub tracks: BTreeMap<u32, String>,
    /// Complete spans in file order (sorted by track, then start).
    pub spans: Vec<TraceSpan>,
    /// Aggregate-only phases by label.
    pub aggregates: BTreeMap<String, AggregateStat>,
}

/// Parses a Chrome/Perfetto trace-event JSON file as written by
/// [`nautilus::TraceSink`].
///
/// # Errors
///
/// Rejects anything that is not a JSON object with a `traceEvents`
/// array of well-formed metadata/span events whose spans all reference
/// named tracks.
pub fn parse_trace(text: &str) -> Result<TraceData, TraceViewError> {
    let root = match parse_json(text) {
        Ok(v) => v,
        Err(e) => return malformed(format!("not valid JSON: {e}")),
    };
    let events = match root.get("traceEvents").and_then(JsonValue::as_arr) {
        Some(events) => events,
        None => return malformed("missing `traceEvents` array (not a trace file?)"),
    };
    let mut data = TraceData::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph").and_then(JsonValue::as_str) {
            Some(ph) => ph,
            None => return malformed(format!("traceEvents[{i}] has no `ph` kind")),
        };
        match ph {
            "M" => {
                if ev.get("name").and_then(JsonValue::as_str) != Some("thread_name") {
                    continue;
                }
                let tid = ev.get("tid").and_then(JsonValue::as_u64);
                let name = ev.get("args").and_then(|a| a.get("name")).and_then(JsonValue::as_str);
                match (tid, name) {
                    (Some(tid), Some(name)) => {
                        data.tracks.insert(tid as u32, name.to_owned());
                    }
                    _ => return malformed(format!("traceEvents[{i}]: bad thread_name metadata")),
                }
            }
            "X" => {
                let span = TraceSpan {
                    track: match ev.get("tid").and_then(JsonValue::as_u64) {
                        Some(tid) => tid as u32,
                        None => return malformed(format!("traceEvents[{i}]: span without tid")),
                    },
                    phase: match ev.get("name").and_then(JsonValue::as_str) {
                        Some(name) => name.to_owned(),
                        None => return malformed(format!("traceEvents[{i}]: span without name")),
                    },
                    ts_us: match ev.get("ts").and_then(JsonValue::as_f64) {
                        Some(ts) if ts >= 0.0 => ts,
                        _ => return malformed(format!("traceEvents[{i}]: span without ts")),
                    },
                    dur_us: match ev.get("dur").and_then(JsonValue::as_f64) {
                        Some(dur) if dur >= 0.0 => dur,
                        _ => return malformed(format!("traceEvents[{i}]: span without dur")),
                    },
                };
                data.spans.push(span);
            }
            other => return malformed(format!("traceEvents[{i}]: unsupported kind `{other}`")),
        }
    }
    for (i, s) in data.spans.iter().enumerate() {
        if !data.tracks.contains_key(&s.track) {
            return malformed(format!("span {i} references unnamed track {}", s.track));
        }
    }
    if let Some(aggs) = root.get("phaseAggregates") {
        let members = match aggs.as_obj() {
            Some(members) => members,
            None => return malformed("`phaseAggregates` is not an object"),
        };
        for (label, v) in members {
            let field = |k: &str| v.get(k).and_then(JsonValue::as_u64);
            match (field("count"), field("total_nanos"), field("max_nanos")) {
                (Some(count), Some(total_nanos), Some(max_nanos)) => {
                    data.aggregates
                        .insert(label.clone(), AggregateStat { count, total_nanos, max_nanos });
                }
                _ => return malformed(format!("phaseAggregates.{label}: bad aggregate")),
            }
        }
    }
    Ok(data)
}

/// One row of a per-phase attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase label.
    pub phase: String,
    /// Number of spans (or aggregate occurrences).
    pub count: u64,
    /// Total time, microseconds.
    pub total_us: f64,
    /// Self time (total minus enclosed child spans), microseconds.
    pub self_us: f64,
    /// Self time as a percentage of the run's wall clock. In the
    /// cross-worker table this is CPU time over wall time, so the column
    /// can legitimately sum past 100% when workers run concurrently.
    pub percent_of_wall: f64,
}

/// One row of the per-track utilization table.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackRow {
    /// Track name.
    pub track: String,
    /// Union of busy intervals on the track, microseconds.
    pub busy_us: f64,
    /// Busy time as a fraction of the run's wall clock.
    pub utilization: f64,
}

/// The `nautilus-trace summarize` report.
///
/// ## Attribution semantics
///
/// Phase time is attributed **per track**: self time is computed against
/// the innermost enclosing span *on the same track*, never across
/// threads. [`TraceSummary::phases`] covers only the primary track (the
/// one carrying the `run` root span — the merge thread), so its self
/// times telescope to the run's wall clock and `wall%` sums to ~100%.
/// Spans recorded by other tracks (parallel eval workers) land in
/// [`TraceSummary::worker_phases`] together with aggregate-only phases;
/// that table reports concurrent CPU time, which exceeds wall clock as
/// soon as two workers overlap — mixing the two tables into one, as
/// earlier versions did, silently inflated `wall%` on multi-worker runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Run wall clock, microseconds (the `run` root span, or the overall
    /// span extent when no root was recorded).
    pub wall_us: f64,
    /// Primary-track (merge-thread) attribution, largest self time first.
    /// Self times telescope to the wall clock.
    pub phases: Vec<PhaseRow>,
    /// Cross-worker aggregate: spans from every non-primary track plus
    /// aggregate-only phases, largest self time first. Totals are summed
    /// CPU time across concurrent workers and may exceed the wall clock.
    pub worker_phases: Vec<PhaseRow>,
    /// Per-track busy time and utilization, in track order.
    pub tracks: Vec<TrackRow>,
    /// Estimated wall clock with perfect worker overlap: merge-side time
    /// plus, per batch window (`batch_wait`, plus `batch_dispatch` for
    /// traces predating the dispatch/wait split), only the busiest
    /// worker's time.
    pub critical_path_us: f64,
}

/// Union length of `intervals` (each `(start, end)`), tolerant of overlap.
fn union_len(mut intervals: Vec<(f64, f64)>) -> f64 {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cursor = f64::NEG_INFINITY;
    for (start, end) in intervals {
        let start = start.max(cursor);
        if end > start {
            total += end - start;
            cursor = end;
        }
    }
    total
}

/// Computes the summarize report from a parsed trace.
#[must_use]
pub fn summarize(data: &TraceData) -> TraceSummary {
    let extent_start = data.spans.iter().map(|s| s.ts_us).fold(f64::INFINITY, f64::min);
    let extent_end =
        data.spans.iter().map(|s| s.ts_us + s.dur_us).fold(f64::NEG_INFINITY, f64::max);
    let extent = if data.spans.is_empty() { 0.0 } else { extent_end - extent_start };
    let wall_us =
        data.spans.iter().find(|s| s.phase == "run").map_or(extent, |s| s.dur_us).max(1e-9);

    // The primary track carries the `run` root span (the merge thread);
    // everything else is a worker track whose time is concurrent CPU
    // time, accumulated into a separate cross-worker table.
    let primary_track = data
        .spans
        .iter()
        .find(|s| s.phase == "run")
        .map(|s| s.track)
        .or_else(|| data.tracks.keys().next().copied());

    // Per-phase totals and per-track innermost-enclosing self times (the
    // same attribution `Tracer::phase_stats` computes pre-export). Self
    // time is strictly per track: a span never pays for spans that other
    // threads recorded while it was open.
    let mut primary: BTreeMap<String, (u64, f64, f64)> = BTreeMap::new();
    let mut workers: BTreeMap<String, (u64, f64, f64)> = BTreeMap::new();
    let mut by_track: BTreeMap<u32, Vec<&TraceSpan>> = BTreeMap::new();
    for s in &data.spans {
        let totals = if Some(s.track) == primary_track { &mut primary } else { &mut workers };
        let entry = totals.entry(s.phase.clone()).or_default();
        entry.0 += 1;
        entry.1 += s.dur_us;
        by_track.entry(s.track).or_default().push(s);
    }
    for (track, spans) in by_track.iter_mut() {
        let totals = if Some(*track) == primary_track { &mut primary } else { &mut workers };
        spans.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us).then(b.dur_us.total_cmp(&a.dur_us)));
        struct Open<'a> {
            end: f64,
            phase: &'a str,
            dur: f64,
            children: f64,
        }
        let mut open: Vec<Open> = Vec::new();
        let settle = |totals: &mut BTreeMap<String, (u64, f64, f64)>, o: Open| {
            let entry = totals.entry(o.phase.to_owned()).or_default();
            entry.2 += (o.dur - o.children).max(0.0);
        };
        for s in spans.iter() {
            while open.last().is_some_and(|o| o.end <= s.ts_us) {
                let o = open.pop().expect("checked non-empty");
                settle(totals, o);
            }
            if let Some(parent) = open.last_mut() {
                parent.children += s.dur_us;
            }
            open.push(Open {
                end: s.ts_us + s.dur_us,
                phase: &s.phase,
                dur: s.dur_us,
                children: 0.0,
            });
        }
        while let Some(o) = open.pop() {
            settle(totals, o);
        }
    }
    // Aggregate-only phases (e.g. shard lock waits) accumulate across all
    // evaluator threads, so they belong to the cross-worker table.
    for (label, agg) in &data.aggregates {
        let us = agg.total_nanos as f64 / 1000.0;
        let entry = workers.entry(label.clone()).or_default();
        entry.0 += agg.count;
        entry.1 += us;
        entry.2 += us;
    }
    let rows = |totals: BTreeMap<String, (u64, f64, f64)>| -> Vec<PhaseRow> {
        let mut rows: Vec<PhaseRow> = totals
            .into_iter()
            .map(|(phase, (count, total_us, self_us))| PhaseRow {
                phase,
                count,
                total_us,
                self_us,
                percent_of_wall: 100.0 * self_us / wall_us,
            })
            .collect();
        rows.sort_by(|a, b| b.self_us.total_cmp(&a.self_us));
        rows
    };
    let phases = rows(primary);
    let worker_phases = rows(workers);

    let tracks: Vec<TrackRow> = data
        .tracks
        .iter()
        .map(|(tid, name)| {
            let busy = union_len(
                data.spans
                    .iter()
                    .filter(|s| s.track == *tid)
                    .map(|s| (s.ts_us, s.ts_us + s.dur_us))
                    .collect(),
            );
            TrackRow { track: name.clone(), busy_us: busy, utilization: busy / wall_us }
        })
        .collect();

    // Critical path: outside batch windows the merge thread is the only
    // actor, so those intervals count in full; inside a window only the
    // busiest worker bounds progress. `batch_wait` is the blocking window
    // on the merge thread; `batch_dispatch` is kept for traces recorded
    // before the dispatch/wait split, where it covered the whole window.
    let mut critical = wall_us;
    for d in data.spans.iter().filter(|s| s.phase == "batch_wait" || s.phase == "batch_dispatch") {
        let (w0, w1) = (d.ts_us, d.ts_us + d.dur_us);
        let busiest = data
            .tracks
            .keys()
            .filter(|tid| **tid != d.track)
            .map(|tid| {
                union_len(
                    data.spans
                        .iter()
                        .filter(|s| s.track == *tid && s.ts_us < w1 && s.ts_us + s.dur_us > w0)
                        .map(|s| (s.ts_us.max(w0), (s.ts_us + s.dur_us).min(w1)))
                        .collect(),
                )
            })
            .fold(0.0, f64::max);
        critical -= d.dur_us - busiest.min(d.dur_us);
    }

    TraceSummary { wall_us, phases, worker_phases, tracks, critical_path_us: critical.max(0.0) }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "wall clock      {:>12.3} ms", self.wall_us / 1000.0)?;
        writeln!(
            f,
            "critical path   {:>12.3} ms (perfect worker overlap)",
            self.critical_path_us / 1000.0
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "{:<18} {:>9} {:>12} {:>12} {:>7}",
            "phase", "count", "total ms", "self ms", "wall%"
        )?;
        for row in &self.phases {
            writeln!(
                f,
                "{:<18} {:>9} {:>12.3} {:>12.3} {:>6.1}%",
                row.phase,
                row.count,
                row.total_us / 1000.0,
                row.self_us / 1000.0,
                row.percent_of_wall
            )?;
        }
        if !self.worker_phases.is_empty() {
            writeln!(f)?;
            writeln!(
                f,
                "{:<18} {:>9} {:>12} {:>12} {:>7}",
                "workers (conc.)", "count", "total ms", "self ms", "wall%"
            )?;
            for row in &self.worker_phases {
                writeln!(
                    f,
                    "{:<18} {:>9} {:>12.3} {:>12.3} {:>6.1}%",
                    row.phase,
                    row.count,
                    row.total_us / 1000.0,
                    row.self_us / 1000.0,
                    row.percent_of_wall
                )?;
            }
        }
        writeln!(f)?;
        writeln!(f, "{:<18} {:>12} {:>12}", "track", "busy ms", "util")?;
        for row in &self.tracks {
            writeln!(
                f,
                "{:<18} {:>12.3} {:>11.1}%",
                row.track,
                row.busy_us / 1000.0,
                100.0 * row.utilization
            )?;
        }
        Ok(())
    }
}

/// The timing-invariant logical content of a trace: what must be
/// identical between two same-seed runs of the same build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDigest {
    /// Set of track names (worker count shows up here by design).
    pub tracks: BTreeSet<String>,
    /// Phase label → span count across all tracks.
    pub phase_counts: BTreeMap<String, u64>,
    /// Track name → ordered sequence of phase labels on that track.
    pub sequences: BTreeMap<String, Vec<String>>,
    /// Aggregate label → occurrence count (times are timing, counts are
    /// logic).
    pub aggregate_counts: BTreeMap<String, u64>,
}

/// Reduces a trace to its [`TraceDigest`].
#[must_use]
pub fn digest(data: &TraceData) -> TraceDigest {
    let mut phase_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut sequences: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for name in data.tracks.values() {
        sequences.entry(name.clone()).or_default();
    }
    for s in &data.spans {
        *phase_counts.entry(s.phase.clone()).or_default() += 1;
        let name = &data.tracks[&s.track];
        sequences.entry(name.clone()).or_default().push(s.phase.clone());
    }
    TraceDigest {
        tracks: data.tracks.values().cloned().collect(),
        phase_counts,
        sequences,
        aggregate_counts: data.aggregates.iter().map(|(k, v)| (k.clone(), v.count)).collect(),
    }
}

/// Compares two digests, returning one human-readable line per logical
/// difference (empty = logically identical).
#[must_use]
pub fn diff_digests(a: &TraceDigest, b: &TraceDigest) -> Vec<String> {
    let mut out = Vec::new();
    for t in a.tracks.difference(&b.tracks) {
        out.push(format!("track `{t}` only in first trace"));
    }
    for t in b.tracks.difference(&a.tracks) {
        out.push(format!("track `{t}` only in second trace"));
    }
    let keys: BTreeSet<&String> = a.phase_counts.keys().chain(b.phase_counts.keys()).collect();
    for k in keys {
        let (ca, cb) = (
            a.phase_counts.get(k).copied().unwrap_or(0),
            b.phase_counts.get(k).copied().unwrap_or(0),
        );
        if ca != cb {
            out.push(format!("phase `{k}`: {ca} spans vs {cb}"));
        }
    }
    for (name, seq_a) in &a.sequences {
        if let Some(seq_b) = b.sequences.get(name) {
            if seq_a != seq_b {
                let at = seq_a
                    .iter()
                    .zip(seq_b)
                    .position(|(x, y)| x != y)
                    .unwrap_or(seq_a.len().min(seq_b.len()));
                out.push(format!("track `{name}`: span sequences diverge at index {at}"));
            }
        }
    }
    let keys: BTreeSet<&String> =
        a.aggregate_counts.keys().chain(b.aggregate_counts.keys()).collect();
    for k in keys {
        let (ca, cb) = (
            a.aggregate_counts.get(k).copied().unwrap_or(0),
            b.aggregate_counts.get(k).copied().unwrap_or(0),
        );
        if ca != cb {
            out.push(format!("aggregate `{k}`: {ca} occurrences vs {cb}"));
        }
    }
    out
}

/// Canonical re-serialization of a parsed JSON value, used to compare
/// normalized JSONL events independent of input formatting.
fn render_json(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        JsonValue::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_json(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_json(&JsonValue::Str(k.clone()), out);
                out.push(':');
                render_json(val, out);
            }
            out.push('}');
        }
    }
}

/// Event types that are worker-count artifacts by contract, dropped
/// before comparing streams.
const SHAPE_EVENTS: [&str; 2] = ["eval_batch", "cache_shard_contended"];
/// Payload keys that carry wall-clock or filesystem noise, dropped before
/// comparing streams.
const TIMING_KEYS: [&str; 4] = ["nanos", "wall_nanos", "write_nanos", "path"];

/// Normalizes a JSONL [`nautilus::SearchEvent`] stream to its logical
/// content: drops batch-shape events and timing payload fields, then
/// re-serializes each remaining event canonically.
///
/// # Errors
///
/// Rejects lines that are not JSON objects with a `type` member.
pub fn normalize_events(text: &str) -> Result<Vec<String>, TraceViewError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = match parse_json(line) {
            Ok(v) => v,
            Err(e) => return malformed(format!("line {}: {e}", lineno + 1)),
        };
        let members = match v.as_obj() {
            Some(m) => m,
            None => return malformed(format!("line {}: not a JSON object", lineno + 1)),
        };
        let kind = match v.get("type").and_then(JsonValue::as_str) {
            Some(kind) => kind,
            None => return malformed(format!("line {}: event without `type`", lineno + 1)),
        };
        if SHAPE_EVENTS.contains(&kind) {
            continue;
        }
        let kept: Vec<(String, JsonValue)> =
            members.iter().filter(|(k, _)| !TIMING_KEYS.contains(&k.as_str())).cloned().collect();
        let mut line = String::new();
        render_json(&JsonValue::Obj(kept), &mut line);
        out.push(line);
    }
    Ok(out)
}

/// What `nautilus-trace diff` decided about a pair of artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// Which comparison ran ("trace" or "events").
    pub mode: &'static str,
    /// One line per logical difference; empty means identical.
    pub differences: Vec<String>,
}

/// Diffs two artifacts' *logical* content, auto-detecting the format:
/// a JSON object with `traceEvents` is compared by [`TraceDigest`], a
/// JSONL event stream by normalized events. Both inputs must be the same
/// format.
///
/// # Errors
///
/// Propagates malformed-artifact errors and rejects mixed formats.
pub fn diff_artifacts(a: &str, b: &str) -> Result<DiffReport, TraceViewError> {
    let is_trace = |s: &str| {
        s.trim_start().starts_with('{')
            && parse_json(s).map(|v| v.get("traceEvents").is_some()).unwrap_or(false)
    };
    match (is_trace(a), is_trace(b)) {
        (true, true) => {
            let da = digest(&parse_trace(a)?);
            let db = digest(&parse_trace(b)?);
            Ok(DiffReport { mode: "trace", differences: diff_digests(&da, &db) })
        }
        (false, false) => {
            let na = normalize_events(a)?;
            let nb = normalize_events(b)?;
            let mut differences = Vec::new();
            if na.len() != nb.len() {
                differences.push(format!("{} logical events vs {}", na.len(), nb.len()));
            }
            if let Some(i) = na.iter().zip(&nb).position(|(x, y)| x != y) {
                differences.push(format!("event streams diverge at logical event {i}"));
            }
            Ok(DiffReport { mode: "events", differences })
        }
        _ => malformed("cannot diff a trace file against an event stream"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus::{Phase, Tracer};

    /// A tracer exercising nesting, two tracks, and an aggregate.
    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        {
            let mut merge = tracer.recorder("merge");
            let run = merge.begin();
            let scoring = merge.begin();
            merge.time(Phase::CacheLookup, || std::hint::black_box(3));
            let dispatch = merge.begin();
            merge.end(Phase::BatchDispatch, dispatch);
            merge.end(Phase::Scoring, scoring);
            merge.time(Phase::Selection, || std::hint::black_box(1));
            merge.end(Phase::Run, run);
        }
        {
            let mut worker = tracer.recorder("worker-0");
            worker.time(Phase::MissEval, || std::hint::black_box(2));
            worker.time(Phase::MissEval, || std::hint::black_box(2));
        }
        tracer.add_aggregate(Phase::ShardLockWait, 4, 900, 400);
        tracer
    }

    #[test]
    fn parses_tracer_output_round_trip() {
        let tracer = sample_tracer();
        let data = parse_trace(&tracer.to_chrome_json()).unwrap();
        assert_eq!(
            data.tracks.values().cloned().collect::<Vec<_>>(),
            vec!["merge".to_owned(), "worker-0".to_owned()]
        );
        assert_eq!(data.spans.len(), 7);
        assert_eq!(
            data.aggregates["shard_lock_wait"],
            AggregateStat { count: 4, total_nanos: 900, max_nanos: 400 }
        );
    }

    #[test]
    fn summarize_attributes_self_time_and_utilization() {
        let tracer = sample_tracer();
        let data = parse_trace(&tracer.to_chrome_json()).unwrap();
        let summary = summarize(&data);
        assert!(summary.wall_us > 0.0);
        // The primary table holds only merge-track phases, so its self
        // times telescope exactly to the run root's wall clock.
        let merge_self: f64 = summary.phases.iter().map(|p| p.self_us).sum();
        assert!(
            (merge_self - summary.wall_us).abs() <= summary.wall_us * 0.01,
            "self times must telescope: {merge_self} vs {}",
            summary.wall_us
        );
        // Worker-track spans and aggregate-only phases land in the
        // cross-worker table, never in the primary one.
        assert!(summary.phases.iter().all(|p| p.phase != "miss_eval"));
        let miss = summary.worker_phases.iter().find(|p| p.phase == "miss_eval").unwrap();
        assert_eq!(miss.count, 2);
        let waits = summary.worker_phases.iter().find(|p| p.phase == "shard_lock_wait").unwrap();
        assert_eq!(waits.count, 4);
        assert!((waits.total_us - 0.9).abs() < 1e-9);
        let worker = summary.tracks.iter().find(|t| t.track == "worker-0").unwrap();
        assert!(worker.busy_us > 0.0);
        assert!(summary.critical_path_us <= summary.wall_us + 1e-9);
        let run = summary.phases.iter().find(|p| p.phase == "run").unwrap();
        assert_eq!(run.count, 1);
    }

    #[test]
    fn digest_is_timing_invariant() {
        // Two separate constructions: identical structure, different
        // wall-clock payloads.
        let a = digest(&parse_trace(&sample_tracer().to_chrome_json()).unwrap());
        let b = digest(&parse_trace(&sample_tracer().to_chrome_json()).unwrap());
        assert_eq!(a, b);
        assert!(diff_digests(&a, &b).is_empty());
        assert_eq!(a.sequences["worker-0"], vec!["miss_eval", "miss_eval"]);
        assert_eq!(a.aggregate_counts["shard_lock_wait"], 4);
    }

    #[test]
    fn diff_reports_structural_differences() {
        let a = digest(&parse_trace(&sample_tracer().to_chrome_json()).unwrap());
        let other = Tracer::new();
        {
            let mut merge = other.recorder("merge");
            merge.time(Phase::Selection, || std::hint::black_box(1));
        }
        let b = digest(&parse_trace(&other.to_chrome_json()).unwrap());
        let diffs = diff_digests(&a, &b);
        assert!(!diffs.is_empty());
        assert!(diffs.iter().any(|d| d.contains("worker-0")), "missing track reported: {diffs:?}");
    }

    #[test]
    fn malformed_traces_are_rejected() {
        for bad in [
            "not json",
            "[1, 2]",
            "{\"noTraceEvents\": []}",
            "{\"traceEvents\": [{\"name\": \"x\"}]}",
            "{\"traceEvents\": [{\"ph\": \"X\", \"tid\": 0, \"name\": \"run\", \"ts\": 0.0}]}",
            // Span on a track with no thread_name metadata.
            "{\"traceEvents\": [{\"ph\": \"X\", \"tid\": 9, \"name\": \"run\", \"ts\": 0.0, \"dur\": 1.0}]}",
            "{\"traceEvents\": [], \"phaseAggregates\": {\"run\": {\"count\": 1}}}",
        ] {
            assert!(parse_trace(bad).is_err(), "accepted malformed trace: {bad}");
        }
    }

    #[test]
    fn event_streams_normalize_timing_away() {
        let a = concat!(
            "{\"type\": \"run_start\", \"strategy\": \"baseline\", \"seed\": 7}\n",
            "{\"type\": \"eval_batch\", \"generation\": 0, \"size\": 4, \"workers\": 2}\n",
            "{\"type\": \"span_end\", \"name\": \"scoring\", \"nanos\": 1234}\n",
            "{\"type\": \"run_end\", \"best_value\": 1.5, \"distinct_evals\": 9, \"wall_nanos\": 88}\n",
        );
        let b = concat!(
            "{\"type\": \"run_start\", \"strategy\": \"baseline\", \"seed\": 7}\n",
            "{\"type\": \"span_end\", \"name\": \"scoring\", \"nanos\": 777}\n",
            "{\"type\": \"run_end\", \"best_value\": 1.5, \"distinct_evals\": 9, \"wall_nanos\": 99}\n",
        );
        let report = diff_artifacts(a, b).unwrap();
        assert_eq!(report.mode, "events");
        assert!(report.differences.is_empty(), "{:?}", report.differences);

        let c = "{\"type\": \"run_end\", \"best_value\": 2.5, \"distinct_evals\": 9}\n";
        let report = diff_artifacts(a, c).unwrap();
        assert!(!report.differences.is_empty());
        assert!(normalize_events("not json\n").is_err());
    }

    #[test]
    fn mixed_format_diffs_are_rejected() {
        let trace = sample_tracer().to_chrome_json();
        let events = "{\"type\": \"run_start\"}\n";
        assert!(diff_artifacts(&trace, events).is_err());
    }
}
