//! Chaos-run digests: deterministic fingerprints of faulted searches.
//!
//! `scripts/check.sh` runs the `chaos` binary across a seed matrix at
//! several `eval_workers` settings and diffs the outputs: any divergence
//! means the parallel evaluation pipeline leaked nondeterminism into the
//! fault-handling path. The digest therefore contains everything
//! outcome-shaped — best genome, objective value, job and fault counters —
//! and nothing timing-shaped. The worker count deliberately does not
//! appear in the digest.

use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use nautilus::{
    Confidence, FaultPlan, Nautilus, NautilusError, Query, RetryPolicy, RunBudget, SearchOutcome,
    SupervisePolicy,
};
use nautilus_ga::{GaError, Genome, ParamSpace};
use nautilus_noc::hints::fmax_hints;
use nautilus_obs::json::JsonObj;
use nautilus_synth::{CostModel, MetricCatalog, MetricExpr, MetricSet};

use crate::data::router_dataset;

/// Transient-failure rate of the standard chaos run (the acceptance
/// criterion's "10% injected transient faults").
pub const CHAOS_TRANSIENT_RATE: f64 = 0.10;

/// Hang rate of the hang-storm digest (the acceptance criterion's "10% of
/// distinct genomes hang").
pub const STORM_HANG_RATE: f64 = 0.10;

pub(crate) fn outcome_json(outcome: &SearchOutcome) -> String {
    let f = &outcome.faults;
    let h = &outcome.health;
    let mut o = JsonObj::new();
    o.str("strategy", &outcome.strategy)
        .str("stop", outcome.stop.as_str())
        .str("best_genome", &outcome.best_genome.to_string())
        .f64("best_value", outcome.best_value)
        .u64("trace_points", outcome.trace.len() as u64)
        .u64("jobs", outcome.jobs.jobs)
        .u64("infeasible", outcome.jobs.infeasible)
        .u64("cache_hits", outcome.jobs.cache_hits)
        .u64("tool_secs", outcome.jobs.simulated_tool_secs)
        .u64("evals_failed", f.evals_failed)
        .u64("retries", f.retries)
        .u64("retries_recovered", f.retries_recovered)
        .u64("quarantined", f.quarantined)
        .arr_u64("failed_attempts", &f.failed_attempts)
        .u64("attempts_supervised", h.attempts_supervised)
        .u64("watchdog_fired", h.watchdog_fired)
        .u64("late_results_discarded", h.late_results_discarded)
        .u64("hedges_issued", h.hedges_issued)
        .u64("hedges_won", h.hedges_won)
        .u64("hedges_wasted", h.hedges_wasted)
        .u64("breaker_trips", h.breaker_trips)
        .u64("breaker_recoveries", h.breaker_recoveries)
        .u64("breaker_probes", h.breaker_probes)
        .u64("evals_shed", h.evals_shed);
    o.finish()
}

/// Runs the standard chaos pair — baseline and strongly guided searches of
/// the router *maximize Fmax* query under a 10% transient fault storm —
/// and returns a deterministic JSON digest of both outcomes.
///
/// Digests for the same `seed` must be byte-identical at every `workers`
/// setting; that is exactly what the check-script gate diffs.
///
/// # Panics
///
/// Panics if a search fails outright, which the packaged router dataset
/// cannot cause at this fault rate with retries enabled.
#[must_use]
pub fn chaos_digest(seed: u64, workers: usize) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let query = router_query(d.catalog());
    let engine = chaos_engine(&model, seed, workers);
    let baseline = engine.run_baseline(&query, seed).expect("chaos baseline run");
    let guided = engine
        .run_guided(&query, &fmax_hints(), Some(Confidence::STRONG), seed)
        .expect("chaos guided run");
    digest_pair(seed, &baseline, &guided)
}

/// The standard chaos engine over `model` (10% transient storm keyed on
/// `seed`, default retries, `workers` evaluator threads).
fn chaos_engine<'m>(model: &'m dyn CostModel, seed: u64, workers: usize) -> Nautilus<'m> {
    let plan = FaultPlan::new(seed).with_transient_rate(CHAOS_TRANSIENT_RATE);
    Nautilus::new(model)
        .with_fault_plan(plan)
        .with_retry_policy(RetryPolicy::default())
        .with_eval_workers(workers)
}

/// Runs the supervised hang-storm pair — baseline and strongly guided
/// searches of the router *maximize Fmax* query where 10% of attempts
/// hang (plus the standard 10% transient storm) — under watchdog /
/// hedging / circuit-breaker supervision, and returns a deterministic
/// JSON digest of both outcomes, health counters included.
///
/// Without supervision this plan would wedge a real evaluation pipeline;
/// here every hang is abandoned at the watchdog deadline and surfaced as
/// a timeout. Digests for the same `seed` must be byte-identical at every
/// `workers` setting.
///
/// # Panics
///
/// Panics if a search fails outright or the run's hedging identity
/// (`hedges_issued == hedges_won + hedges_wasted`) does not reconcile.
#[must_use]
pub fn hang_storm_digest(seed: u64, workers: usize) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let query = router_query(d.catalog());
    let engine = storm_engine(&model, seed, workers);
    let baseline = engine.run_baseline(&query, seed).expect("hang-storm baseline run");
    let guided = engine
        .run_guided(&query, &fmax_hints(), Some(Confidence::STRONG), seed)
        .expect("hang-storm guided run");
    storm_pair(seed, &baseline, &guided)
}

/// Digest assembly for a supervised hang-storm pair — shared with the
/// subprocess digests so the process boundary can be diffed byte for
/// byte. Asserts the hedging identity of both outcomes.
pub(crate) fn storm_pair(seed: u64, baseline: &SearchOutcome, guided: &SearchOutcome) -> String {
    for outcome in [baseline, guided] {
        assert!(outcome.health.reconciles(), "hedge identity broken: {:?}", outcome.health);
    }
    let mut o = JsonObj::new();
    o.u64("storm_seed", seed)
        .f64("hang_rate", STORM_HANG_RATE)
        .f64("transient_rate", CHAOS_TRANSIENT_RATE)
        .raw("baseline", &outcome_json(baseline))
        .raw("guided", &outcome_json(guided));
    o.finish()
}

/// The supervised hang-storm engine over `model`: the standard chaos plan
/// plus a 10% hang rate, watched by the default [`SupervisePolicy`].
fn storm_engine<'m>(model: &'m dyn CostModel, seed: u64, workers: usize) -> Nautilus<'m> {
    let plan = FaultPlan::new(seed)
        .with_transient_rate(CHAOS_TRANSIENT_RATE)
        .with_hang_rate(STORM_HANG_RATE);
    Nautilus::new(model)
        .with_fault_plan(plan)
        .with_retry_policy(RetryPolicy::default())
        .with_supervision(SupervisePolicy::default())
        .with_eval_workers(workers)
}

pub(crate) fn router_query(catalog: &MetricCatalog) -> Query {
    let fmax = MetricExpr::metric(catalog.require("fmax").expect("router metric"));
    Query::maximize("fmax", fmax)
}

pub(crate) fn digest_pair(seed: u64, baseline: &SearchOutcome, guided: &SearchOutcome) -> String {
    let mut o = JsonObj::new();
    o.u64("chaos_seed", seed)
        .f64("transient_rate", CHAOS_TRANSIENT_RATE)
        .raw("baseline", &outcome_json(baseline))
        .raw("guided", &outcome_json(guided));
    o.finish()
}

/// Runs the standard chaos pair interrupted-then-resumed and returns the
/// final digest, which must be byte-identical to [`chaos_digest`] for the
/// same seed at every worker count.
///
/// Each search first runs under a `budget_generations` cap with durable
/// checkpoints in a subdirectory of `dir` (`baseline/`, `guided/`), then
/// is resumed from disk to completion by a second engine instance — the
/// same state round trip a crash-and-restart performs.
///
/// # Panics
///
/// Panics if a search or resume fails, which intact checkpoint
/// directories cannot cause.
#[must_use]
pub fn chaos_resume_digest(
    seed: u64,
    workers: usize,
    dir: &Path,
    budget_generations: u32,
) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let query = router_query(d.catalog());
    let hints = fmax_hints();
    let budget = RunBudget::new().with_max_generations(budget_generations);

    let base_dir = dir.join("baseline");
    let cut = chaos_engine(&model, seed, workers)
        .with_checkpoints(&base_dir)
        .with_budget(budget.clone())
        .run_baseline(&query, seed)
        .expect("chaos baseline (interrupted) run");
    assert!(cut.stop.is_interrupted(), "budget {budget_generations} should interrupt the run");
    let baseline = chaos_engine(&model, seed, workers)
        .resume_from(&query, None, &base_dir)
        .expect("chaos baseline resume");

    let guided_dir = dir.join("guided");
    chaos_engine(&model, seed, workers)
        .with_checkpoints(&guided_dir)
        .with_budget(budget)
        .run_guided(&query, &hints, Some(Confidence::STRONG), seed)
        .expect("chaos guided (interrupted) run");
    let guided = chaos_engine(&model, seed, workers)
        .resume_from(&query, Some((&hints, Some(Confidence::STRONG))), &guided_dir)
        .expect("chaos guided resume");

    digest_pair(seed, &baseline, &guided)
}

/// Recovers whatever a killed [`chaos_victim`] process left in `dir` and
/// drives both searches to completion, returning the final digest.
///
/// Searches whose checkpoint directory holds an intact record are resumed
/// from it; searches the victim never reached (or that left nothing
/// intact) are rerun from scratch. Either way the digest must match
/// [`chaos_digest`] byte for byte — a `SIGKILL` at an arbitrary point may
/// cost re-done work, never a different answer.
///
/// # Panics
///
/// Panics if a search fails outright.
#[must_use]
pub fn chaos_recover_digest(seed: u64, workers: usize, dir: &Path) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let query = router_query(d.catalog());
    let hints = fmax_hints();

    let baseline = resume_or_rerun(
        chaos_engine(&model, seed, workers).resume_from(&query, None, dir.join("baseline")),
        || chaos_engine(&model, seed, workers).run_baseline(&query, seed),
    );
    let guided = resume_or_rerun(
        chaos_engine(&model, seed, workers).resume_from(
            &query,
            Some((&hints, Some(Confidence::STRONG))),
            dir.join("guided"),
        ),
        || {
            chaos_engine(&model, seed, workers).run_guided(
                &query,
                &hints,
                Some(Confidence::STRONG),
                seed,
            )
        },
    );
    digest_pair(seed, &baseline, &guided)
}

/// Falls back to a fresh run only for *absence* of usable state — a crash
/// before the first checkpoint boundary. Any other failure (I/O, settings
/// mismatch) propagates: recovery must never paper over a real error.
fn resume_or_rerun(
    resumed: nautilus::Result<SearchOutcome>,
    rerun: impl FnOnce() -> nautilus::Result<SearchOutcome>,
) -> SearchOutcome {
    match resumed {
        Ok(outcome) => outcome,
        Err(NautilusError::Ga(GaError::Checkpoint(reason)))
            if reason.contains("no intact checkpoint") =>
        {
            rerun().expect("chaos rerun after empty checkpoint dir")
        }
        Err(err) => panic!("chaos recovery failed: {err}"),
    }
}

/// Wraps a cost model with a fixed per-evaluation delay. Values are
/// untouched, so outcomes stay bit-identical — the delay only stretches
/// wall-clock time enough for a parent process to `SIGKILL` the victim
/// mid-search.
struct SlowModel<'m> {
    inner: &'m dyn CostModel,
    delay: Duration,
}

impl std::fmt::Debug for SlowModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowModel").field("inner", &self.inner.name()).finish()
    }
}

impl CostModel for SlowModel<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }
    fn catalog(&self) -> &MetricCatalog {
        self.inner.catalog()
    }
    fn evaluate(&self, genome: &Genome) -> Option<MetricSet> {
        std::thread::sleep(self.delay);
        self.inner.evaluate(genome)
    }
    fn synth_time(&self, genome: &Genome) -> Duration {
        self.inner.synth_time(genome)
    }
}

/// Runs the full chaos pair with durable checkpoints in `dir` and an
/// artificial `eval_delay` per evaluation — the designated victim of the
/// kill-and-resume gate. A parent process SIGKILLs it partway; if it
/// survives, it returns the same digest [`chaos_digest`] produces.
///
/// `cancel` cooperatively stops each search at the next generation
/// boundary (with a final checkpoint) when raised — wire it to SIGINT so
/// an interactive Ctrl-C also degrades into a clean resumable stop.
///
/// # Panics
///
/// Panics if a search fails outright.
#[must_use]
pub fn chaos_victim(
    seed: u64,
    workers: usize,
    dir: &Path,
    eval_delay: Duration,
    cancel: Arc<AtomicBool>,
) -> String {
    let d = router_dataset();
    let model = SlowModel { inner: &d.as_model(), delay: eval_delay };
    let query = router_query(d.catalog());
    let hints = fmax_hints();
    let budget = RunBudget::new().with_cancel_flag(cancel);

    let baseline = chaos_engine(&model, seed, workers)
        .with_checkpoints(dir.join("baseline"))
        .with_budget(budget.clone())
        .run_baseline(&query, seed)
        .expect("chaos victim baseline run");
    let guided = chaos_engine(&model, seed, workers)
        .with_checkpoints(dir.join("guided"))
        .with_budget(budget)
        .run_guided(&query, &hints, Some(Confidence::STRONG), seed)
        .expect("chaos victim guided run");
    digest_pair(seed, &baseline, &guided)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_seed_sensitive_and_fault_bearing() {
        let a = chaos_digest(1, 1);
        assert_eq!(a, chaos_digest(1, 1), "same seed must reproduce byte-identically");
        assert_ne!(a, chaos_digest(2, 1), "different seeds must inject differently");
        assert!(nautilus::obs::json::is_valid_json(&a));
        assert!(a.contains("\"evals_failed\""));
        assert!(!a.contains("\"evals_failed\":0"), "10% storm should record failures");
        assert!(!a.contains("workers"), "digest must not leak the worker count");
    }
}
