//! Chaos-run digests: deterministic fingerprints of faulted searches.
//!
//! `scripts/check.sh` runs the `chaos` binary across a seed matrix at
//! several `eval_workers` settings and diffs the outputs: any divergence
//! means the parallel evaluation pipeline leaked nondeterminism into the
//! fault-handling path. The digest therefore contains everything
//! outcome-shaped — best genome, objective value, job and fault counters —
//! and nothing timing-shaped. The worker count deliberately does not
//! appear in the digest.

use nautilus::{Confidence, FaultPlan, Nautilus, Query, RetryPolicy, SearchOutcome};
use nautilus_noc::hints::fmax_hints;
use nautilus_obs::json::JsonObj;
use nautilus_synth::MetricExpr;

use crate::data::router_dataset;

/// Transient-failure rate of the standard chaos run (the acceptance
/// criterion's "10% injected transient faults").
pub const CHAOS_TRANSIENT_RATE: f64 = 0.10;

fn outcome_json(outcome: &SearchOutcome) -> String {
    let f = &outcome.faults;
    let mut o = JsonObj::new();
    o.str("strategy", &outcome.strategy)
        .str("best_genome", &outcome.best_genome.to_string())
        .f64("best_value", outcome.best_value)
        .u64("trace_points", outcome.trace.len() as u64)
        .u64("jobs", outcome.jobs.jobs)
        .u64("infeasible", outcome.jobs.infeasible)
        .u64("cache_hits", outcome.jobs.cache_hits)
        .u64("tool_secs", outcome.jobs.simulated_tool_secs)
        .u64("evals_failed", f.evals_failed)
        .u64("retries", f.retries)
        .u64("retries_recovered", f.retries_recovered)
        .u64("quarantined", f.quarantined)
        .arr_u64("failed_attempts", &f.failed_attempts);
    o.finish()
}

/// Runs the standard chaos pair — baseline and strongly guided searches of
/// the router *maximize Fmax* query under a 10% transient fault storm —
/// and returns a deterministic JSON digest of both outcomes.
///
/// Digests for the same `seed` must be byte-identical at every `workers`
/// setting; that is exactly what the check-script gate diffs.
///
/// # Panics
///
/// Panics if a search fails outright, which the packaged router dataset
/// cannot cause at this fault rate with retries enabled.
#[must_use]
pub fn chaos_digest(seed: u64, workers: usize) -> String {
    let d = router_dataset();
    let model = d.as_model();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("router metric"));
    let query = Query::maximize("fmax", fmax);
    let plan = FaultPlan::new(seed).with_transient_rate(CHAOS_TRANSIENT_RATE);
    let engine = Nautilus::new(&model)
        .with_fault_plan(plan)
        .with_retry_policy(RetryPolicy::default())
        .with_eval_workers(workers);
    let baseline = engine.run_baseline(&query, seed).expect("chaos baseline run");
    let guided = engine
        .run_guided(&query, &fmax_hints(), Some(Confidence::STRONG), seed)
        .expect("chaos guided run");
    let mut o = JsonObj::new();
    o.u64("chaos_seed", seed)
        .f64("transient_rate", CHAOS_TRANSIENT_RATE)
        .raw("baseline", &outcome_json(&baseline))
        .raw("guided", &outcome_json(&guided));
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_seed_sensitive_and_fault_bearing() {
        let a = chaos_digest(1, 1);
        assert_eq!(a, chaos_digest(1, 1), "same seed must reproduce byte-identically");
        assert_ne!(a, chaos_digest(2, 1), "different seeds must inject differently");
        assert!(nautilus::obs::json::is_valid_json(&a));
        assert!(a.contains("\"evals_failed\""));
        assert!(!a.contains("\"evals_failed\":0"), "10% storm should record failures");
        assert!(!a.contains("workers"), "digest must not leak the worker count");
    }
}
