//! Telemetry capture for the experiments binary.
//!
//! The figures aggregate thousands of runs and keep only averaged curves;
//! this module does the opposite for a *pair* of exemplar runs (baseline
//! vs. strongly guided on the router Fmax query): it streams every
//! [`nautilus::SearchEvent`] to a JSONL file and writes the aggregated
//! [`RunReport`] next to it, so the per-generation hint/mutation/cache
//! dynamics behind the averaged figures can be inspected offline.
//!
//! Wired to `experiments --telemetry <dir>` (or the `NAUTILUS_TELEMETRY`
//! environment variable).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use nautilus::{
    Confidence, FaultPlan, JsonlSink, Nautilus, Query, RunReport, SearchOutcome, TraceSink, Tracer,
};
use nautilus_noc::hints::fmax_hints;
use nautilus_synth::MetricExpr;

use crate::data::router_dataset;

/// Artifacts of one captured telemetry run.
#[derive(Debug)]
pub struct TelemetryArtifacts {
    /// Strategy label of the captured run.
    pub strategy: String,
    /// Path of the JSONL event stream (one `SearchEvent` per line).
    pub events_path: PathBuf,
    /// Path of the aggregated run-report JSON.
    pub report_path: PathBuf,
    /// The run's outcome, for reconciliation against the report.
    pub outcome: SearchOutcome,
    /// The aggregated report.
    pub report: RunReport,
}

/// Captures the exemplar telemetry pair into `dir` (created if missing):
/// a baseline and a strongly guided run of the paper's *maximize Fmax*
/// router query, both from `seed`.
///
/// Returns one [`TelemetryArtifacts`] per run.
///
/// # Errors
///
/// Returns any error creating the directory or writing the artifacts.
///
/// # Panics
///
/// Panics if the search itself fails, which the packaged router dataset
/// and hints cannot cause.
pub fn capture_telemetry(dir: &Path, seed: u64) -> io::Result<Vec<TelemetryArtifacts>> {
    capture_inner(dir, seed, None)
}

/// [`capture_telemetry`] against a *faulting* runner: every evaluation
/// goes through deterministic fault injection per `plan`, so the captured
/// stream also carries the failure/retry/quarantine events and the report
/// carries a non-trivial `faults` block. File names gain a `chaos-`
/// prefix to keep the clean and faulted artifacts apart.
///
/// # Errors
///
/// Returns any error creating the directory or writing the artifacts.
///
/// # Panics
///
/// Panics if the search fails outright; keep the plan's rates storm-sized,
/// not apocalypse-sized.
pub fn capture_chaos_telemetry(
    dir: &Path,
    seed: u64,
    plan: FaultPlan,
) -> io::Result<Vec<TelemetryArtifacts>> {
    capture_inner(dir, seed, Some(plan))
}

/// Artifacts of one traced profiling run.
#[derive(Debug)]
pub struct TraceArtifacts {
    /// Strategy label of the traced run.
    pub strategy: String,
    /// Path of the Chrome/Perfetto trace-event JSON (load at
    /// `ui.perfetto.dev`).
    pub trace_path: PathBuf,
    /// Path of the JSONL event stream captured alongside the trace.
    pub events_path: PathBuf,
    /// Path of the aggregated run-report JSON (schema 6: carries the
    /// per-phase `phases` attribution block).
    pub report_path: PathBuf,
    /// The run's outcome, for reconciliation.
    pub outcome: SearchOutcome,
    /// The aggregated report.
    pub report: RunReport,
}

/// Captures the exemplar *traced* run pair into `dir` (created if
/// missing): a baseline and a strongly guided run of the paper's
/// *maximize Fmax* router query, both from `seed`, each with a span
/// [`Tracer`] attached. Per run it writes a Perfetto-loadable
/// `*.trace.json`, the `*.events.jsonl` stream, and the schema-6
/// `*.report.json` whose `phases` block attributes the run's wall clock.
///
/// Tracing is determinism-safe, so two same-seed captures must agree on
/// every logical artifact — the `nautilus-trace diff` CI gate relies on
/// exactly that.
///
/// # Errors
///
/// Returns any error creating the directory or writing the artifacts.
///
/// # Panics
///
/// Panics if the search itself fails, which the packaged router dataset
/// and hints cannot cause.
pub fn capture_traced(dir: &Path, seed: u64) -> io::Result<Vec<TraceArtifacts>> {
    fs::create_dir_all(dir)?;
    let d = router_dataset();
    let model = d.as_model();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("router metric"));
    let query = Query::maximize("fmax", fmax);
    let hints = fmax_hints();

    let mut artifacts = Vec::new();
    for guided in [false, true] {
        let tag = if guided { "guided-strong" } else { "baseline" };
        let trace_path = dir.join(format!("{tag}-seed{seed}.trace.json"));
        let events_path = dir.join(format!("{tag}-seed{seed}.events.jsonl"));
        let report_path = dir.join(format!("{tag}-seed{seed}.report.json"));
        let sink = JsonlSink::create(&events_path)?;
        let tracer = Tracer::new();
        let engine = Nautilus::new(&model).with_observer(&sink).with_tracer(&tracer);
        let (outcome, report) = if guided {
            engine.run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
        } else {
            engine.run_baseline_reported(&query, seed)
        }
        .expect("traced run over the packaged dataset");
        sink.flush()?;
        TraceSink::new(&trace_path).write(&tracer)?;
        fs::write(&report_path, report.to_json())?;
        artifacts.push(TraceArtifacts {
            strategy: outcome.strategy.clone(),
            trace_path,
            events_path,
            report_path,
            outcome,
            report,
        });
    }
    Ok(artifacts)
}

fn capture_inner(
    dir: &Path,
    seed: u64,
    plan: Option<FaultPlan>,
) -> io::Result<Vec<TelemetryArtifacts>> {
    fs::create_dir_all(dir)?;
    let d = router_dataset();
    let model = d.as_model();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("router metric"));
    let query = Query::maximize("fmax", fmax);
    let hints = fmax_hints();

    let mut artifacts = Vec::new();
    for guided in [false, true] {
        let tag = if guided { "guided-strong" } else { "baseline" };
        let prefix = if plan.is_some() { "chaos-" } else { "" };
        let events_path = dir.join(format!("{prefix}{tag}-seed{seed}.events.jsonl"));
        let report_path = dir.join(format!("{prefix}{tag}-seed{seed}.report.json"));
        let sink = JsonlSink::create(&events_path)?;
        let mut engine = Nautilus::new(&model).with_observer(&sink);
        if let Some(plan) = plan {
            engine = engine.with_fault_plan(plan);
        }
        let (outcome, report) = if guided {
            engine.run_guided_reported(&query, &hints, Some(Confidence::STRONG), seed)
        } else {
            engine.run_baseline_reported(&query, seed)
        }
        .expect("telemetry run over the packaged dataset");
        sink.flush()?;
        fs::write(&report_path, report.to_json())?;
        artifacts.push(TelemetryArtifacts {
            strategy: outcome.strategy.clone(),
            events_path,
            report_path,
            outcome,
            report,
        });
    }
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_artifacts_reconcile_and_parse() {
        let dir = std::env::temp_dir().join("nautilus-telemetry-unit");
        let artifacts = capture_telemetry(&dir, 9).unwrap();
        assert_eq!(artifacts.len(), 2);
        assert_eq!(artifacts[0].strategy, "baseline");
        assert_eq!(artifacts[1].strategy, "nautilus-strong");
        for a in &artifacts {
            assert_eq!(a.report.strategy, a.strategy);
            assert_eq!(a.report.evals.total_lookups(), a.outcome.jobs.total_lookups());
            let events = fs::read_to_string(&a.events_path).unwrap();
            assert!(events.lines().count() > 0, "event stream not empty");
            let report = fs::read_to_string(&a.report_path).unwrap();
            assert!(nautilus::obs::json::is_valid_json(&report));
            let _ = fs::remove_file(&a.events_path);
            let _ = fs::remove_file(&a.report_path);
        }
    }

    #[test]
    fn traced_capture_attributes_wall_clock_and_is_deterministic() {
        use crate::traceview;

        let dir = std::env::temp_dir().join("nautilus-trace-unit-a");
        let dir2 = std::env::temp_dir().join("nautilus-trace-unit-b");
        let artifacts = capture_traced(&dir, 27).unwrap();
        let again = capture_traced(&dir2, 27).unwrap();
        assert_eq!(artifacts.len(), 2);
        for (a, b) in artifacts.iter().zip(&again) {
            // The trace file parses and its per-phase self times sum to
            // the run's wall clock within the 5% acceptance band.
            let text = fs::read_to_string(&a.trace_path).unwrap();
            let summary = traceview::summarize(&traceview::parse_trace(&text).unwrap());
            // Serial runs put every span on the merge track, so self
            // times telescope to the wall clock; only the shard-lock
            // aggregate double-counts (its time sits inside eval spans).
            let attributed: f64 = summary
                .phases
                .iter()
                .filter(|p| p.phase != "shard_lock_wait")
                .map(|p| p.self_us)
                .sum();
            let drift = (attributed - summary.wall_us).abs() / summary.wall_us;
            assert!(
                drift < 0.05,
                "{}: attribution drifts {:.1}% off wall",
                a.strategy,
                drift * 100.0
            );

            // Schema-6 report carries the same attribution.
            assert!(!a.report.phases.is_empty(), "{}: report without phases", a.strategy);
            let report_json = fs::read_to_string(&a.report_path).unwrap();
            assert!(report_json.contains("\"phases\""));

            // Same-seed captures are logically identical: traces digest
            // equal, event streams normalize equal.
            let text_b = fs::read_to_string(&b.trace_path).unwrap();
            let diff = traceview::diff_artifacts(&text, &text_b).unwrap();
            assert!(diff.differences.is_empty(), "{}: {:?}", a.strategy, diff.differences);
            let ev_a = fs::read_to_string(&a.events_path).unwrap();
            let ev_b = fs::read_to_string(&b.events_path).unwrap();
            let diff = traceview::diff_artifacts(&ev_a, &ev_b).unwrap();
            assert!(diff.differences.is_empty(), "{}: {:?}", a.strategy, diff.differences);
            assert_eq!(a.outcome, b.outcome);

            for p in [&a.trace_path, &a.events_path, &a.report_path] {
                let _ = fs::remove_file(p);
            }
            for p in [&b.trace_path, &b.events_path, &b.report_path] {
                let _ = fs::remove_file(p);
            }
        }
    }

    #[test]
    fn chaos_capture_records_failures_and_still_reconciles() {
        let dir = std::env::temp_dir().join("nautilus-telemetry-chaos-unit");
        let plan = FaultPlan::new(17).with_transient_rate(0.15);
        let artifacts = capture_chaos_telemetry(&dir, 17, plan).unwrap();
        assert_eq!(artifacts.len(), 2);
        for a in &artifacts {
            assert!(
                a.outcome.faults.evals_failed > 0,
                "{}: a 15% storm should record failures",
                a.strategy
            );
            assert!(a.outcome.faults.reconciles());
            // The report is rebuilt from the event stream alone; its
            // failure ledger must agree with the engine's exactly.
            assert_eq!(a.report.faults.evals_failed(), a.outcome.faults.evals_failed);
            assert_eq!(a.report.faults.retries, a.outcome.faults.retries);
            assert_eq!(a.report.faults.quarantined, a.outcome.faults.quarantined);
            assert_eq!(a.report.evals.total_lookups(), a.outcome.jobs.total_lookups());
            let events = fs::read_to_string(&a.events_path).unwrap();
            assert!(
                events.contains("eval_attempt_failed"),
                "failure events must reach the JSONL stream"
            );
            let file_name = a.events_path.file_name().unwrap().to_string_lossy().into_owned();
            assert!(file_name.starts_with("chaos-"), "chaos artifacts are prefixed: {file_name}");
            let report = fs::read_to_string(&a.report_path).unwrap();
            assert!(report.contains("\"faults\""));
            let _ = fs::remove_file(&a.events_path);
            let _ = fs::remove_file(&a.report_path);
        }
        // Injection must not perturb which artifacts get captured: the
        // clean capture still produces its unprefixed pair independently.
        let clean = capture_telemetry(&dir, 17).unwrap();
        assert_eq!(clean.len(), 2);
        assert_eq!(clean[0].outcome.faults, nautilus::FaultStats::default());
        for a in &clean {
            let _ = fs::remove_file(&a.events_path);
            let _ = fs::remove_file(&a.report_path);
        }
    }
}
