//! Ablation studies beyond the paper's figures.
//!
//! The paper motivates several design choices — hint classes are
//! complementary, confidence balances guidance against stochasticity,
//! wrong hints must not break the search (footnote 1), importance decay
//! trades coarse navigation for fine-tuning — without isolating them
//! experimentally. These studies do, on the same datasets and accounting:
//!
//! * [`abl_hint_classes`] — each hint class alone vs. the full set.
//! * [`abl_confidence`] — a confidence sweep from 0 (baseline) to 1.
//! * [`abl_wrong_hints`] — deliberately inverted hints: the stochastic
//!   core must degrade gracefully, not diverge.
//! * [`abl_decay`] — estimated hints with and without importance decay.
//! * [`abl_operators`] — guided mutation alone vs. adding the guided
//!   crossover extension.
//! * [`abl_metaheuristics`] — the GA family vs. simulated annealing,
//!   hill climbing and random sampling.

use nautilus::{
    compare, estimate_hints, AnnealConfig, Confidence, EstimateConfig, ParamHint, Query, Strategy,
    ValueHint,
};
use nautilus_fft::hints::min_luts_hints;
use nautilus_ga::Direction;
use nautilus_noc::hints::fmax_hints;
use nautilus_noc::router::RouterModel;
use nautilus_synth::MetricExpr;

use crate::data::{fft_dataset, router_dataset};
use crate::figures::Scale;
use crate::report::{ExperimentReport, Headline};

/// Convergence headline for one strategy of a comparison.
fn reach_line(
    cmp: &nautilus::Comparison,
    name: &str,
    threshold: f64,
    paper: &str,
    label: &str,
) -> Headline {
    let stats = cmp.result(name).expect("strategy ran").reach_stats(cmp.direction, threshold);
    let measured = stats
        .censored_mean_evals
        .map_or("n/a".to_owned(), |e| format!("{e:.0} jobs ({}/{})", stats.reached, stats.total));
    Headline::new(label.to_owned(), paper.to_owned(), measured)
}

/// Hint-class ablation on the Figure 6 query (FFT, minimize LUTs):
/// importance-only, bias-only, target-only and the full expert set.
///
/// # Panics
///
/// Panics if an underlying comparison fails (it cannot for packaged data).
#[must_use]
pub fn abl_hint_classes(scale: Scale) -> ExperimentReport {
    let d = fft_dataset();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("fft metric"));
    let query = Query::minimize("luts", luts.clone());

    let full = min_luts_hints();
    let importance_only = full.map_hints(|_, h| Some(ParamHint { value: None, ..h.clone() }));
    let bias_only = full.map_hints(|_, h| match &h.value {
        Some(ValueHint::Bias(_)) => Some(ParamHint { importance: None, decay: None, ..h.clone() }),
        _ => None,
    });
    let target_only = full.map_hints(|_, h| match &h.value {
        Some(ValueHint::Target(_)) => {
            Some(ParamHint { importance: None, decay: None, ..h.clone() })
        }
        _ => None,
    });

    let strategies = [
        Strategy::baseline(),
        Strategy::guided("importance-only", importance_only, Some(Confidence::STRONG)),
        Strategy::guided("bias-only", bias_only, Some(Confidence::STRONG)),
        Strategy::guided("target-only", target_only, Some(Confidence::STRONG)),
        Strategy::guided("full-hints", full, Some(Confidence::STRONG)),
    ];
    let cfg = scale.compare_config(scale.runs, 0xAB_01);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("ablation comparison");

    let (_, best) = d.best(&luts, Direction::Minimize);
    let threshold = 1.05 * best;
    let headlines = strategies
        .iter()
        .map(|s| {
            reach_line(
                &cmp,
                s.name(),
                threshold,
                "full <= any single class",
                &format!("{}: jobs to within 5% of min LUTs", s.name()),
            )
        })
        .collect();

    ExperimentReport {
        id: "abl-hint-classes",
        title: "Ablation: hint classes in isolation (FFT min-LUTs)".into(),
        headlines,
        table: cmp.render_table(10),
        csv: vec![("abl_hint_classes.csv".into(), cmp.to_csv())],
    }
}

/// Confidence sweep on the Figure 4 query: 0.0 (baseline-equivalent) to
/// 1.0 (fully directed), one hint set.
///
/// # Panics
///
/// Panics if an underlying comparison fails.
#[must_use]
pub fn abl_confidence(scale: Scale) -> ExperimentReport {
    let d = router_dataset();
    let model = d.as_model();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("router metric"));
    let query = Query::maximize("fmax", fmax.clone());
    let hints = fmax_hints();

    let levels = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
    let strategies: Vec<Strategy> = levels
        .iter()
        .map(|&c| {
            Strategy::guided(
                format!("confidence-{c:.2}"),
                hints.clone(),
                Some(Confidence::new(c).expect("static confidence")),
            )
        })
        .collect();
    let cfg = scale.compare_config(scale.runs, 0xAB_02);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("ablation comparison");

    let (_, best) = d.best(&fmax, Direction::Maximize);
    let threshold = 0.98 * best;
    let headlines = strategies
        .iter()
        .map(|s| {
            reach_line(
                &cmp,
                s.name(),
                threshold,
                "cost decreases with confidence",
                &format!("{}: jobs to within 2% of best Fmax", s.name()),
            )
        })
        .collect();

    ExperimentReport {
        id: "abl-confidence",
        title: "Ablation: confidence sweep (NoC max-Fmax)".into(),
        headlines,
        table: cmp.render_table(10),
        csv: vec![("abl_confidence.csv".into(), cmp.to_csv())],
    }
}

/// Wrong-hints robustness (paper footnote 1): every bias inverted, the
/// target flipped. The guided search must still converge — slower than the
/// baseline, but never diverging — because hints are probabilistic.
///
/// # Panics
///
/// Panics if an underlying comparison fails.
#[must_use]
pub fn abl_wrong_hints(scale: Scale) -> ExperimentReport {
    let d = router_dataset();
    let model = d.as_model();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("router metric"));
    let query = Query::maximize("fmax", fmax.clone());

    let good = fmax_hints();
    // Invert every bias; drop targets (their inverses are undefined).
    let wrong = good.map_hints(|_, h| {
        let value = match &h.value {
            Some(ValueHint::Bias(b)) => {
                Some(ValueHint::Bias(nautilus::Bias::new(-b.get()).expect("negation in range")))
            }
            _ => None,
        };
        Some(ParamHint { value, ..h.clone() })
    });

    let strategies = [
        Strategy::baseline(),
        Strategy::guided("good-hints-strong", good, Some(Confidence::STRONG)),
        Strategy::guided("wrong-hints-weak", wrong.clone(), Some(Confidence::WEAK)),
        Strategy::guided("wrong-hints-strong", wrong, Some(Confidence::STRONG)),
    ];
    let cfg = scale.compare_config(scale.runs, 0xAB_03);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("ablation comparison");

    // Even misled searches must deliver a decent design by the end.
    let mut headlines: Vec<Headline> = strategies
        .iter()
        .map(|s| {
            let r = cmp.result(s.name()).expect("strategy ran");
            Headline::new(
                format!("{}: mean final best Fmax (MHz)", s.name()),
                "wrong hints degrade, never break",
                format!("{:.1}", r.mean_best()),
            )
        })
        .collect();
    let (_, best) = d.best(&fmax, Direction::Maximize);
    headlines.push(reach_line(
        &cmp,
        "wrong-hints-strong",
        0.95 * best,
        "slower than baseline, still reaches",
        "wrong-hints-strong: jobs to within 5% of best",
    ));
    headlines.push(reach_line(
        &cmp,
        "baseline",
        0.95 * best,
        "reference",
        "baseline: jobs to within 5% of best",
    ));

    ExperimentReport {
        id: "abl-wrong-hints",
        title: "Ablation: deliberately wrong hints (NoC max-Fmax)".into(),
        headlines,
        table: cmp.render_table(10),
        csv: vec![("abl_wrong_hints.csv".into(), cmp.to_csv())],
    }
}

/// Importance-decay ablation on estimated hints (Figure 5 methodology):
/// concentrated estimated importances with and without the decay schedule.
///
/// # Panics
///
/// Panics if estimation or a comparison fails.
#[must_use]
pub fn abl_decay(scale: Scale) -> ExperimentReport {
    let d = router_dataset();
    let model_direct = RouterModel::swept();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("router metric"));
    let query = Query::minimize("luts", luts.clone());

    let with_decay = estimate_hints(&model_direct, &query, EstimateConfig::default(), 0xAB_04)
        .expect("estimation succeeds");
    let no_decay = estimate_hints(
        &model_direct,
        &query,
        EstimateConfig { decay: 1.0, ..EstimateConfig::default() },
        0xAB_04,
    )
    .expect("estimation succeeds");

    let strategies = [
        Strategy::baseline(),
        Strategy::guided("estimated-no-decay", no_decay.hints, Some(Confidence::STRONG)),
        Strategy::guided("estimated-with-decay", with_decay.hints, Some(Confidence::STRONG)),
    ];
    let cfg = scale.compare_config(scale.runs, 0xAB_04);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("ablation comparison");

    let (_, best) = d.best(&luts, Direction::Minimize);
    let threshold = 1.02 * best;
    let headlines = strategies
        .iter()
        .map(|s| {
            reach_line(
                &cmp,
                s.name(),
                threshold,
                "decay improves late fine-tuning",
                &format!("{}: jobs to within 2% of min LUTs", s.name()),
            )
        })
        .collect();

    ExperimentReport {
        id: "abl-decay",
        title: "Ablation: importance decay on estimated hints (NoC min-LUTs)".into(),
        headlines,
        table: cmp.render_table(10),
        csv: vec![("abl_decay.csv".into(), cmp.to_csv())],
    }
}

/// Operator ablation: guided mutation alone (the paper's design) vs. the
/// guided-crossover extension on top.
///
/// # Panics
///
/// Panics if an underlying comparison fails.
#[must_use]
pub fn abl_operators(scale: Scale) -> ExperimentReport {
    let d = fft_dataset();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("fft metric"));
    let query = Query::minimize("luts", luts.clone());
    let hints = min_luts_hints();

    let strategies = [
        Strategy::baseline(),
        Strategy::guided("guided-mutation", hints.clone(), Some(Confidence::STRONG)),
        Strategy::guided_full("guided-mut+xover", hints, Some(Confidence::STRONG)),
    ];
    let cfg = scale.compare_config(scale.runs, 0xAB_05);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("ablation comparison");

    let (_, best) = d.best(&luts, Direction::Minimize);
    let threshold = 1.02 * best;
    let headlines = strategies
        .iter()
        .map(|s| {
            reach_line(
                &cmp,
                s.name(),
                threshold,
                "extension: at least no regression",
                &format!("{}: jobs to within 2% of min LUTs", s.name()),
            )
        })
        .collect();

    ExperimentReport {
        id: "abl-operators",
        title: "Ablation: guided crossover extension (FFT min-LUTs)".into(),
        headlines,
        table: cmp.render_table(10),
        csv: vec![("abl_operators.csv".into(), cmp.to_csv())],
    }
}

/// Metaheuristic comparison: baseline GA, guided GA, simulated annealing,
/// hill climbing and random sampling on the Figure 6 query with matched
/// evaluation budgets.
///
/// # Panics
///
/// Panics if an underlying comparison fails.
#[must_use]
pub fn abl_metaheuristics(scale: Scale) -> ExperimentReport {
    let d = fft_dataset();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("fft metric"));
    let query = Query::minimize("luts", luts.clone());

    // Budget matched to what the GA spends in this generation budget.
    let budget = u64::from(scale.generations) * 6 + 10;
    let strategies = [
        Strategy::baseline(),
        Strategy::guided("nautilus-strong", min_luts_hints(), Some(Confidence::STRONG)),
        Strategy::anneal(AnnealConfig { budget, ..AnnealConfig::default() }),
        Strategy::hill_climb(budget, 30),
        Strategy::random(budget),
    ];
    let cfg = scale.compare_config(scale.runs, 0xAB_06);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("ablation comparison");

    let headlines = strategies
        .iter()
        .map(|s| {
            let r = cmp.result(s.name()).expect("strategy ran");
            Headline::new(
                format!("{}: mean final best LUTs", s.name()),
                "guided GA wins at equal budget",
                format!("{:.0} ({:.0} jobs)", r.mean_best(), r.mean_evals()),
            )
        })
        .collect();

    ExperimentReport {
        id: "abl-metaheuristics",
        title: "Ablation: metaheuristic comparison at matched budgets (FFT min-LUTs)".into(),
        headlines,
        table: cmp.render_table(10),
        csv: vec![("abl_metaheuristics.csv".into(), cmp.to_csv())],
    }
}

/// Runs every ablation study.
#[must_use]
pub fn all_ablations(scale: Scale) -> Vec<ExperimentReport> {
    vec![
        abl_hint_classes(scale),
        abl_confidence(scale),
        abl_wrong_hints(scale),
        abl_decay(scale),
        abl_operators(scale),
        abl_metaheuristics(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_class_ablation_reports_every_variant() {
        let r = abl_hint_classes(Scale::quick());
        assert_eq!(r.headlines.len(), 5);
        assert!(r.table.contains("bias-only"));
        assert!(r.table.contains("target-only"));
    }

    #[test]
    fn wrong_hints_never_break_the_search() {
        let r = abl_wrong_hints(Scale::quick());
        // All four strategies produced finite mean final quality.
        for h in &r.headlines[..4] {
            let v: f64 = h.measured.parse().unwrap();
            assert!(v > 100.0, "{}: {}", h.label, v);
        }
    }

    #[test]
    fn metaheuristic_ablation_covers_five_strategies() {
        let r = abl_metaheuristics(Scale::quick());
        assert_eq!(r.headlines.len(), 5);
        assert!(r.table.contains("simulated-annealing"));
        assert!(r.table.contains("hill-climb"));
    }
}
