//! One module per regenerated figure, plus shared experiment plumbing.

pub mod ablations;
mod fig1;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7;

pub use ablations::{
    abl_confidence, abl_decay, abl_hint_classes, abl_metaheuristics, abl_operators,
    abl_wrong_hints, all_ablations,
};
pub use fig1::fig1;
pub use fig2::fig2;
pub use fig3::fig3;
pub use fig4::fig4;
pub use fig5::fig5;
pub use fig6::fig6;
pub use fig7::fig7;

use nautilus_ga::GaSettings;

/// Experiment scale: the paper's full methodology or a fast smoke scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Runs per strategy (paper: 40).
    pub runs: usize,
    /// Runs for Figure 3 (paper: 20).
    pub fig3_runs: usize,
    /// GA generations (paper: 80).
    pub generations: u32,
    /// Worker threads for batched population evaluation (0 = one per
    /// available core; results are identical at any setting).
    pub eval_workers: usize,
}

impl Scale {
    /// The paper's methodology: 40 runs (20 for Figure 3), 80 generations.
    #[must_use]
    pub fn paper() -> Self {
        Scale { runs: 40, fig3_runs: 20, generations: 80, eval_workers: 0 }
    }

    /// A reduced scale for smoke tests and benches.
    #[must_use]
    pub fn quick() -> Self {
        Scale { runs: 6, fig3_runs: 6, generations: 30, eval_workers: 0 }
    }

    /// GA settings at this scale (population 10, mutation 0.1 as in the
    /// paper; only the generation budget varies).
    #[must_use]
    pub fn settings(&self) -> GaSettings {
        GaSettings {
            generations: self.generations,
            eval_workers: self.eval_workers,
            ..GaSettings::default()
        }
    }

    /// Comparison configuration at this scale.
    #[must_use]
    pub fn compare_config(&self, runs: usize, seed: u64) -> nautilus::CompareConfig {
        nautilus::CompareConfig {
            runs,
            seed,
            settings: self.settings(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_only_in_budget() {
        let p = Scale::paper();
        let q = Scale::quick();
        assert_eq!(p.settings().population, 10);
        assert_eq!(q.settings().population, 10);
        assert_eq!(p.settings().generations, 80);
        assert!(q.settings().generations < p.settings().generations);
        assert_eq!(p.compare_config(5, 7).runs, 5);
        assert_eq!(p.compare_config(5, 7).seed, 7);
        // Both scales default to auto-sized batch evaluation.
        assert_eq!(p.settings().eval_workers, 0);
        assert_eq!(q.settings().eval_workers, 0);
    }
}
