//! Figure 4: maximizing frequency in the NoC design space.

use nautilus::{compare, Confidence, Query, Strategy};
use nautilus_ga::Direction;
use nautilus_noc::hints::fmax_hints;
use nautilus_synth::MetricExpr;

use crate::data::router_dataset;
use crate::figures::Scale;
use crate::report::{ExperimentReport, Headline};

/// Regenerates Figure 4: best Fmax vs. number of designs synthesized for
/// the baseline GA and weakly/strongly guided Nautilus with *non-expert*
/// hints, averaged over 40 runs.
///
/// Paper: "The baseline GA requires about 2.8x and 1.8x the number of
/// synthesis jobs to converge to a solution within 1% of the best
/// solution" (vs. strongly and weakly guided Nautilus respectively).
///
/// # Panics
///
/// Panics if the underlying comparison fails (it cannot for the packaged
/// dataset and hints).
#[must_use]
pub fn fig4(scale: Scale) -> ExperimentReport {
    let d = router_dataset();
    let model = d.as_model();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("router metric"));
    let query = Query::maximize("fmax", fmax.clone());

    let hints = fmax_hints();
    let strategies = [
        Strategy::baseline(),
        Strategy::guided("nautilus-weak", hints.clone(), Some(Confidence::WEAK)),
        Strategy::guided("nautilus-strong", hints, Some(Confidence::STRONG)),
    ];
    let cfg = scale.compare_config(scale.runs, 0xF164);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("figure 4 comparison");

    // Within 1% of the dataset's best frequency.
    let (_, best) = d.best(&fmax, Direction::Maximize);
    let threshold = 0.99 * best;
    let stats = |name: &str| {
        cmp.result(name).expect("strategy ran").reach_stats(Direction::Maximize, threshold)
    };
    let evals = |name: &str| {
        let s = stats(name);
        s.censored_mean_evals
            .map_or("n/a".to_owned(), |e| format!("{e:.0} ({}/{})", s.reached, s.total))
    };
    let ratio_strong = cmp.evals_ratio("baseline", "nautilus-strong", threshold);
    let ratio_weak = cmp.evals_ratio("baseline", "nautilus-weak", threshold);

    ExperimentReport {
        id: "fig4",
        title: "NoC: Maximize Frequency (non-expert hints)".into(),
        headlines: vec![
            Headline::new(
                "baseline/strong synthesis-job ratio to within-1%-of-best",
                "2.8x",
                crate::report::fmt_ratio(ratio_strong),
            ),
            Headline::new(
                "baseline/weak synthesis-job ratio to within-1%-of-best",
                "1.8x",
                crate::report::fmt_ratio(ratio_weak),
            ),
            Headline::new(
                "baseline mean jobs to within-1%-of-best (reached/runs)",
                "~350-400",
                evals("baseline"),
            ),
            Headline::new(
                "strong mean jobs to within-1%-of-best (reached/runs)",
                "~130",
                evals("nautilus-strong"),
            ),
        ],
        table: cmp.render_table(5),
        csv: vec![("fig4_noc_fmax.csv".into(), cmp.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_scale_runs_and_orders_strategies() {
        let r = fig4(Scale::quick());
        assert_eq!(r.id, "fig4");
        assert!(r.table.contains("nautilus-strong"));
        assert!(r.csv[0].1.contains("baseline_evals"));
    }
}
