//! Figure 5: minimizing the area-delay product in the NoC design space.

use nautilus::{compare, estimate_hints, Confidence, EstimateConfig, Query, Strategy};
use nautilus_ga::Direction;
use nautilus_noc::router::RouterModel;
use nautilus_synth::MetricExpr;

use crate::data::router_dataset;
use crate::figures::Scale;
use crate::report::{ExperimentReport, Headline};

/// Regenerates Figure 5: best area-delay product (clock period × LUTs) vs.
/// designs synthesized, baseline vs. Nautilus, over the first 20
/// generations. Following the paper's methodology, the hints are
/// *estimated* by synthesizing a small sample of designs (80-design
/// budget) and observing trends — "this query also incorporates hints
/// related to the importance and bias of IP parameters that affect area,
/// such as virtual-channel buffer depth", which the estimation pass
/// recovers automatically.
///
/// Paper: "Nautilus achieves similar quality of results with about half
/// the number of synthesis runs required by the baseline", and both
/// converge to the optimum within 20 generations.
///
/// # Panics
///
/// Panics if the underlying comparison fails (it cannot for the packaged
/// dataset and hints).
#[must_use]
pub fn fig5(scale: Scale) -> ExperimentReport {
    let d = router_dataset();
    let model = d.as_model();
    let fmax = d.catalog().require("fmax").expect("router metric");
    let luts = d.catalog().require("luts").expect("router metric");
    let adp = MetricExpr::area_delay(fmax, luts);
    let query = Query::minimize("area_delay", adp.clone());

    // Non-expert hints, estimated the way the paper's were: sweep a few
    // designs (80-job budget, <0.3% of the space) and fit trends.
    let est = estimate_hints(&RouterModel::swept(), &query, EstimateConfig::default(), 0xE5_05)
        .expect("estimation over the router model succeeds");
    let strategies = [
        Strategy::baseline(),
        Strategy::guided("nautilus", est.hints.clone(), Some(Confidence::STRONG)),
    ];
    // The paper shows only the first 20 generations for this query.
    let mut fig_scale = scale;
    fig_scale.generations = scale.generations.min(20);
    let cfg = fig_scale.compare_config(scale.runs, 0xF1_65);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("figure 5 comparison");

    let (_, best) = d.best(&adp, Direction::Minimize);
    let threshold = 1.02 * best; // within 2% of the optimal ADP
    let ratio = cmp.evals_ratio("baseline", "nautilus", threshold);
    let evals = |name: &str| {
        let s = cmp.result(name).expect("strategy ran").reach_stats(Direction::Minimize, threshold);
        s.censored_mean_evals
            .map_or("n/a".to_owned(), |e| format!("{e:.0} ({}/{})", s.reached, s.total))
    };

    ExperimentReport {
        id: "fig5",
        title: "NoC: Minimize Area-Delay Product".into(),
        headlines: vec![
            Headline::new(
                "baseline/nautilus synthesis-job ratio to near-optimal ADP",
                "~2x",
                crate::report::fmt_ratio(ratio),
            ),
            Headline::new(
                "baseline mean jobs to near-optimal ADP (reached/runs)",
                "~80-100",
                evals("baseline"),
            ),
            Headline::new(
                "nautilus mean jobs to near-optimal ADP (reached/runs)",
                "~40-50",
                evals("nautilus"),
            ),
            Headline::new(
                "designs synthesized to estimate the hints",
                "80",
                est.jobs.jobs.to_string(),
            ),
        ],
        table: cmp.render_table(2),
        csv: vec![("fig5_noc_adp.csv".into(), cmp.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_runs_only_twenty_generations() {
        let r = fig5(Scale::quick());
        assert_eq!(r.id, "fig5");
        // 20 generations + initial population + csv header.
        assert!(r.csv[0].1.lines().count() <= 22);
    }
}
