//! Figure 6: minimizing the number of LUTs in the FFT design space.

use nautilus::{compare, Confidence, Query, Strategy};
use nautilus_fft::hints::min_luts_hints;
use nautilus_ga::Direction;
use nautilus_synth::MetricExpr;

use crate::data::fft_dataset;
use crate::figures::Scale;
use crate::report::{ExperimentReport, Headline};

/// Regenerates Figure 6: best LUT count vs. designs synthesized for the
/// baseline GA and weakly/strongly guided Nautilus with *expert* hints.
///
/// Paper: all three converge to ~540 LUTs; "the strongly guided Nautilus
/// strategy converges on the optimal design using an average of 101
/// synthesis runs, while the baseline GA requires 463"; relaxed to twice
/// the minimum, "23.6 designs ... while the baseline GA requires ... 78.9";
/// random sampling would need ~11,921.
///
/// # Panics
///
/// Panics if the underlying comparison fails (it cannot for the packaged
/// dataset and hints).
#[must_use]
pub fn fig6(scale: Scale) -> ExperimentReport {
    let d = fft_dataset();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("fft metric"));
    let query = Query::minimize("luts", luts.clone());

    let hints = min_luts_hints();
    let strategies = [
        Strategy::baseline(),
        Strategy::guided("nautilus-weak", hints.clone(), Some(Confidence::WEAK)),
        Strategy::guided("nautilus-strong", hints, Some(Confidence::STRONG)),
    ];
    let cfg = scale.compare_config(scale.runs, 0xF1_66);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("figure 6 comparison");

    let (_, best) = d.best(&luts, Direction::Minimize);
    let near_optimal = 1.005 * best; // "converges on the optimal design"
    let relaxed = 2.0 * best; // "relax the goal to ... twice the minimum"

    let evals = |name: &str, threshold: f64| {
        let s = cmp.result(name).expect("strategy ran").reach_stats(Direction::Minimize, threshold);
        s.censored_mean_evals
            .map_or("n/a".to_owned(), |e| format!("{e:.0} ({}/{})", s.reached, s.total))
    };
    let random_relaxed = d.expected_random_draws(&luts, Direction::Minimize, relaxed);
    let random_optimum = d.expected_random_draws(&luts, Direction::Minimize, near_optimal);

    ExperimentReport {
        id: "fig6",
        title: "FFT: Minimize # LUTs (expert hints)".into(),
        headlines: vec![
            Headline::new("dataset optimum (LUTs)", "~540", format!("{best:.0}")),
            Headline::new(
                "strong mean jobs to optimum (reached/runs)",
                "101",
                evals("nautilus-strong", near_optimal),
            ),
            Headline::new(
                "baseline mean jobs to optimum (reached/runs)",
                "463",
                evals("baseline", near_optimal),
            ),
            Headline::new(
                "strong mean jobs to 2x-minimum goal (reached/runs)",
                "23.6",
                evals("nautilus-strong", relaxed),
            ),
            Headline::new(
                "baseline mean jobs to 2x-minimum goal (reached/runs)",
                "78.9",
                evals("baseline", relaxed),
            ),
            Headline::new(
                "expected random draws to 2x-minimum goal",
                "11,921",
                crate::report::fmt_mean(random_relaxed),
            ),
            Headline::new(
                "expected random draws to optimum (rare-goal comparison)",
                "~12,000",
                crate::report::fmt_mean(random_optimum),
            ),
        ],
        table: cmp.render_table(5),
        csv: vec![("fig6_fft_luts.csv".into(), cmp.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reports_all_six_claims() {
        let r = fig6(Scale::quick());
        assert_eq!(r.headlines.len(), 7);
        let best: f64 = r.headlines[0].measured.parse().unwrap();
        assert!((420.0..650.0).contains(&best));
    }
}
