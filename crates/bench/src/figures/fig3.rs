//! Figure 3: baseline GA vs. Nautilus with only one or two "bias" hints.

use nautilus::{compare, Query, Strategy};
use nautilus_fft::hints::bias_only_hints;
use nautilus_ga::Direction;
use nautilus_synth::MetricExpr;

use crate::data::fft_dataset;
use crate::figures::Scale;
use crate::report::{ExperimentReport, Headline};

/// Regenerates Figure 3: design-solution score (normalized 0–100%) per
/// generation for the baseline GA and Nautilus with 1 or 2 bias hints on
/// an FFT query, averaged over 20 runs.
///
/// Paper: "the baseline GA takes 56 generations to find a solution within
/// the top 1%, while Nautilus can reach the same quality of results within
/// 15 to 23 generations, depending on how many hints are provided."
///
/// # Panics
///
/// Panics if the underlying comparison fails (it cannot for the packaged
/// dataset and hints).
#[must_use]
pub fn fig3(scale: Scale) -> ExperimentReport {
    let d = fft_dataset();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("fft metric"));
    let query = Query::minimize("luts", luts.clone());

    let strategies = [
        Strategy::baseline(),
        Strategy::guided("nautilus-1-bias-hint", bias_only_hints(1), None),
        Strategy::guided("nautilus-2-bias-hints", bias_only_hints(2), None),
    ];
    let cfg = scale.compare_config(scale.fig3_runs, 0xF1_63);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("figure 3 comparison");

    // The figure's y-axis: normalized score of the best-so-far value.
    let mut csv = String::from("generation,baseline_score,one_hint_score,two_hint_score\n");
    let mut table = format!(
        "{:<6} {:>16} {:>16} {:>16}   (design solution score, %)\n",
        "gen", "baseline", "1 bias hint", "2 bias hints"
    );
    let gens = cmp.results[0].averaged.len();
    for i in 0..gens {
        let scores: Vec<f64> = cmp
            .results
            .iter()
            .map(|r| d.normalized_score(&luts, Direction::Minimize, r.averaged[i].mean_best_so_far))
            .collect();
        csv.push_str(&format!("{i},{:.3},{:.3},{:.3}\n", scores[0], scores[1], scores[2]));
        if i % 5 == 0 || i + 1 == gens {
            table.push_str(&format!(
                "{:<6} {:>16.2} {:>16.2} {:>16.2}\n",
                i, scores[0], scores[1], scores[2]
            ));
        }
    }

    // Convergence to the top 1% of the dataset.
    let top1 = d.top_fraction_threshold(&luts, Direction::Minimize, 0.01);
    let gens_to = |name: &str| {
        let r = cmp.result(name).expect("strategy ran");
        r.reach_stats(Direction::Minimize, top1).censored_mean_generations
    };
    let base = gens_to("baseline");
    let one = gens_to("nautilus-1-bias-hint");
    let two = gens_to("nautilus-2-bias-hints");

    ExperimentReport {
        id: "fig3",
        title: "Baseline GA vs. Nautilus with 1–2 bias hints (FFT)".into(),
        headlines: vec![
            Headline::new(
                "baseline: generations to top-1% solution",
                "56",
                crate::report::fmt_mean(base),
            ),
            Headline::new(
                "nautilus (1 bias hint): generations to top-1%",
                "15–23",
                crate::report::fmt_mean(one),
            ),
            Headline::new(
                "nautilus (2 bias hints): generations to top-1%",
                "15–23",
                crate::report::fmt_mean(two),
            ),
        ],
        table,
        csv: vec![("fig3_bias_hints.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_scale_shows_hints_helping() {
        let r = fig3(Scale::quick());
        assert_eq!(r.id, "fig3");
        assert_eq!(r.headlines.len(), 3);
        // CSV has one row per generation plus a header.
        assert_eq!(r.csv[0].1.lines().count(), Scale::quick().generations as usize + 1 + 1);
        // Scores are valid percentages and mostly increasing for baseline.
        let last = r.csv[0].1.lines().last().unwrap().to_owned();
        let cols: Vec<f64> = last.split(',').skip(1).map(|v| v.parse().unwrap()).collect();
        for s in &cols {
            assert!((0.0..=100.0).contains(s), "score {s}");
        }
    }
}
