//! Figure 1: LUT usage and maximum frequency for ~30,000 router variants.

use nautilus_ga::{spearman, Summary};
use nautilus_synth::MetricExpr;

use crate::data::router_dataset;
use crate::report::{ExperimentReport, Headline};

/// Regenerates Figure 1's scatter: every characterized router design's
/// `(LUTs, Fmax)` pair, plus distribution summaries.
#[must_use]
pub fn fig1() -> ExperimentReport {
    let d = router_dataset();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("router metric"));
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("router metric"));
    let luts_all = d.eval_all(&luts);
    let fmax_all = d.eval_all(&fmax);

    let mut csv = String::from("luts,fmax_mhz\n");
    for (l, f) in luts_all.iter().zip(&fmax_all) {
        csv.push_str(&format!("{l:.0},{f:.2}\n"));
    }

    let ls = Summary::of(&luts_all).expect("non-empty dataset");
    let fs = Summary::of(&fmax_all).expect("non-empty dataset");
    let rho = spearman(&luts_all, &fmax_all).unwrap_or(0.0);

    let table = format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}\n{:<12} {:>12.0} {:>12.0} {:>12.0} {:>12.0}\n{:<12} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
        "metric", "min", "mean", "max", "std",
        "LUTs", ls.min, ls.mean, ls.max, ls.std_dev,
        "Fmax (MHz)", fs.min, fs.mean, fs.max, fs.std_dev,
    );

    ExperimentReport {
        id: "fig1",
        title: "Frequency vs. Area for Virtual-Channel Router Variants".into(),
        headlines: vec![
            Headline::new("characterized router design points", "~30,000", d.len().to_string()),
            Headline::new(
                "LUT range across variants",
                "~0.3k – ~25k",
                format!("{:.0} – {:.0}", ls.min, ls.max),
            ),
            Headline::new(
                "Fmax range across variants (MHz)",
                "~60 – ~200",
                format!("{:.0} – {:.0}", fs.min, fs.max),
            ),
            Headline::new("area/frequency rank correlation", "negative", format!("{rho:.2}")),
        ],
        table,
        csv: vec![("fig1_router_scatter.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_report_shape() {
        let r = fig1();
        assert_eq!(r.id, "fig1");
        assert_eq!(r.headlines.len(), 4);
        let (name, csv) = &r.csv[0];
        assert_eq!(name, "fig1_router_scatter.csv");
        assert_eq!(csv.lines().count(), 27_648 + 1);
        assert!(csv.starts_with("luts,fmax_mhz\n"));
    }

    #[test]
    fn fig1_correlation_is_negative() {
        // Bigger routers clock slower: the figure's scatter trends downward.
        let r = fig1();
        let rho: f64 = r.headlines[3].measured.parse().unwrap();
        assert!(rho < -0.1, "rho = {rho}");
    }
}
