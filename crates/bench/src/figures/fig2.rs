//! Figure 2: area, power and performance of 64-endpoint CONNECT NoCs.

use std::collections::BTreeMap;

use nautilus_noc::connect::sim::{saturation_rate, Network};
use nautilus_noc::connect::{NocModel, Topology};
use nautilus_synth::MetricExpr;

use crate::data::connect_dataset;
use crate::report::{ExperimentReport, Headline};

/// Regenerates Figure 2: per-design `(topology, area mm², power mW, peak
/// bisection bandwidth Gbps)`, with per-family clusters and the figure's
/// orders-of-magnitude spread.
#[must_use]
pub fn fig2() -> ExperimentReport {
    let d = connect_dataset();
    let model = NocModel::new(64);
    let area = d.catalog().require("area_mm2").expect("connect metric");
    let power = d.catalog().require("power_mw").expect("connect metric");
    let bw = d.catalog().require("bisection_gbps").expect("connect metric");

    let mut csv = String::from("topology,area_mm2,power_mw,bisection_gbps\n");
    // family -> (count, area sum, power sum, bw sum, bw min, bw max)
    let mut families: BTreeMap<&str, (usize, f64, f64, f64, f64, f64)> = BTreeMap::new();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (g, m) in d.iter() {
        let t = model.topology_of(g).label();
        let (a, p, b) = (m.get(area), m.get(power), m.get(bw));
        csv.push_str(&format!("{t},{a:.3},{p:.1},{b:.1}\n"));
        let e = families.entry(t).or_insert((0, 0.0, 0.0, 0.0, f64::INFINITY, 0.0));
        e.0 += 1;
        e.1 += a;
        e.2 += p;
        e.3 += b;
        e.4 = e.4.min(b);
        e.5 = e.5.max(b);
        lo = lo.min(b);
        hi = hi.max(b);
    }

    // Dynamic cross-check: simulated saturation throughput per family
    // (uniform random traffic, flit-level simulation). Computed once per
    // process — the bisection search costs a few seconds.
    static SATURATION: std::sync::OnceLock<std::collections::HashMap<&str, f64>> =
        std::sync::OnceLock::new();
    let saturation = SATURATION.get_or_init(|| {
        Topology::ALL
            .iter()
            .map(|&t| (t.label(), saturation_rate(&Network::build(t, 64), 2)))
            .collect()
    });

    let mut table = format!(
        "{:<26} {:>6} {:>12} {:>12} {:>16} {:>20} {:>12}\n",
        "topology family", "n", "mean mm^2", "mean mW", "mean Gbps", "Gbps range", "sim sat f/c"
    );
    for (t, (n, a, p, b, bmin, bmax)) in &families {
        let n_f = *n as f64;
        table.push_str(&format!(
            "{:<26} {:>6} {:>12.2} {:>12.0} {:>16.0} {:>9.0} – {:>8.0} {:>12.3}\n",
            t,
            n,
            a / n_f,
            p / n_f,
            b / n_f,
            bmin,
            bmax,
            saturation[*t],
        ));
    }

    let bw_expr = MetricExpr::metric(bw);
    let area_expr = MetricExpr::metric(area);
    let power_expr = MetricExpr::metric(power);
    let spread = |e: &MetricExpr| {
        let (_, lo) = d.best(e, nautilus_ga::Direction::Minimize);
        let (_, hi) = d.best(e, nautilus_ga::Direction::Maximize);
        (hi / lo).log10()
    };

    ExperimentReport {
        id: "fig2",
        title: "CONNECT NoC Area/Power vs. Performance (64 endpoints, 65nm)".into(),
        headlines: vec![
            Headline::new("topology families plotted", "8", families.len().to_string()),
            Headline::new(
                "bisection-bandwidth spread (orders of magnitude)",
                "2–3",
                format!("{:.1}", spread(&bw_expr)),
            ),
            Headline::new(
                "area spread (orders of magnitude)",
                "~2",
                format!("{:.1}", spread(&area_expr)),
            ),
            Headline::new(
                "power spread (orders of magnitude)",
                "~2",
                format!("{:.1}", spread(&power_expr)),
            ),
            Headline::new(
                "simulated saturation tracks bisection (ring<mesh<torus~fat tree)",
                "consistent",
                if saturation["Ring"] < saturation["Mesh"]
                    && saturation["Mesh"] < saturation["Fat Tree"]
                {
                    "consistent".to_owned()
                } else {
                    "violated".to_owned()
                },
            ),
        ],
        table,
        csv: vec![("fig2_connect_scatter.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_covers_all_families() {
        let r = fig2();
        for family in nautilus_noc::connect::Topology::ALL {
            assert!(r.table.contains(family.label()), "missing family {}", family.label());
        }
        assert_eq!(r.headlines[0].measured, "8");
    }

    #[test]
    fn fig2_spread_spans_orders_of_magnitude() {
        let r = fig2();
        let bw_spread: f64 = r.headlines[1].measured.parse().unwrap();
        assert!(bw_spread >= 2.0, "bandwidth spread {bw_spread}");
    }

    #[test]
    fn fig2_csv_has_one_row_per_design() {
        let r = fig2();
        let rows = r.csv[0].1.lines().count() - 1;
        assert_eq!(rows, connect_dataset().len());
    }
}
