//! Figure 7: maximizing throughput per LUT in the FFT design space.

use nautilus::{compare, Confidence, Query, Strategy};
use nautilus_fft::hints::throughput_per_lut_hints;
use nautilus_ga::Direction;
use nautilus_synth::MetricExpr;

use crate::data::fft_dataset;
use crate::figures::Scale;
use crate::report::{ExperimentReport, Headline};

/// Regenerates Figure 7: best throughput-per-LUT (MSPS/LUT) vs. designs
/// synthesized, with the composite objective the paper highlights.
///
/// Paper: "the strongly guided Nautilus strategy is able to reach 1.45
/// MSPS per LUT using 61.6 synthesis runs (on average), while the baseline
/// GA requires more than 8x synthesis runs (501.4 on average) ...
/// Moreover, Nautilus is able to reach high-quality solutions exhibiting
/// more than 1.5 MSPS per LUT, which the baseline is never able to
/// approach."
///
/// The paper's absolute 1.45/1.5 marks sit at ~90% and ~95% of its
/// dataset's best value; we use the same relative marks against ours.
///
/// # Panics
///
/// Panics if the underlying comparison fails (it cannot for the packaged
/// dataset and hints).
#[must_use]
pub fn fig7(scale: Scale) -> ExperimentReport {
    let d = fft_dataset();
    let model = d.as_model();
    let tpl = MetricExpr::metric(d.catalog().require("throughput").expect("fft metric"))
        / MetricExpr::metric(d.catalog().require("luts").expect("fft metric"));
    let query = Query::maximize("throughput_per_lut", tpl.clone());

    let hints = throughput_per_lut_hints();
    let strategies = [
        Strategy::baseline(),
        Strategy::guided("nautilus-weak", hints.clone(), Some(Confidence::WEAK)),
        Strategy::guided("nautilus-strong", hints, Some(Confidence::STRONG)),
    ];
    let cfg = scale.compare_config(scale.runs, 0xF1_67);
    let cmp = compare(&model, &query, &strategies, &cfg).expect("figure 7 comparison");

    let (_, best) = d.best(&tpl, Direction::Maximize);
    let mark = 0.90 * best; // the paper's "1.45 MSPS/LUT" mark
    let high = 0.95 * best; // the paper's "more than 1.5 MSPS/LUT" region

    let stats = |name: &str, threshold: f64| {
        cmp.result(name).expect("strategy ran").reach_stats(Direction::Maximize, threshold)
    };
    let ratio = cmp.evals_ratio("baseline", "nautilus-strong", mark);
    let strong_high = stats("nautilus-strong", high);
    let base_high = stats("baseline", high);

    ExperimentReport {
        id: "fig7",
        title: "FFT: Maximize Throughput per LUT (expert hints)".into(),
        headlines: vec![
            Headline::new(
                "strong mean jobs to the 90%-of-best mark (paper: 1.45)",
                "61.6",
                crate::report::fmt_mean(stats("nautilus-strong", mark).censored_mean_evals),
            ),
            Headline::new(
                "baseline mean jobs to the same mark",
                "501.4",
                crate::report::fmt_mean(stats("baseline", mark).censored_mean_evals),
            ),
            Headline::new(
                "baseline/strong synthesis-job ratio",
                ">8x",
                crate::report::fmt_ratio(ratio),
            ),
            Headline::new(
                "strong runs reaching the high-quality region (>95% best)",
                "reached",
                format!("{}/{}", strong_high.reached, strong_high.total),
            ),
            Headline::new(
                "baseline runs reaching the high-quality region",
                "never",
                format!("{}/{}", base_high.reached, base_high.total),
            ),
        ],
        table: cmp.render_table(5),
        csv: vec![("fig7_fft_tpl.csv".into(), cmp.to_csv())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_reports_reach_fractions() {
        let r = fig7(Scale::quick());
        assert_eq!(r.headlines.len(), 5);
        assert!(r.headlines[3].measured.contains('/'));
        assert!(r.csv[0].1.contains("nautilus-strong_best"));
    }
}
