//! Benchmarks of the parallel evaluation pipeline: batched GA population
//! evaluation, the sharded synthesis cache, and indexed dataset queries.
//!
//! `scripts/bench.sh` runs the matching `evalbench` binary to produce the
//! checked-in `BENCH_evalpipeline.json` headline numbers; this harness
//! tracks the same three surfaces under criterion for regression hunting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nautilus::{Nautilus, Query};
use nautilus_ga::{Direction, GaSettings, Genome};
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, Dataset, MetricExpr, ShardedCache, SynthJobRunner};

fn quick_settings(eval_workers: usize) -> GaSettings {
    GaSettings { generations: 20, eval_workers, ..GaSettings::default() }
}

/// Batched population evaluation: the identical search at 1 worker vs a
/// full worker pool. Results are bit-for-bit equal; only wall time moves.
fn bench_eval_batch(c: &mut Criterion) {
    let model = RouterModel::swept();
    let fmax = MetricExpr::metric(model.catalog().require("fmax").expect("metric"));
    let query = Query::maximize("fmax", fmax);
    let mut group = c.benchmark_group("eval_batch");
    group.sample_size(10);
    for (label, workers) in [("serial", 1usize), ("workers_auto", 0)] {
        let engine = Nautilus::new(&model).with_settings(quick_settings(workers));
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.run_baseline(&query, 42).expect("runs")));
        });
    }
    group.finish();
}

/// The sharded cache under a single thread (raw op cost) and hammered by
/// a full thread pool (contention behaviour).
fn bench_cache_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sharded");

    group.bench_function("insert_then_hit_serial", |b| {
        b.iter(|| {
            let cache = ShardedCache::new();
            for i in 0..512u32 {
                let g = Genome::from_genes(vec![i, i / 7]);
                cache.insert_or_hit(&g, &None, 0);
                black_box(cache.lookup(&g));
            }
            black_box(cache.stats())
        });
    });

    group.sample_size(10);
    group.bench_function("runner_hammer_8thr", |b| {
        let model = RouterModel::swept();
        b.iter(|| {
            let runner = SynthJobRunner::new(&model);
            std::thread::scope(|scope| {
                for t in 0..8u32 {
                    let runner = &runner;
                    scope.spawn(move || {
                        for i in 0..512u32 {
                            let g = runner.model().space().genome_at(u128::from((i + t) % 640));
                            black_box(runner.evaluate(&g));
                        }
                    });
                }
            });
            black_box(runner.stats())
        });
    });
    group.finish();
}

/// Indexed rank queries against the ~30k-point router dataset, plus the
/// old sort-per-call algorithm inlined as the reference cost.
fn bench_dataset_query(c: &mut Criterion) {
    let router = RouterModel::swept();
    let d = Dataset::characterize(&router, 0).expect("characterizes");
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("metric"));
    let mut group = c.benchmark_group("dataset_query");

    // Warm the memoized column so the measured op is the steady state.
    let _ = d.top_fraction_threshold(&fmax, Direction::Maximize, 0.01);
    group.bench_function("top_fraction_threshold_indexed", |b| {
        b.iter(|| black_box(d.top_fraction_threshold(&fmax, Direction::Maximize, 0.01)));
    });
    group.bench_function("count_reaching_indexed", |b| {
        b.iter(|| black_box(d.count_reaching(&fmax, Direction::Maximize, 200.0)));
    });

    // The pre-index algorithm: evaluate and sort the full column per call.
    group.sample_size(20);
    group.bench_function("top_fraction_threshold_sort_per_call", |b| {
        b.iter(|| {
            let mut values: Vec<f64> =
                d.eval_all(&fmax).into_iter().filter(|v| v.is_finite()).collect();
            values.sort_by(|a, b| {
                if Direction::Maximize.is_better(*a, *b) {
                    std::cmp::Ordering::Less
                } else if Direction::Maximize.is_better(*b, *a) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            });
            let k = ((values.len() as f64 * 0.01).ceil() as usize).clamp(1, values.len());
            black_box(values[k - 1])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_eval_batch, bench_cache_sharded, bench_dataset_query);
criterion_main!(benches);
