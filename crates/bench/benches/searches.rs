//! One benchmark per search figure (Figures 3–7): a single baseline run
//! and a single guided run of each figure's query, at the paper's GA
//! settings, replayed over the pre-characterized datasets.
//!
//! These measure the *search machinery* cost per figure; the wall-clock of
//! the full figures (40 averaged runs) is reported by the `experiments`
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nautilus::{Confidence, Nautilus, Query};
use nautilus_bench::data::{fft_dataset, router_dataset};
use nautilus_synth::MetricExpr;

fn bench_fig3(c: &mut Criterion) {
    let d = fft_dataset();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("metric"));
    let query = Query::minimize("luts", luts);
    let engine = Nautilus::new(&model);
    let hints = nautilus_fft::hints::bias_only_hints(2);
    let mut group = c.benchmark_group("fig3_bias_hints");
    let mut seed = 0u64;
    group.bench_function("baseline_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine.run_baseline(&query, seed).expect("runs"))
        });
    });
    group.bench_function("nautilus_2_bias_hints_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine.run_guided(&query, &hints, None, seed).expect("runs"))
        });
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let d = router_dataset();
    let model = d.as_model();
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("metric"));
    let query = Query::maximize("fmax", fmax);
    let engine = Nautilus::new(&model);
    let hints = nautilus_noc::hints::fmax_hints();
    let mut group = c.benchmark_group("fig4_noc_fmax");
    let mut seed = 0u64;
    group.bench_function("baseline_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine.run_baseline(&query, seed).expect("runs"))
        });
    });
    group.bench_function("nautilus_strong_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(
                engine.run_guided(&query, &hints, Some(Confidence::STRONG), seed).expect("runs"),
            )
        });
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let d = router_dataset();
    let model = d.as_model();
    let adp = MetricExpr::area_delay(
        d.catalog().require("fmax").expect("metric"),
        d.catalog().require("luts").expect("metric"),
    );
    let query = Query::minimize("area_delay", adp);
    let engine = Nautilus::new(&model);
    let hints = nautilus_noc::hints::area_delay_hints();
    let mut group = c.benchmark_group("fig5_noc_adp");
    let mut seed = 0u64;
    group.bench_function("baseline_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine.run_baseline(&query, seed).expect("runs"))
        });
    });
    group.bench_function("nautilus_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(
                engine.run_guided(&query, &hints, Some(Confidence::STRONG), seed).expect("runs"),
            )
        });
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let d = fft_dataset();
    let model = d.as_model();
    let luts = MetricExpr::metric(d.catalog().require("luts").expect("metric"));
    let query = Query::minimize("luts", luts);
    let engine = Nautilus::new(&model);
    let hints = nautilus_fft::hints::min_luts_hints();
    let mut group = c.benchmark_group("fig6_fft_luts");
    let mut seed = 0u64;
    group.bench_function("baseline_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine.run_baseline(&query, seed).expect("runs"))
        });
    });
    group.bench_function("nautilus_strong_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(
                engine.run_guided(&query, &hints, Some(Confidence::STRONG), seed).expect("runs"),
            )
        });
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let d = fft_dataset();
    let model = d.as_model();
    let tpl = MetricExpr::metric(d.catalog().require("throughput").expect("metric"))
        / MetricExpr::metric(d.catalog().require("luts").expect("metric"));
    let query = Query::maximize("throughput_per_lut", tpl);
    let engine = Nautilus::new(&model);
    let hints = nautilus_fft::hints::throughput_per_lut_hints();
    let mut group = c.benchmark_group("fig7_fft_tpl");
    let mut seed = 0u64;
    group.bench_function("baseline_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine.run_baseline(&query, seed).expect("runs"))
        });
    });
    group.bench_function("nautilus_strong_run", |b| {
        b.iter(|| {
            seed += 1;
            black_box(
                engine.run_guided(&query, &hints, Some(Confidence::STRONG), seed).expect("runs"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7);
criterion_main!(benches);
