//! Benchmarks of the substrate models and dataset machinery behind
//! Figures 1 and 2: per-point surrogate evaluation, full characterization
//! sweeps and dataset queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nautilus_fft::FftModel;
use nautilus_ga::Direction;
use nautilus_noc::connect::NocModel;
use nautilus_noc::router::RouterModel;
use nautilus_synth::{CostModel, Dataset, MetricExpr};

fn bench_model_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_eval");
    let router = RouterModel::swept();
    let g = router.space().genome_at(12_345);
    group.bench_function("router_swept", |b| {
        b.iter(|| black_box(router.evaluate(black_box(&g))));
    });

    let full = RouterModel::full();
    let gf = full.space().genome_at(987_654_321);
    group.bench_function("router_full_42_params", |b| {
        b.iter(|| black_box(full.evaluate(black_box(&gf))));
    });

    let fft = FftModel::new();
    let gfft = fft.space().genome_at(4_242);
    group.bench_function("fft", |b| {
        b.iter(|| black_box(fft.evaluate(black_box(&gfft))));
    });

    let noc = NocModel::new(64);
    let gn = noc.space().genome_at(123);
    group.bench_function("connect_64", |b| {
        b.iter(|| black_box(noc.evaluate(black_box(&gn))));
    });
    group.finish();
}

/// Figure 1's preparatory step: characterize the router sub-space.
fn bench_fig1_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    let router = RouterModel::swept();
    group.bench_function("fig1_router_27648pts_8thr", |b| {
        b.iter(|| black_box(Dataset::characterize(&router, 8).expect("characterizes")));
    });
    // Figure 2's network sweep is small enough to run single-threaded.
    let noc = NocModel::new(64);
    group.bench_function("fig2_connect_720pts_1thr", |b| {
        b.iter(|| black_box(Dataset::characterize(&noc, 1).expect("characterizes")));
    });
    group.finish();
}

fn bench_dataset_queries(c: &mut Criterion) {
    let router = RouterModel::swept();
    let d = Dataset::characterize(&router, 8).expect("characterizes");
    let fmax = MetricExpr::metric(d.catalog().require("fmax").expect("metric"));
    let mut group = c.benchmark_group("dataset_query");
    group.bench_function("best_of_27648", |b| {
        b.iter(|| black_box(d.best(&fmax, Direction::Maximize)));
    });
    group.bench_function("quality_pct", |b| {
        b.iter(|| black_box(d.quality_pct(&fmax, Direction::Maximize, 200.0)));
    });
    group.bench_function("top_fraction_threshold_1pct", |b| {
        b.iter(|| black_box(d.top_fraction_threshold(&fmax, Direction::Maximize, 0.01)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_model_evaluation,
    bench_fig1_characterization,
    bench_dataset_queries
);
criterion_main!(benches);
