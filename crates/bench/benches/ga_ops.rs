//! Microbenchmarks of the GA substrate: genetic operators, selection and
//! full engine generations, baseline vs. guided.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use nautilus::{Confidence, GuidedMutation, HintSet};
use nautilus_ga::ops::{CrossoverOp, MutationOp, OpCtx};
use nautilus_ga::{
    Direction, FnFitness, GaEngine, GaSettings, Genome, OnePointCrossover, ParamSpace,
    ScoredGenome, Selector, Tournament, UniformCrossover, UniformMutation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> ParamSpace {
    nautilus_noc::router::swept_space()
}

fn hints() -> HintSet {
    nautilus_noc::hints::fmax_hints().with_confidence(Confidence::STRONG)
}

fn bench_mutation(c: &mut Criterion) {
    let space = space();
    let mut group = c.benchmark_group("mutation");
    let ctx = OpCtx::new(10, 80);

    let uniform = UniformMutation::default();
    group.bench_function("uniform_rate_0.1", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let genome = space.random_genome(&mut rng);
        b.iter_batched(
            || genome.clone(),
            |mut g| {
                uniform.mutate(&mut g, &space, &ctx, &mut rng);
                black_box(g)
            },
            BatchSize::SmallInput,
        );
    });

    let guided =
        GuidedMutation::resolve(&hints(), &space, Direction::Maximize).expect("hints resolve");
    group.bench_function("nautilus_guided_rate_0.1", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let genome = space.random_genome(&mut rng);
        b.iter_batched(
            || genome.clone(),
            |mut g| {
                guided.mutate(&mut g, &space, &ctx, &mut rng);
                black_box(g)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_crossover(c: &mut Criterion) {
    let space = space();
    let ctx = OpCtx::new(0, 80);
    let mut rng = StdRng::seed_from_u64(3);
    let a = space.random_genome(&mut rng);
    let b_parent = space.random_genome(&mut rng);
    let mut group = c.benchmark_group("crossover");
    group.bench_function("one_point", |bch| {
        bch.iter(|| {
            black_box(OnePointCrossover.crossover(
                black_box(&a),
                black_box(&b_parent),
                &space,
                &ctx,
                &mut rng,
            ))
        });
    });
    group.bench_function("uniform", |bch| {
        let op = UniformCrossover::default();
        bch.iter(|| {
            black_box(op.crossover(black_box(&a), black_box(&b_parent), &space, &ctx, &mut rng))
        });
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let space = space();
    let mut rng = StdRng::seed_from_u64(4);
    let ranked: Vec<ScoredGenome> = (0..10)
        .map(|i| ScoredGenome { genome: space.random_genome(&mut rng), score: -(i as f64) })
        .collect();
    c.bench_function("selection/tournament_k2_pop10", |b| {
        let sel = Tournament::default();
        b.iter(|| black_box(sel.select(&ranked, &mut rng)));
    });
}

fn bench_engine_run(c: &mut Criterion) {
    // Full 80-generation run over a cheap closed-form fitness: measures the
    // engine overhead itself (selection, breeding, caching).
    let space = ParamSpace::builder()
        .int("a", 0, 31, 1)
        .int("b", 0, 31, 1)
        .int("c", 0, 31, 1)
        .build()
        .expect("static space");
    let fitness = FnFitness::new(Direction::Minimize, |g: &Genome| {
        Some(g.genes().iter().map(|&v| f64::from(v) * f64::from(v)).sum())
    });
    c.bench_function("engine/run_pop10_gen80", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let engine = GaEngine::new(&space, &fitness)
                .with_settings(GaSettings { generations: 80, ..GaSettings::default() });
            black_box(engine.run(seed).expect("run succeeds"))
        });
    });
}

criterion_group!(benches, bench_mutation, bench_crossover, bench_selection, bench_engine_run);
criterion_main!(benches);
