//! Expert hint books for the FFT generator.
//!
//! For the FFT experiments "the Nautilus engine is expert-guided as the
//! hints are provided from a member of the Spiral development team". Our
//! "Spiral developer" is the author of the surrogate model, so these hints
//! encode the true cost structure: transform size and streaming width
//! dominate area; iterative datapaths with BRAM twiddles are smallest;
//! streaming datapaths win throughput-per-LUT.

use nautilus::{Confidence, HintSet};
use nautilus_ga::ParamValue;

/// Storage ordering by LUT cost (ascending): bram < dist < lut.
/// Domain order is `[lut, bram, dist]`, so the rank permutation is
/// `[1, 2, 0]`.
const STORAGE_BY_LUTS: [u32; 3] = [1, 2, 0];

/// Expert hints for the *minimize LUTs* query (paper Figure 6).
///
/// # Panics
///
/// Never panics; all hint values are statically in range.
#[must_use]
pub fn min_luts_hints() -> HintSet {
    HintSet::for_metric("luts")
        .importance("arch", 95)
        .expect("static hint in range")
        .target("arch", ParamValue::Sym("iterative".into()))
        .expect("static hint in range")
        .importance("transform_size", 90)
        .expect("static hint in range")
        .bias("transform_size", 0.9)
        .expect("static hint in range")
        .importance("streaming_width", 85)
        .expect("static hint in range")
        .bias("streaming_width", 0.8)
        .expect("static hint in range")
        .importance("data_width", 55)
        .expect("static hint in range")
        .bias("data_width", 0.6)
        .expect("static hint in range")
        .importance("twiddle_width", 40)
        .expect("static hint in range")
        .bias("twiddle_width", 0.4)
        .expect("static hint in range")
        .importance("twiddle_storage", 60)
        .expect("static hint in range")
        .ordering("twiddle_storage", STORAGE_BY_LUTS)
        .bias("twiddle_storage", 0.7)
        .expect("static hint in range")
        .confidence(Confidence::STRONG)
        .build()
}

/// Expert hints for the *maximize throughput-per-LUT* query (Figure 7).
///
/// A Spiral developer knows that fully spatial (unrolled) datapaths
/// amortize all control and memory away, so at small transform sizes they
/// dominate throughput-per-LUT, with maximal-width streaming datapaths
/// close behind; narrow words and distributed-RAM twiddles keep the LUT
/// denominator down.
#[must_use]
pub fn throughput_per_lut_hints() -> HintSet {
    HintSet::for_metric("throughput_per_lut")
        .importance("arch", 95)
        .expect("static hint in range")
        .target("arch", ParamValue::Sym("unrolled".into()))
        .expect("static hint in range")
        .importance("transform_size", 90)
        .expect("static hint in range")
        .bias("transform_size", -0.8)
        .expect("static hint in range")
        .importance("data_width", 65)
        .expect("static hint in range")
        .bias("data_width", -0.6)
        .expect("static hint in range")
        .importance("twiddle_width", 45)
        .expect("static hint in range")
        .bias("twiddle_width", -0.4)
        .expect("static hint in range")
        .importance("twiddle_storage", 55)
        .expect("static hint in range")
        .target("twiddle_storage", ParamValue::Sym("dist".into()))
        .expect("static hint in range")
        .importance("streaming_width", 30)
        .expect("static hint in range")
        .bias("streaming_width", 0.3)
        .expect("static hint in range")
        .confidence(Confidence::STRONG)
        .build()
}

/// Bias-only hint sets for the paper's Figure 3 ablation, which compares
/// the baseline GA against Nautilus "only using 1 or 2 bias hints" on the
/// minimize-LUTs objective.
///
/// `count` = 1 biases the transform size; `count` = 2 adds the streaming
/// width.
///
/// # Panics
///
/// Panics if `count` is not 1 or 2.
#[must_use]
pub fn bias_only_hints(count: usize) -> HintSet {
    let b = HintSet::for_metric("luts").bias("transform_size", 0.9).expect("static hint in range");
    let b = match count {
        1 => b,
        2 => b.bias("streaming_width", 0.8).expect("static hint in range"),
        _ => panic!("figure 3 uses 1 or 2 bias hints, got {count}"),
    };
    b.confidence(Confidence::new(0.8).expect("static confidence")).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::space;
    use nautilus::ValueHint;

    #[test]
    fn hint_books_validate_against_the_space() {
        let s = space();
        assert!(min_luts_hints().validate(&s).is_ok());
        assert!(throughput_per_lut_hints().validate(&s).is_ok());
        assert!(bias_only_hints(1).validate(&s).is_ok());
        assert!(bias_only_hints(2).validate(&s).is_ok());
    }

    #[test]
    fn bias_only_sets_have_exactly_the_advertised_hints() {
        let one = bias_only_hints(1);
        assert_eq!(one.len(), 1);
        assert!(one.get("transform_size").is_some());
        let two = bias_only_hints(2);
        assert_eq!(two.len(), 2);
        assert!(two.get("streaming_width").is_some());
        // Bias-only means no importance or target hints.
        for (_, h) in two.iter() {
            assert!(h.importance.is_none());
            assert!(matches!(h.value, Some(ValueHint::Bias(_))));
        }
    }

    #[test]
    #[should_panic(expected = "1 or 2 bias hints")]
    fn bias_only_rejects_other_counts() {
        let _ = bias_only_hints(3);
    }

    #[test]
    fn storage_ordering_is_a_permutation() {
        let mut sorted = STORAGE_BY_LUTS;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2]);
    }

    #[test]
    fn min_luts_hints_target_iterative_architecture() {
        let h = min_luts_hints();
        match h.get("arch").unwrap().value.as_ref().unwrap() {
            ValueHint::Target(v) => assert_eq!(v, &ParamValue::Sym("iterative".into())),
            other => panic!("expected target, got {other:?}"),
        }
        assert_eq!(h.confidence(), Confidence::STRONG);
    }
}
