//! Parameter space of the streaming FFT generator.
//!
//! Models a Spiral-style hardware FFT generator [Milder et al., TODAES'12]:
//! transform size, streaming width (samples consumed per cycle), datapath
//! architecture, fixed-point word widths and twiddle-table storage. The
//! paper's FFT dataset holds "approximately 12,000 design instances
//! (varying 6 parameters)"; this space has 13,608 lattice points of which
//! ~10,500 are feasible — the generator rejects the rest, exercising the
//! paper's "sparsely populated design spaces that include infeasible
//! points or regions".

use nautilus_ga::{Genome, ParamSpace, ParamValue};

/// Names of the six FFT parameters, in space order.
pub const FFT_PARAMS: [&str; 6] =
    ["transform_size", "streaming_width", "arch", "data_width", "twiddle_width", "twiddle_storage"];

/// The 6-parameter FFT space (13,608 lattice points).
///
/// ```
/// let space = nautilus_fft::space();
/// assert_eq!(space.num_params(), 6);
/// assert_eq!(space.cardinality(), 9 * 6 * 3 * 7 * 4 * 3);
/// ```
#[must_use]
pub fn space() -> ParamSpace {
    ParamSpace::builder()
        .pow2("transform_size", 4, 12) // 16 .. 4096 points
        .pow2("streaming_width", 0, 5) // 1 .. 32 samples/cycle
        .choices("arch", ["iterative", "streaming", "unrolled"])
        .int_list("data_width", [8, 10, 12, 16, 18, 20, 24])
        .int_list("twiddle_width", [8, 12, 16, 18])
        .choices("twiddle_storage", ["lut", "bram", "dist"])
        .build()
        .expect("static space is valid")
}

/// Decoded view of one FFT design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftConfig {
    /// log2 of the transform size.
    pub log2_size: u32,
    /// log2 of the streaming width.
    pub log2_width: u32,
    /// Architecture index: 0 iterative, 1 streaming, 2 unrolled.
    pub arch: usize,
    /// Fixed-point data word width in bits.
    pub data_width: u32,
    /// Twiddle-factor word width in bits.
    pub twiddle_width: u32,
    /// Twiddle storage index: 0 lut, 1 bram, 2 dist.
    pub storage: usize,
}

impl FftConfig {
    /// Decodes `genome` against the FFT [`space`].
    ///
    /// # Panics
    ///
    /// Panics if the genome does not belong to the FFT space.
    #[must_use]
    pub fn decode(space: &ParamSpace, genome: &Genome) -> FftConfig {
        Self::decode_genes(space, genome.genes())
    }

    /// Slice-native [`FftConfig::decode`] over a structure-of-arrays gene
    /// row; identical to decoding the equivalent [`Genome`].
    ///
    /// # Panics
    ///
    /// Panics if the row does not belong to the FFT space.
    #[must_use]
    pub fn decode_genes(space: &ParamSpace, genes: &[u32]) -> FftConfig {
        let int = |name: &str| -> i64 {
            let id = space.id(name).expect("fft param");
            match space.param(id).domain().value(genes[id.index()] as usize) {
                ParamValue::Int(v) => v,
                other => panic!("expected integer for {name}, got {other}"),
            }
        };
        let gene = |name: &str| genes[space.id(name).expect("fft param").index()];
        FftConfig {
            log2_size: (int("transform_size") as u64).trailing_zeros(),
            log2_width: (int("streaming_width") as u64).trailing_zeros(),
            arch: gene("arch") as usize,
            data_width: int("data_width") as u32,
            twiddle_width: int("twiddle_width") as u32,
            storage: gene("twiddle_storage") as usize,
        }
    }

    /// Whether the generator can elaborate this configuration.
    ///
    /// * A streaming or iterative datapath needs its streaming width
    ///   strictly below the transform size (`2^w < 2^n`).
    /// * Fully unrolled datapaths are only generated up to 128 points
    ///   (beyond that the netlist explodes); the streaming-width parameter
    ///   is ignored by the unrolled datapath, so any value is accepted.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        match self.arch {
            2 => self.log2_size <= 7,
            _ => self.log2_width < self.log2_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_matches_paper_scale() {
        let s = space();
        assert_eq!(s.cardinality(), 13_608);
        for name in FFT_PARAMS {
            assert!(s.id(name).is_some(), "missing parameter {name}");
        }
    }

    #[test]
    fn feasible_fraction_is_close_to_the_paper_dataset() {
        let s = space();
        let feasible = s.iter_genomes().filter(|g| FftConfig::decode(&s, g).is_feasible()).count();
        // ~10.5k feasible of 13.6k lattice points ("approximately 12,000").
        assert!((9_000..=12_500).contains(&feasible), "feasible count {feasible}");
    }

    #[test]
    fn decode_round_trips_values() {
        let s = space();
        let g = s
            .genome_from_values([
                ("transform_size", ParamValue::Int(256)),
                ("streaming_width", ParamValue::Int(4)),
                ("arch", ParamValue::Sym("streaming".into())),
                ("data_width", ParamValue::Int(16)),
                ("twiddle_width", ParamValue::Int(12)),
                ("twiddle_storage", ParamValue::Sym("bram".into())),
            ])
            .unwrap();
        let c = FftConfig::decode(&s, &g);
        assert_eq!(c.log2_size, 8);
        assert_eq!(c.log2_width, 2);
        assert_eq!(c.arch, 1);
        assert_eq!(c.data_width, 16);
        assert_eq!(c.twiddle_width, 12);
        assert_eq!(c.storage, 1);
        assert!(c.is_feasible());
    }

    #[test]
    fn feasibility_rules() {
        let mk = |n: u32, w: u32, arch: usize| FftConfig {
            log2_size: n,
            log2_width: w,
            arch,
            data_width: 16,
            twiddle_width: 16,
            storage: 0,
        };
        // Streaming width must stay below the transform size.
        assert!(mk(4, 3, 1).is_feasible());
        assert!(!mk(4, 4, 1).is_feasible());
        assert!(!mk(4, 5, 0).is_feasible());
        // Unrolled only up to 128 points, any width gene.
        assert!(mk(7, 5, 2).is_feasible());
        assert!(!mk(8, 0, 2).is_feasible());
    }
}
