//! # nautilus-fft — the streaming FFT IP substrate
//!
//! A Spiral-style hardware FFT generator model, the second IP of the
//! paper's evaluation: ~13.6k lattice points over 6 parameters (~10.5k
//! feasible, the paper's "approximately 12,000"), characterized by a
//! surrogate synthesis model reporting LUTs, BRAMs, Fmax, throughput
//! (MSPS) and SNR. Expert hint books for the paper's two FFT queries and
//! the Figure 3 bias-only ablation live in [`hints`].
//!
//! ## Example
//!
//! ```
//! use nautilus_fft::{FftModel, FftConfig};
//! use nautilus_synth::CostModel;
//!
//! let model = FftModel::new();
//! let genome = model.space().genome_at(1_000);
//! let config = FftConfig::decode(model.space(), &genome);
//! assert_eq!(model.evaluate(&genome).is_some(), config.is_feasible());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hints;
mod model;
mod space;

pub use model::FftModel;
pub use space::{space, FftConfig, FFT_PARAMS};

#[cfg(test)]
mod tests {
    #[test]
    fn model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::FftModel>();
    }
}
