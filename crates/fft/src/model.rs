//! Surrogate synthesis model of the streaming FFT generator.
//!
//! Mirrors the cost structure of Spiral-generated FFT datapaths:
//!
//! * a **streaming** datapath instantiates `log2(N)` butterfly stages of
//!   `W/2` butterflies each, plus streaming permutation networks;
//! * an **iterative** datapath reuses one stage across `log2(N)` passes,
//!   trading throughput for area;
//! * a fully **unrolled** datapath spends a butterfly per FFT-graph node
//!   for maximal throughput;
//! * twiddle factors live in LUTs, distributed RAM or block RAM;
//! * quantization (data and twiddle widths) sets the output SNR.
//!
//! Calibrated so the dataset minimum is ~540 LUTs and the best
//! throughput-per-LUT is ~1.5–1.7 MSPS/LUT, the values the paper's
//! Figures 6 and 7 report.

use nautilus_ga::{GeneRows, Genome, ParamSpace};
use nautilus_synth::noise::noise_factor_genes;
use nautilus_synth::{CostModel, MetricCatalog, MetricSet};

use crate::space::{space, FftConfig};

const SALT_LUTS: u64 = 0xFF7_0001;
const SALT_FMAX: u64 = 0xFF7_0002;
const SALT_SNR: u64 = 0xFF7_0003;

/// Bits per block RAM (18 kb BRAM of the paper's Virtex-6 target).
const BRAM_BITS: f64 = 18_432.0;

/// The FFT generator's synthesis backend.
///
/// ```
/// use nautilus_fft::FftModel;
/// use nautilus_synth::CostModel;
/// let model = FftModel::new();
/// assert_eq!(model.space().num_params(), 6);
/// assert_eq!(model.catalog().len(), 5);
/// ```
#[derive(Debug)]
pub struct FftModel {
    space: ParamSpace,
    catalog: MetricCatalog,
}

impl FftModel {
    /// Creates the model over the standard FFT [`space`].
    #[must_use]
    pub fn new() -> Self {
        FftModel {
            space: space(),
            catalog: MetricCatalog::new([
                ("luts", "LUTs"),
                ("brams", "BRAMs"),
                ("fmax", "MHz"),
                ("throughput", "MSPS"),
                ("snr", "dB"),
            ])
            .expect("static catalog"),
        }
    }
}

impl Default for FftModel {
    fn default() -> Self {
        FftModel::new()
    }
}

impl CostModel for FftModel {
    fn name(&self) -> &str {
        "spiral-fft"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    fn evaluate(&self, g: &Genome) -> Option<MetricSet> {
        self.eval_genes(g.genes())
    }

    fn evaluate_rows(&self, rows: GeneRows<'_>, out: &mut Vec<Option<MetricSet>>) {
        // Slice-native batch kernel: no scratch genome, no per-point
        // dispatch.
        for row in rows.iter() {
            out.push(self.eval_genes(row));
        }
    }
}

impl FftModel {
    /// Slice-native synthesis kernel over one gene row.
    fn eval_genes(&self, g: &[u32]) -> Option<MetricSet> {
        let c = FftConfig::decode_genes(&self.space, g);
        if !c.is_feasible() {
            return None;
        }
        let n = f64::from(c.log2_size); // stages
        let size = (1u64 << c.log2_size) as f64; // transform points
        let w = (1u64 << c.log2_width) as f64; // samples per cycle
        let b = f64::from(c.data_width);
        let t = f64::from(c.twiddle_width);

        // One radix-2 butterfly: complex multiplier (b×t partial products)
        // plus complex add/sub and rounding.
        let butterfly = b * t * 0.25 + b * 7.0;

        // ---- LUTs and BRAMs by architecture --------------------------------
        let (mut luts, mut brams, samples_per_cycle);
        match c.arch {
            0 => {
                // Iterative: one stage + feedback permutation + control.
                luts = (w / 2.0) * butterfly + w * b * 1.2 + 550.0;
                // Working memory: the whole transform buffered in BRAM.
                brams = (size * 2.0 * b / BRAM_BITS).ceil();
                samples_per_cycle = w / n; // n passes over the data
            }
            1 => {
                // Streaming: log2(N) stages, each with W/2 butterflies and a
                // streaming permutation network.
                luts = n * (w / 2.0) * butterfly + n * w * b * 0.45 + n * 60.0 + 260.0;
                // Per-stage delay buffers (double-buffered).
                brams = (n * (size / w).max(1.0) * w.min(4.0) * 2.0 * b / BRAM_BITS).ceil();
                samples_per_cycle = w;
            }
            _ => {
                // Unrolled: a butterfly per graph node, no data memory.
                luts = n * (size / 2.0) * butterfly * 1.3 + size * b * 1.0;
                brams = 0.0;
                samples_per_cycle = size;
            }
        }

        // ---- Twiddle storage -------------------------------------------------
        let twiddle_bits = size * t;
        match c.storage {
            0 => luts += twiddle_bits * 0.25, // LUT ROM
            1 => {
                brams += (twiddle_bits / BRAM_BITS).ceil();
                luts += 90.0; // addressing glue
            }
            _ => luts += twiddle_bits * 0.15, // distributed RAM
        }

        // ---- Clock ------------------------------------------------------------
        let mut delay_ns = 2.0
            + 0.04 * (b - 8.0)
            + 0.18 * f64::from(c.log2_width)
            + match c.storage {
                0 => 0.30,
                1 => 0.25,
                _ => 0.15,
            }
            + match c.arch {
                0 => 0.25, // feedback mux
                1 => 0.0,
                _ => 0.50 + 0.10 * n, // giant fanout
            };
        delay_ns *= noise_factor_genes(g, SALT_FMAX, 0.04);
        let fmax = (1000.0 / delay_ns).clamp(80.0, 500.0);

        // ---- Derived metrics ---------------------------------------------------
        luts = (luts * noise_factor_genes(g, SALT_LUTS, 0.05)).round().max(1.0);
        let throughput = fmax * samples_per_cycle; // MSPS
        let snr = (6.02 * b.min(t + 2.0) + 1.76 - 1.4 * n) * noise_factor_genes(g, SALT_SNR, 0.02);

        Some(
            self.catalog
                .set(vec![luts, brams, fmax, throughput, snr])
                .expect("arity matches catalog"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_ga::{Direction, ParamValue};
    use nautilus_synth::{Dataset, MetricExpr};

    fn dataset() -> Dataset {
        Dataset::characterize(&FftModel::new(), 8).unwrap()
    }

    #[test]
    fn dataset_scale_matches_paper() {
        let d = dataset();
        assert!((9_000..=12_500).contains(&d.len()), "dataset holds {} designs", d.len());
    }

    #[test]
    fn min_luts_matches_figure_6() {
        let d = dataset();
        let luts = MetricExpr::metric(d.catalog().require("luts").unwrap());
        let (g, v) = d.best(&luts, Direction::Minimize);
        // Figure 6 converges to ~540 LUTs.
        assert!((420.0..650.0).contains(&v), "min LUTs {v}");
        let dp = d.space().decode(g);
        // The smallest design is a 16-point FFT with narrow words and a
        // resource-sharing (iterative or width-1 streaming) datapath.
        assert_ne!(dp.get("arch"), Some(&ParamValue::Sym("unrolled".into())));
        assert_eq!(dp.get("transform_size"), Some(&ParamValue::Int(16)));
        // Narrow datapath (synthesis noise may favor 10 bits over 8).
        let b = dp.get("data_width").unwrap().as_i64().unwrap();
        assert!(b <= 12, "min-LUT design uses {b}-bit data");
    }

    #[test]
    fn peak_throughput_per_lut_matches_figure_7() {
        let d = dataset();
        let tpl = MetricExpr::metric(d.catalog().require("throughput").unwrap())
            / MetricExpr::metric(d.catalog().require("luts").unwrap());
        let (_, v) = d.best(&tpl, Direction::Maximize);
        // Figure 7 peaks a bit above 1.5 MSPS/LUT.
        assert!((1.3..2.6).contains(&v), "peak throughput/LUT {v}");
    }

    #[test]
    fn infeasible_points_are_rejected() {
        let m = FftModel::new();
        let g = m
            .space()
            .genome_from_values([
                ("transform_size", ParamValue::Int(16)),
                ("streaming_width", ParamValue::Int(32)),
                ("arch", ParamValue::Sym("streaming".into())),
                ("data_width", ParamValue::Int(16)),
                ("twiddle_width", ParamValue::Int(16)),
                ("twiddle_storage", ParamValue::Sym("lut".into())),
            ])
            .unwrap();
        assert_eq!(m.evaluate(&g), None);
    }

    #[test]
    fn streaming_beats_iterative_throughput_at_same_width() {
        let m = FftModel::new();
        let thr = m.catalog().require("throughput").unwrap();
        let mk = |arch: &str| {
            m.space()
                .genome_from_values([
                    ("transform_size", ParamValue::Int(256)),
                    ("streaming_width", ParamValue::Int(4)),
                    ("arch", ParamValue::Sym(arch.into())),
                    ("data_width", ParamValue::Int(16)),
                    ("twiddle_width", ParamValue::Int(16)),
                    ("twiddle_storage", ParamValue::Sym("bram".into())),
                ])
                .unwrap()
        };
        let s = m.evaluate(&mk("streaming")).unwrap().get(thr);
        let i = m.evaluate(&mk("iterative")).unwrap().get(thr);
        assert!(s > 4.0 * i, "streaming {s} vs iterative {i}");
    }

    #[test]
    fn bigger_transforms_cost_more_luts() {
        let m = FftModel::new();
        let luts = m.catalog().require("luts").unwrap();
        let mk = |size: i64| {
            m.space()
                .genome_from_values([
                    ("transform_size", ParamValue::Int(size)),
                    ("streaming_width", ParamValue::Int(2)),
                    ("arch", ParamValue::Sym("streaming".into())),
                    ("data_width", ParamValue::Int(16)),
                    ("twiddle_width", ParamValue::Int(12)),
                    ("twiddle_storage", ParamValue::Sym("lut".into())),
                ])
                .unwrap()
        };
        let small = m.evaluate(&mk(32)).unwrap().get(luts);
        let big = m.evaluate(&mk(4096)).unwrap().get(luts);
        assert!(big > 3.0 * small, "{small} -> {big}");
    }

    #[test]
    fn wider_words_raise_snr() {
        let m = FftModel::new();
        let snr = m.catalog().require("snr").unwrap();
        let mk = |b: i64, t: i64| {
            m.space()
                .genome_from_values([
                    ("transform_size", ParamValue::Int(256)),
                    ("streaming_width", ParamValue::Int(2)),
                    ("arch", ParamValue::Sym("streaming".into())),
                    ("data_width", ParamValue::Int(b)),
                    ("twiddle_width", ParamValue::Int(t)),
                    ("twiddle_storage", ParamValue::Sym("bram".into())),
                ])
                .unwrap()
        };
        let narrow = m.evaluate(&mk(8, 8)).unwrap().get(snr);
        let wide = m.evaluate(&mk(24, 18)).unwrap().get(snr);
        assert!(wide > narrow + 30.0, "{narrow} vs {wide}");
    }

    #[test]
    fn unrolled_designs_have_no_data_brams_but_huge_area() {
        let m = FftModel::new();
        let luts = m.catalog().require("luts").unwrap();
        let brams = m.catalog().require("brams").unwrap();
        let g = m
            .space()
            .genome_from_values([
                ("transform_size", ParamValue::Int(128)),
                ("streaming_width", ParamValue::Int(1)),
                ("arch", ParamValue::Sym("unrolled".into())),
                ("data_width", ParamValue::Int(16)),
                ("twiddle_width", ParamValue::Int(16)),
                ("twiddle_storage", ParamValue::Sym("dist".into())),
            ])
            .unwrap();
        let ms = m.evaluate(&g).unwrap();
        assert!(ms.get(luts) > 20_000.0);
        assert_eq!(ms.get(brams), 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let m = FftModel::new();
        let g = m.space().genome_at(7_777);
        assert_eq!(m.evaluate(&g), m.evaluate(&g));
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_per_point_path() {
        // Includes infeasible rows: the batch kernel must report them as
        // None in place, exactly like the per-point path.
        let m = FftModel::new();
        let genomes: Vec<_> =
            (0..60u128).map(|i| m.space().genome_at(i * 227 % m.space().cardinality())).collect();
        let flat: Vec<u32> = genomes.iter().flat_map(|g| g.genes().iter().copied()).collect();
        let mut batch = Vec::new();
        m.evaluate_rows(GeneRows::new(&flat, m.space().num_params()), &mut batch);
        assert!(batch.iter().any(|r| r.is_none()), "sample should hit infeasible points");
        for (g, got) in genomes.iter().zip(&batch) {
            assert_eq!(*got, m.evaluate(g), "batch row diverged for {g:?}");
        }
    }
}
