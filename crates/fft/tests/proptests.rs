//! Property-based tests for the FFT substrate model.

use nautilus_fft::{FftConfig, FftModel};
use nautilus_synth::CostModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The model evaluates exactly the configurations its feasibility
    /// predicate admits, deterministically, with sane metric values.
    #[test]
    fn evaluate_agrees_with_feasibility(seed in any::<u64>()) {
        let model = FftModel::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let luts = model.catalog().require("luts").unwrap();
        let fmax = model.catalog().require("fmax").unwrap();
        let thr = model.catalog().require("throughput").unwrap();
        let brams = model.catalog().require("brams").unwrap();
        for _ in 0..24 {
            let g = model.space().random_genome(&mut rng);
            let cfg = FftConfig::decode(model.space(), &g);
            match model.evaluate(&g) {
                None => prop_assert!(!cfg.is_feasible()),
                Some(m) => {
                    prop_assert!(cfg.is_feasible());
                    let again = model.evaluate(&g);
                    prop_assert_eq!(again.as_ref(), Some(&m));
                    prop_assert!(m.get(luts) >= 300.0, "LUTs {}", m.get(luts));
                    prop_assert!((80.0..=500.0).contains(&m.get(fmax)));
                    prop_assert!(m.get(thr) > 0.0);
                    prop_assert!(m.get(brams) >= 0.0);
                }
            }
        }
    }

    /// Throughput equals clock times samples-per-cycle for each
    /// architecture's documented formula.
    #[test]
    fn throughput_formula_holds(seed in any::<u64>()) {
        let model = FftModel::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let fmax_id = model.catalog().require("fmax").unwrap();
        let thr_id = model.catalog().require("throughput").unwrap();
        for _ in 0..24 {
            let g = model.space().random_genome(&mut rng);
            let Some(m) = model.evaluate(&g) else { continue };
            let cfg = FftConfig::decode(model.space(), &g);
            let w = f64::from(1u32 << cfg.log2_width);
            let size = f64::from(1u32 << cfg.log2_size);
            let n = f64::from(cfg.log2_size);
            let expected = match cfg.arch {
                0 => m.get(fmax_id) * w / n,
                1 => m.get(fmax_id) * w,
                _ => m.get(fmax_id) * size,
            };
            prop_assert!((m.get(thr_id) - expected).abs() < 1e-6,
                "throughput {} vs formula {}", m.get(thr_id), expected);
        }
    }

    /// SNR grows with the narrower of the two word widths and shrinks
    /// with transform size.
    #[test]
    fn snr_trends(seed in any::<u64>()) {
        let model = FftModel::new();
        let space = model.space();
        let snr_id = model.catalog().require("snr").unwrap();
        let b = space.id("data_width").unwrap();
        let n = space.id("transform_size").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let base = space.random_genome(&mut rng);

        let mut narrow = base.clone();
        narrow.set_gene(b, 0); // 8-bit data
        let mut wide = base.clone();
        wide.set_gene(b, 6); // 24-bit data
        if let (Some(mn), Some(mw)) = (model.evaluate(&narrow), model.evaluate(&wide)) {
            prop_assert!(mw.get(snr_id) > mn.get(snr_id));
        }

        // Use the extreme sizes so the 1.4 dB/stage trend dominates the
        // +-2% synthesis noise.
        let mut small = base.clone();
        small.set_gene(n, 0); // 16 points
        let mut big = base;
        big.set_gene(n, 8); // 4096 points
        if let (Some(ms), Some(mb)) = (model.evaluate(&small), model.evaluate(&big)) {
            prop_assert!(ms.get(snr_id) > mb.get(snr_id));
        }
    }
}

/// Deterministic regression pin of the dataset optimum (recalibrations of
/// the surrogate must be conscious).
#[test]
fn fft_dataset_minimum_is_stable() {
    let model = FftModel::new();
    let d = nautilus_synth::Dataset::characterize(&model, 8).unwrap();
    let luts = nautilus_synth::MetricExpr::metric(d.catalog().require("luts").unwrap());
    let (_, min_luts) = d.best(&luts, nautilus_ga::Direction::Minimize);
    assert_eq!(min_luts, 583.0);
    assert_eq!(d.len(), 10_584);
}
