//! Executes one job on a scheduler slot: resolve the spec, resume or
//! start the checkpointed search, and compose crash-stable artifacts.
//!
//! The artifacts are built to one invariant: **a run that was interrupted
//! any number of times produces byte-identical artifacts to a run that was
//! never interrupted.** Three pieces make that hold:
//!
//! * The engine's checkpoint/resume discipline replays the search
//!   bit-for-bit ([`nautilus::Nautilus::resume_or_start_reported`]).
//! * Every incarnation streams raw events to its own per-line-flushed
//!   `events-NNN.jsonl`; [`compose_events`] splices the logs at checkpoint
//!   boundaries, discarding exactly the generation fragments the resumed
//!   incarnation re-executed.
//! * Reports and event streams are normalized the same way the engine's
//!   own resume tests normalize them: wall-clock, span timings, and
//!   durability-only events are excluded; everything else must match.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

use nautilus::{InMemorySink, Nautilus, RunBudget, RunReport, SearchOutcome, StopReason};
use nautilus_ga::GaSettings;
use nautilus_obs::json::{is_valid_json, parse_json, JsonObj, JsonValue};
use nautilus_obs::{SearchEvent, SearchObserver};

use crate::job::{JobDir, JobSpec};
use crate::registry::{resolve, Strategy};

/// Everything a finished run leaves behind.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// How the search stopped.
    pub stop: StopReason,
    /// Deterministic outcome digest.
    pub outcome_json: String,
    /// Normalized [`RunReport`] JSON.
    pub report_json: String,
    /// Normalized event stream, one JSON object per line.
    pub events_jsonl: String,
}

/// Runs `spec` inside `dir`, resuming from the job's checkpoints when an
/// earlier incarnation left any. `cancel` is the cooperative stop flag:
/// raising it halts the run at the next generation boundary with a final
/// checkpoint on disk.
///
/// # Errors
///
/// A human-readable failure message (unknown strategy/model, engine
/// error). The caller decides whether that trips the model's breaker.
pub fn execute(
    spec: &JobSpec,
    dir: &JobDir,
    cancel: &Arc<AtomicBool>,
) -> Result<RunArtifacts, String> {
    let strategy = Strategy::parse(&spec.strategy).map_err(|b| b.detail())?;
    let resolved = resolve(&spec.model, spec.eval_delay_us).map_err(|b| b.detail())?;
    let log = EventLog::create(&dir.next_event_log()).map_err(|e| e.to_string())?;

    let mut budget = RunBudget::new().with_cancel_flag(Arc::clone(cancel));
    if spec.max_evals > 0 {
        budget = budget.with_max_evaluations(spec.max_evals);
    }
    if spec.deadline_ms > 0 {
        budget = budget.with_deadline(std::time::Duration::from_millis(spec.deadline_ms));
    }

    let engine = Nautilus::new(resolved.model.as_ref())
        .with_observer(&log)
        .with_settings(settings_for(spec))
        .with_budget(budget)
        .with_checkpoints(dir.checkpoint_dir());
    let guidance = strategy.confidence().map(|c| (&resolved.hints, Some(c)));
    let (outcome, report) = engine
        .resume_or_start_reported(&resolved.query, guidance, spec.seed)
        .map_err(|e| e.to_string())?;
    drop(engine);
    log.flush();

    let events = compose_events(dir).map_err(|e| e.to_string())?;
    Ok(artifacts(&outcome, report, events))
}

/// Runs `spec` start-to-finish in-process with no checkpoints and no
/// daemon: the uninterrupted comparator the chaos gates diff against.
///
/// # Errors
///
/// As [`execute`].
pub fn straight(spec: &JobSpec) -> Result<RunArtifacts, String> {
    let strategy = Strategy::parse(&spec.strategy).map_err(|b| b.detail())?;
    let resolved = resolve(&spec.model, spec.eval_delay_us).map_err(|b| b.detail())?;
    let sink = InMemorySink::new();
    let mut budget = RunBudget::new();
    if spec.max_evals > 0 {
        budget = budget.with_max_evaluations(spec.max_evals);
    }
    let engine = Nautilus::new(resolved.model.as_ref())
        .with_observer(&sink)
        .with_settings(settings_for(spec))
        .with_budget(budget);
    let (outcome, report) = match strategy.confidence() {
        Some(c) => engine
            .run_guided_reported(&resolved.query, &resolved.hints, Some(c), spec.seed)
            .map_err(|e| e.to_string())?,
        None => {
            engine.run_baseline_reported(&resolved.query, spec.seed).map_err(|e| e.to_string())?
        }
    };
    let events: Vec<String> = sink.events().iter().map(SearchEvent::to_json).collect();
    Ok(artifacts(&outcome, report, events))
}

fn settings_for(spec: &JobSpec) -> GaSettings {
    let defaults = GaSettings::default();
    GaSettings {
        generations: spec.generations,
        eval_workers: if spec.eval_workers == 0 {
            defaults.eval_workers
        } else {
            spec.eval_workers as usize
        },
        // Mirror `Nautilus::new`'s paper-default single elite.
        elitism: 1,
        ..defaults
    }
}

fn artifacts(outcome: &SearchOutcome, report: RunReport, events: Vec<String>) -> RunArtifacts {
    let mut stream = String::new();
    for line in events.iter().filter(|l| !is_durability_event(l)) {
        stream.push_str(line);
        stream.push('\n');
    }
    RunArtifacts {
        stop: outcome.stop,
        outcome_json: outcome_json(outcome),
        report_json: normalize_report(report).to_json(),
        events_jsonl: stream,
    }
}

/// The event kinds a resume is allowed to differ in: span/run timings and
/// the durability machinery itself. Mirrors the engine's resume tests.
fn is_durability_event(line: &str) -> bool {
    let Ok(value) = parse_json(line) else { return false };
    let Some(kind) = value.get("type").and_then(JsonValue::as_str) else { return false };
    matches!(
        kind,
        "span_end"
            | "run_end"
            | "eval_batch"
            | "checkpoint_written"
            | "checkpoint_restored"
            | "checkpoint_corrupt_skipped"
            | "run_interrupted"
            | "run_resumed"
    )
}

/// Blanks the report fields a resume is allowed to differ in.
fn normalize_report(mut report: RunReport) -> RunReport {
    report.wall_nanos = 0;
    report.spans.clear();
    report.durability = Default::default();
    report
}

/// Deterministic single-line digest of a [`SearchOutcome`] — the same
/// shape the bench chaos gates use, so daemon digests diff cleanly
/// against straight-run digests.
#[must_use]
pub fn outcome_json(outcome: &SearchOutcome) -> String {
    let f = &outcome.faults;
    let h = &outcome.health;
    let mut o = JsonObj::new();
    o.str("strategy", &outcome.strategy)
        .str("stop", outcome.stop.as_str())
        .str("best_genome", &outcome.best_genome.to_string())
        .f64("best_value", outcome.best_value)
        .u64("trace_points", outcome.trace.len() as u64)
        .u64("jobs", outcome.jobs.jobs)
        .u64("infeasible", outcome.jobs.infeasible)
        .u64("cache_hits", outcome.jobs.cache_hits)
        .u64("tool_secs", outcome.jobs.simulated_tool_secs)
        .u64("evals_failed", f.evals_failed)
        .u64("retries", f.retries)
        .u64("retries_recovered", f.retries_recovered)
        .u64("quarantined", f.quarantined)
        .u64("breaker_trips", h.breaker_trips)
        .u64("evals_shed", h.evals_shed);
    o.finish()
}

/// Splices the job's per-incarnation event logs into the single stream an
/// uninterrupted run would have produced (before normalization).
///
/// For every incarnation that was followed by another: if the successor
/// resumed from checkpoint generation `G`, the predecessor's log is cut
/// just after its `checkpoint_written` line for `G` — everything past
/// that point belongs to generation work the successor re-executed. If
/// the successor started fresh (no intact checkpoint survived), the
/// predecessor's events are discarded wholesale. Lines truncated mid-write
/// by a kill are dropped.
///
/// # Errors
///
/// Propagates I/O failures reading the logs.
pub fn compose_events(dir: &JobDir) -> std::io::Result<Vec<String>> {
    let mut spliced: Vec<String> = Vec::new();
    let logs = dir.event_logs();
    for path in &logs {
        let lines = read_complete_lines(path)?;
        match restored_generation(&lines) {
            Restore::Fresh => spliced.clear(),
            Restore::FromCheckpoint(generation) => {
                truncate_at_checkpoint(&mut spliced, generation);
            }
        }
        spliced.extend(lines);
    }
    Ok(spliced)
}

enum Restore {
    /// The incarnation started (or restarted) the search from scratch.
    Fresh,
    /// The incarnation resumed from this checkpoint generation.
    FromCheckpoint(u64),
}

/// What the incarnation's opening events say about how it started. The
/// recovery replay emits `checkpoint_restored` before any run event, so
/// scanning for the first run-ish event terminates the search early.
fn restored_generation(lines: &[String]) -> Restore {
    for line in lines {
        let Ok(value) = parse_json(line) else { continue };
        match value.get("type").and_then(JsonValue::as_str) {
            Some("checkpoint_restored") => {
                if let Some(generation) = value.get("generation").and_then(JsonValue::as_u64) {
                    return Restore::FromCheckpoint(generation);
                }
            }
            Some("checkpoint_corrupt_skipped") | None => continue,
            Some(_) => break,
        }
    }
    Restore::Fresh
}

/// Cuts `spliced` just after the `checkpoint_written` line for
/// `generation`. When the line is absent the kill raced the event flush:
/// the log already ends at (or before) that checkpoint boundary, so the
/// whole prefix stands.
fn truncate_at_checkpoint(spliced: &mut Vec<String>, generation: u64) {
    for (idx, line) in spliced.iter().enumerate().rev() {
        let Ok(value) = parse_json(line) else { continue };
        if value.get("type").and_then(JsonValue::as_str) == Some("checkpoint_written")
            && value.get("generation").and_then(JsonValue::as_u64) == Some(generation)
        {
            spliced.truncate(idx + 1);
            return;
        }
    }
}

fn read_complete_lines(path: &Path) -> std::io::Result<Vec<String>> {
    let raw = fs::read_to_string(path)?;
    let mut lines: Vec<String> = Vec::new();
    let ends_clean = raw.ends_with('\n');
    let mut it = raw.lines().peekable();
    while let Some(line) = it.next() {
        let last = it.peek().is_none();
        // A kill mid-write can strand a torn final line; never let it
        // masquerade as an event.
        if last && (!ends_clean || !is_valid_json(line)) {
            break;
        }
        lines.push(line.to_owned());
    }
    Ok(lines)
}

/// A [`SearchObserver`] that appends every event to a JSONL file and
/// flushes per line, so a SIGKILL can lose at most one torn trailing
/// line — never a flushed prefix.
#[derive(Debug)]
pub struct EventLog {
    file: Mutex<fs::File>,
}

impl EventLog {
    /// Creates (or truncates) the log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> std::io::Result<EventLog> {
        Ok(EventLog { file: Mutex::new(fs::File::create(path)?) })
    }

    /// Opens the log at `path` for appending, creating it if missing —
    /// the daemon's own lifecycle log spans incarnations this way.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn append(path: &Path) -> std::io::Result<EventLog> {
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog { file: Mutex::new(file) })
    }

    /// Best-effort fsync of everything written so far.
    pub fn flush(&self) {
        if let Ok(f) = self.file.lock() {
            let _ = f.sync_all();
        }
    }
}

impl SearchObserver for EventLog {
    fn enabled(&self) -> bool {
        true
    }

    fn on_event(&self, event: &SearchEvent) {
        let mut line = event.to_json();
        line.push('\n');
        if let Ok(mut f) = self.file.lock() {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("nautilus-serve-runner-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(model: &str, strategy: &str) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            model: model.into(),
            strategy: strategy.into(),
            seed: 7,
            generations: 8,
            eval_workers: 1,
            max_evals: 0,
            deadline_ms: 0,
            eval_delay_us: 0,
        }
    }

    #[test]
    fn fresh_execute_matches_straight_run() {
        for strategy in ["baseline", "guided-weak", "guided-strong"] {
            let root = tempdir(&format!("fresh-{strategy}"));
            let dir = JobDir::create(&root, 1).unwrap();
            let s = spec("bowl", strategy);
            let cancel = Arc::new(AtomicBool::new(false));
            let daemon_side = execute(&s, &dir, &cancel).unwrap();
            let straight_side = straight(&s).unwrap();
            assert_eq!(daemon_side.stop, StopReason::Completed);
            assert_eq!(daemon_side.outcome_json, straight_side.outcome_json);
            assert_eq!(daemon_side.report_json, straight_side.report_json);
            assert_eq!(daemon_side.events_jsonl, straight_side.events_jsonl);
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn cancelled_then_reexecuted_job_matches_straight_run() {
        let root = tempdir("cancel-resume");
        let dir = JobDir::create(&root, 1).unwrap();
        let s = spec("ridge", "guided-strong");

        // First incarnation: cancel before it starts a single generation
        // boundary... too racy. Instead cancel immediately: the budget
        // fires at the first boundary, leaving a checkpoint behind.
        let cancel = Arc::new(AtomicBool::new(true));
        let first = execute(&s, &dir, &cancel).unwrap();
        assert_eq!(first.stop, StopReason::Cancelled);

        let cancel = Arc::new(AtomicBool::new(false));
        let second = execute(&s, &dir, &cancel).unwrap();
        assert_eq!(second.stop, StopReason::Completed);

        let straight_side = straight(&s).unwrap();
        assert_eq!(second.outcome_json, straight_side.outcome_json);
        assert_eq!(second.report_json, straight_side.report_json);
        assert_eq!(second.events_jsonl, straight_side.events_jsonl);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failures_surface_as_messages_not_panics() {
        let root = tempdir("failures");
        let dir = JobDir::create(&root, 1).unwrap();
        let cancel = Arc::new(AtomicBool::new(false));
        let err = execute(&spec("warp-core", "baseline"), &dir, &cancel).unwrap_err();
        assert!(err.contains("unknown model"), "{err}");
        let err = execute(&spec("bowl", "psychic"), &dir, &cancel).unwrap_err();
        assert!(err.contains("unknown strategy"), "{err}");
        let err = execute(&spec("barren", "baseline"), &dir, &cancel).unwrap_err();
        assert!(err.contains("no feasible genome"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_trailing_lines_are_dropped() {
        let root = tempdir("torn");
        let dir = JobDir::create(&root, 1).unwrap();
        fs::write(
            dir.path().join("events-000.jsonl"),
            "{\"type\":\"run_start\",\"label\":\"baseline\"}\n{\"type\":\"span_st",
        )
        .unwrap();
        let lines = compose_events(&dir).unwrap();
        assert_eq!(lines.len(), 1, "torn tail dropped: {lines:?}");
        let _ = fs::remove_dir_all(&root);
    }
}
