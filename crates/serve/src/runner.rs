//! Executes one job on a scheduler slot: resolve the spec, resume or
//! start the checkpointed search, and compose crash-stable artifacts.
//!
//! The artifacts are built to one invariant: **a run that was interrupted
//! any number of times produces byte-identical artifacts to a run that was
//! never interrupted.** Three pieces make that hold:
//!
//! * The engine's checkpoint/resume discipline replays the search
//!   bit-for-bit ([`nautilus::Nautilus::resume_or_start_reported`]).
//! * Every incarnation streams raw events to its own per-line-flushed
//!   `events-NNN.jsonl`; [`compose_events`] splices the logs at checkpoint
//!   boundaries, discarding exactly the generation fragments the resumed
//!   incarnation re-executed.
//! * Reports and event streams are normalized the same way the engine's
//!   own resume tests normalize them: wall-clock, span timings, and
//!   durability-only events are excluded; everything else must match.

use std::fs;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

use nautilus::{DurableIo, StopReason};
use nautilus::{InMemorySink, Nautilus, NautilusError, RunBudget, RunReport, SearchOutcome};
use nautilus_ga::{GaError, GaSettings};
use nautilus_obs::json::{is_valid_json, parse_json, JsonObj, JsonValue};
use nautilus_obs::{SearchEvent, SearchObserver};

use crate::job::{JobDir, JobSpec};
use crate::registry::{resolve, Strategy};

/// What kind of thing failed, which decides who pays for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The model/strategy/search itself misbehaved — counts against the
    /// model's circuit breaker.
    Model,
    /// The environment failed a durable write (disk full, fsync error,
    /// ...) — never trips a breaker; the daemon retries or parks the job.
    Durable,
}

/// A typed execution failure: the class drives breaker accounting, the
/// `recoverable` flag drives requeue-vs-terminal handling, and `site`
/// names the durable write that failed (empty for model faults).
#[derive(Debug, Clone)]
pub struct RunFault {
    /// Who pays: the model's breaker, or nobody.
    pub class: FaultClass,
    /// Durable-write site label (`job.events`, `ckpt`, ...); empty for
    /// model faults.
    pub site: String,
    /// True when a retry from the surviving on-disk state can succeed
    /// without losing history. Event-log damage is *not* recoverable:
    /// replaying would drop already-logged lines and break the
    /// byte-identical artifact invariant.
    pub recoverable: bool,
    /// Human-readable failure message.
    pub message: String,
}

impl RunFault {
    pub(crate) fn model(message: impl Into<String>) -> RunFault {
        RunFault {
            class: FaultClass::Model,
            site: String::new(),
            recoverable: false,
            message: message.into(),
        }
    }

    pub(crate) fn durable(site: &str, recoverable: bool, message: impl Into<String>) -> RunFault {
        RunFault {
            class: FaultClass::Durable,
            site: site.to_owned(),
            recoverable,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RunFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            FaultClass::Model => write!(f, "{}", self.message),
            FaultClass::Durable => write!(f, "durable fault at {}: {}", self.site, self.message),
        }
    }
}

/// Everything a finished run leaves behind.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// How the search stopped.
    pub stop: StopReason,
    /// Deterministic outcome digest.
    pub outcome_json: String,
    /// Normalized [`RunReport`] JSON.
    pub report_json: String,
    /// Normalized event stream, one JSON object per line.
    pub events_jsonl: String,
}

/// Runs `spec` inside `dir`, resuming from the job's checkpoints when an
/// earlier incarnation left any. `cancel` is the cooperative stop flag:
/// raising it halts the run at the next generation boundary with a final
/// checkpoint on disk.
///
/// # Errors
///
/// A typed [`RunFault`]: model faults (unknown strategy/model, engine
/// error) count against the model's breaker; durable faults (a failed
/// checkpoint, event-log, or spec write) never do — the caller requeues
/// recoverable ones and parks the rest.
pub fn execute(
    spec: &JobSpec,
    dir: &JobDir,
    cancel: &Arc<AtomicBool>,
) -> Result<RunArtifacts, RunFault> {
    let strategy = Strategy::parse(&spec.strategy).map_err(|b| RunFault::model(b.detail()))?;
    let resolved =
        resolve(&spec.model, spec.eval_delay_us).map_err(|b| RunFault::model(b.detail()))?;
    // A create failure loses nothing: the engine never ran, so a fresh
    // incarnation replays from the surviving checkpoints.
    let log = EventLog::create(&dir.next_event_log(), dir.io().clone())
        .map_err(|e| RunFault::durable("job.events", true, e.to_string()))?;

    let mut budget = RunBudget::new().with_cancel_flag(Arc::clone(cancel));
    if spec.max_evals > 0 {
        budget = budget.with_max_evaluations(spec.max_evals);
    }
    if spec.deadline_ms > 0 {
        budget = budget.with_deadline(std::time::Duration::from_millis(spec.deadline_ms));
    }

    let engine = Nautilus::new(resolved.model.as_ref())
        .with_observer(&log)
        .with_settings(settings_for(spec))
        .with_budget(budget)
        .with_checkpoints(dir.checkpoint_dir())
        .with_checkpoint_io(dir.io().clone());
    let guidance = strategy.confidence().map(|c| (&resolved.hints, Some(c)));
    let run = engine.resume_or_start_reported(&resolved.query, guidance, spec.seed);
    drop(engine);
    let (outcome, report) = run.map_err(classify_engine_error)?;

    // Event-log damage is terminal: some already-emitted lines may be
    // missing from disk, and a replay incarnation would splice a stream
    // that silently dropped them.
    log.sync().map_err(|m| RunFault::durable("job.events", false, m))?;

    let events =
        compose_events(dir).map_err(|e| RunFault::durable("job.events", true, e.to_string()))?;
    Ok(artifacts(&outcome, report, events))
}

/// A checkpoint-write failure aborted the engine mid-run: the last intact
/// checkpoint still replays bit-for-bit, so the fault is recoverable.
/// Everything else is the model's problem.
fn classify_engine_error(e: NautilusError) -> RunFault {
    match &e {
        NautilusError::Ga(GaError::Checkpoint(_)) => RunFault::durable("ckpt", true, e.to_string()),
        _ => RunFault::model(e.to_string()),
    }
}

/// Runs `spec` start-to-finish in-process with no checkpoints and no
/// daemon: the uninterrupted comparator the chaos gates diff against.
///
/// # Errors
///
/// As [`execute`].
pub fn straight(spec: &JobSpec) -> Result<RunArtifacts, String> {
    let strategy = Strategy::parse(&spec.strategy).map_err(|b| b.detail())?;
    let resolved = resolve(&spec.model, spec.eval_delay_us).map_err(|b| b.detail())?;
    let sink = InMemorySink::new();
    let mut budget = RunBudget::new();
    if spec.max_evals > 0 {
        budget = budget.with_max_evaluations(spec.max_evals);
    }
    let engine = Nautilus::new(resolved.model.as_ref())
        .with_observer(&sink)
        .with_settings(settings_for(spec))
        .with_budget(budget);
    let (outcome, report) = match strategy.confidence() {
        Some(c) => engine
            .run_guided_reported(&resolved.query, &resolved.hints, Some(c), spec.seed)
            .map_err(|e| e.to_string())?,
        None => {
            engine.run_baseline_reported(&resolved.query, spec.seed).map_err(|e| e.to_string())?
        }
    };
    let events: Vec<String> = sink.events().iter().map(SearchEvent::to_json).collect();
    Ok(artifacts(&outcome, report, events))
}

fn settings_for(spec: &JobSpec) -> GaSettings {
    let defaults = GaSettings::default();
    GaSettings {
        generations: spec.generations,
        eval_workers: if spec.eval_workers == 0 {
            defaults.eval_workers
        } else {
            spec.eval_workers as usize
        },
        // Mirror `Nautilus::new`'s paper-default single elite.
        elitism: 1,
        ..defaults
    }
}

fn artifacts(outcome: &SearchOutcome, report: RunReport, events: Vec<String>) -> RunArtifacts {
    let mut stream = String::new();
    for line in events.iter().filter(|l| !is_durability_event(l)) {
        stream.push_str(line);
        stream.push('\n');
    }
    RunArtifacts {
        stop: outcome.stop,
        outcome_json: outcome_json(outcome),
        report_json: normalize_report(report).to_json(),
        events_jsonl: stream,
    }
}

/// The event kinds a resume is allowed to differ in: span/run timings and
/// the durability machinery itself. Mirrors the engine's resume tests.
fn is_durability_event(line: &str) -> bool {
    let Ok(value) = parse_json(line) else { return false };
    let Some(kind) = value.get("type").and_then(JsonValue::as_str) else { return false };
    matches!(
        kind,
        "span_end"
            | "run_end"
            | "eval_batch"
            | "checkpoint_written"
            | "checkpoint_restored"
            | "checkpoint_corrupt_skipped"
            | "run_interrupted"
            | "run_resumed"
    )
}

/// Blanks the report fields a resume is allowed to differ in.
fn normalize_report(mut report: RunReport) -> RunReport {
    report.wall_nanos = 0;
    report.spans.clear();
    report.durability = Default::default();
    report
}

/// Deterministic single-line digest of a [`SearchOutcome`] — the same
/// shape the bench chaos gates use, so daemon digests diff cleanly
/// against straight-run digests.
#[must_use]
pub fn outcome_json(outcome: &SearchOutcome) -> String {
    let f = &outcome.faults;
    let h = &outcome.health;
    let mut o = JsonObj::new();
    o.str("strategy", &outcome.strategy)
        .str("stop", outcome.stop.as_str())
        .str("best_genome", &outcome.best_genome.to_string())
        .f64("best_value", outcome.best_value)
        .u64("trace_points", outcome.trace.len() as u64)
        .u64("jobs", outcome.jobs.jobs)
        .u64("infeasible", outcome.jobs.infeasible)
        .u64("cache_hits", outcome.jobs.cache_hits)
        .u64("tool_secs", outcome.jobs.simulated_tool_secs)
        .u64("evals_failed", f.evals_failed)
        .u64("retries", f.retries)
        .u64("retries_recovered", f.retries_recovered)
        .u64("quarantined", f.quarantined)
        .u64("breaker_trips", h.breaker_trips)
        .u64("evals_shed", h.evals_shed);
    o.finish()
}

/// Splices the job's per-incarnation event logs into the single stream an
/// uninterrupted run would have produced (before normalization).
///
/// For every incarnation that was followed by another: if the successor
/// resumed from checkpoint generation `G`, the predecessor's log is cut
/// just after its `checkpoint_written` line for `G` — everything past
/// that point belongs to generation work the successor re-executed. If
/// the successor started fresh (no intact checkpoint survived), the
/// predecessor's events are discarded wholesale. Lines truncated mid-write
/// by a kill are dropped.
///
/// # Errors
///
/// Propagates I/O failures reading the logs.
pub fn compose_events(dir: &JobDir) -> std::io::Result<Vec<String>> {
    let mut spliced: Vec<String> = Vec::new();
    let logs = dir.event_logs();
    for path in &logs {
        let lines = read_complete_lines(path)?;
        match restored_generation(&lines) {
            Restore::Fresh => spliced.clear(),
            Restore::FromCheckpoint(generation) => {
                truncate_at_checkpoint(&mut spliced, generation);
            }
        }
        spliced.extend(lines);
    }
    Ok(spliced)
}

enum Restore {
    /// The incarnation started (or restarted) the search from scratch.
    Fresh,
    /// The incarnation resumed from this checkpoint generation.
    FromCheckpoint(u64),
}

/// What the incarnation's opening events say about how it started. The
/// recovery replay emits `checkpoint_restored` before any run event, so
/// scanning for the first run-ish event terminates the search early.
fn restored_generation(lines: &[String]) -> Restore {
    for line in lines {
        let Ok(value) = parse_json(line) else { continue };
        match value.get("type").and_then(JsonValue::as_str) {
            Some("checkpoint_restored") => {
                if let Some(generation) = value.get("generation").and_then(JsonValue::as_u64) {
                    return Restore::FromCheckpoint(generation);
                }
            }
            Some("checkpoint_corrupt_skipped") | None => continue,
            Some(_) => break,
        }
    }
    Restore::Fresh
}

/// Cuts `spliced` just after the `checkpoint_written` line for
/// `generation`. When the line is absent the kill raced the event flush:
/// the log already ends at (or before) that checkpoint boundary, so the
/// whole prefix stands.
fn truncate_at_checkpoint(spliced: &mut Vec<String>, generation: u64) {
    for (idx, line) in spliced.iter().enumerate().rev() {
        let Ok(value) = parse_json(line) else { continue };
        if value.get("type").and_then(JsonValue::as_str) == Some("checkpoint_written")
            && value.get("generation").and_then(JsonValue::as_u64) == Some(generation)
        {
            spliced.truncate(idx + 1);
            return;
        }
    }
}

fn read_complete_lines(path: &Path) -> std::io::Result<Vec<String>> {
    let raw = fs::read_to_string(path)?;
    let mut lines: Vec<String> = Vec::new();
    let ends_clean = raw.ends_with('\n');
    let mut it = raw.lines().peekable();
    while let Some(line) = it.next() {
        let last = it.peek().is_none();
        // A kill mid-write can strand a torn final line; never let it
        // masquerade as an event.
        if last && (!ends_clean || !is_valid_json(line)) {
            break;
        }
        lines.push(line.to_owned());
    }
    Ok(lines)
}

/// A [`SearchObserver`] that appends every event to a JSONL file and
/// flushes per line, so a SIGKILL can lose at most one torn trailing
/// line — never a flushed prefix.
///
/// Write failures **poison** the log: the first error is recorded, every
/// later event is dropped without touching the file (and without
/// consuming fault-injection write points), and [`EventLog::sync`]
/// surfaces the stored fault. A half-written log never silently
/// masquerades as a complete one.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<LogInner>,
}

#[derive(Debug)]
struct LogInner {
    file: fs::File,
    io: DurableIo,
    site: &'static str,
    fault: Option<String>,
}

impl EventLog {
    /// Creates (or truncates) the log at `path`, routing appends and
    /// syncs through `io` under the `job.events` site label.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures (including injected ones).
    pub fn create(path: &Path, io: DurableIo) -> std::io::Result<EventLog> {
        let file = io.create(path, "job.events")?;
        Ok(EventLog { inner: Mutex::new(LogInner { file, io, site: "job.events", fault: None }) })
    }

    /// Opens the log at `path` for appending, creating it if missing —
    /// the daemon's own lifecycle log spans incarnations this way. The
    /// service log is advisory telemetry, not recovery-critical state,
    /// so it always writes through the real filesystem: its appends race
    /// across connection threads and must not perturb the deterministic
    /// write-point sequence of the durable job state.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn append(path: &Path) -> std::io::Result<EventLog> {
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog {
            inner: Mutex::new(LogInner {
                file,
                io: DurableIo::real(),
                site: "daemon.service_log",
                fault: None,
            }),
        })
    }

    /// Fsyncs everything written so far, surfacing the first append
    /// failure recorded by [`SearchObserver::on_event`] if there was one.
    ///
    /// # Errors
    ///
    /// The stored append fault, or the sync failure itself.
    pub fn sync(&self) -> Result<(), String> {
        let inner = self.inner.lock().expect("event log lock");
        if let Some(fault) = &inner.fault {
            return Err(fault.clone());
        }
        inner.io.sync(&inner.file, inner.site).map_err(|e| e.to_string())
    }

    /// The first append failure, if any event write has failed so far.
    #[must_use]
    pub fn fault(&self) -> Option<String> {
        self.inner.lock().expect("event log lock").fault.clone()
    }
}

impl SearchObserver for EventLog {
    fn enabled(&self) -> bool {
        true
    }

    fn on_event(&self, event: &SearchEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let Ok(mut inner) = self.inner.lock() else { return };
        if inner.fault.is_some() {
            return;
        }
        let LogInner { file, io, site, fault } = &mut *inner;
        if let Err(e) = io.append(file, line.as_bytes(), site) {
            *fault = Some(format!("event log append failed: {e}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("nautilus-serve-runner-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(model: &str, strategy: &str) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            model: model.into(),
            strategy: strategy.into(),
            seed: 7,
            generations: 8,
            eval_workers: 1,
            max_evals: 0,
            deadline_ms: 0,
            eval_delay_us: 0,
            dedupe_key: String::new(),
        }
    }

    #[test]
    fn fresh_execute_matches_straight_run() {
        for strategy in ["baseline", "guided-weak", "guided-strong"] {
            let root = tempdir(&format!("fresh-{strategy}"));
            let dir = JobDir::create(&root, 1).unwrap();
            let s = spec("bowl", strategy);
            let cancel = Arc::new(AtomicBool::new(false));
            let daemon_side = execute(&s, &dir, &cancel).unwrap();
            let straight_side = straight(&s).unwrap();
            assert_eq!(daemon_side.stop, StopReason::Completed);
            assert_eq!(daemon_side.outcome_json, straight_side.outcome_json);
            assert_eq!(daemon_side.report_json, straight_side.report_json);
            assert_eq!(daemon_side.events_jsonl, straight_side.events_jsonl);
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn cancelled_then_reexecuted_job_matches_straight_run() {
        let root = tempdir("cancel-resume");
        let dir = JobDir::create(&root, 1).unwrap();
        let s = spec("ridge", "guided-strong");

        // First incarnation: cancel before it starts a single generation
        // boundary... too racy. Instead cancel immediately: the budget
        // fires at the first boundary, leaving a checkpoint behind.
        let cancel = Arc::new(AtomicBool::new(true));
        let first = execute(&s, &dir, &cancel).unwrap();
        assert_eq!(first.stop, StopReason::Cancelled);

        let cancel = Arc::new(AtomicBool::new(false));
        let second = execute(&s, &dir, &cancel).unwrap();
        assert_eq!(second.stop, StopReason::Completed);

        let straight_side = straight(&s).unwrap();
        assert_eq!(second.outcome_json, straight_side.outcome_json);
        assert_eq!(second.report_json, straight_side.report_json);
        assert_eq!(second.events_jsonl, straight_side.events_jsonl);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failures_surface_as_typed_model_faults_not_panics() {
        let root = tempdir("failures");
        let dir = JobDir::create(&root, 1).unwrap();
        let cancel = Arc::new(AtomicBool::new(false));
        let err = execute(&spec("warp-core", "baseline"), &dir, &cancel).unwrap_err();
        assert_eq!(err.class, FaultClass::Model);
        assert!(err.message.contains("unknown model"), "{err}");
        let err = execute(&spec("bowl", "psychic"), &dir, &cancel).unwrap_err();
        assert!(err.message.contains("unknown strategy"), "{err}");
        let err = execute(&spec("barren", "baseline"), &dir, &cancel).unwrap_err();
        assert_eq!(err.class, FaultClass::Model);
        assert!(!err.recoverable);
        assert!(err.message.contains("no feasible genome"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn a_poisoned_event_log_is_a_terminal_durable_fault() {
        use nautilus_ga::{IoFaultKind, IoFaultPlan};
        let root = tempdir("poisoned-log");
        // Write point 0 is the event-log create; point 3 lands mid-run on
        // an event append, poisoning the log.
        let io = DurableIo::with_plan(IoFaultPlan::new().fail_at(3, IoFaultKind::WriteEnospc));
        let dir = JobDir::create(&root, 1).unwrap().with_io(io);
        let cancel = Arc::new(AtomicBool::new(false));
        let err = execute(&spec("bowl", "baseline"), &dir, &cancel).unwrap_err();
        assert_eq!(err.class, FaultClass::Durable);
        assert_eq!(err.site, "job.events");
        assert!(!err.recoverable, "event-log damage must not be retried: {err}");
        assert!(err.message.contains("enospc"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_trailing_lines_are_dropped() {
        let root = tempdir("torn");
        let dir = JobDir::create(&root, 1).unwrap();
        fs::write(
            dir.path().join("events-000.jsonl"),
            "{\"type\":\"run_start\",\"label\":\"baseline\"}\n{\"type\":\"span_st",
        )
        .unwrap();
        let lines = compose_events(&dir).unwrap();
        assert_eq!(lines.len(), 1, "torn tail dropped: {lines:?}");
        let _ = fs::remove_dir_all(&root);
    }
}
