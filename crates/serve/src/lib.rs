//! nautilus-serve: a supervised, crash-recovering multi-tenant search daemon.
//!
//! This crate turns the in-process Nautilus search engine into a small
//! service. A daemon ([`Daemon`]) listens on localhost, accepts search
//! submissions over a length-prefixed CRC-trailed wire protocol
//! ([`proto`]), schedules them across a fixed pool of worker slots, and
//! persists every job's spec, checkpoints, events, and result under a
//! state directory so that a `SIGKILL` at any instant loses nothing: the
//! next incarnation re-adopts orphaned jobs and resumes them from their
//! last durable checkpoint, producing byte-identical outcomes.
//!
//! Layers, bottom up:
//!
//! * [`proto`] — the `NAUTSRVC` frame format and request/reply types.
//!   One request, one reply, one connection; the daemon holds no
//!   connection state, which is what makes restarts invisible.
//! * [`job`] — on-disk layout of a job: spec and result stored as the
//!   same CRC-protected wire frames that cross the network, plus the
//!   engine checkpoint store and per-incarnation event logs.
//! * [`quota`] — per-tenant admission limits and the typed
//!   [`Backpressure`] taxonomy returned on refusal.
//! * [`registry`] — named cost models and strategies, so a persisted
//!   spec resolves to an identical search in every incarnation.
//! * [`runner`] — executes one job: resume-or-start, per-line-flushed
//!   event logging, and splicing event logs across incarnations.
//! * [`daemon`] — the supervisor: queue, worker slots, per-model circuit
//!   breakers, drain, and crash recovery.
//! * [`client`] — a small blocking client used by `nautilus-cli` and
//!   the integration tests; optional retry/backoff with idempotency
//!   gating ([`ServeClient::with_retries`]).
//!
//! # Hostile environments
//!
//! Every durable write (endpoint file, job specs/results/cancel markers,
//! event logs, checkpoints) goes through a [`nautilus::DurableIo`]
//! handle ([`DaemonConfig::io`]), so the disk-fault battery can fail any
//! single write deterministically and prove the daemon either surfaces a
//! typed error or recovers byte-identically. The service edge sheds
//! overload instead of queueing it: connection caps
//! ([`Backpressure::TooManyConnections`]), per-connection read/write
//! deadlines, bounded accept-error backoff, and dedupe-keyed idempotent
//! submission.

pub mod client;
pub mod daemon;
pub mod job;
pub mod proto;
pub mod quota;
pub mod registry;
pub mod runner;

pub use client::ServeClient;
pub use daemon::{Daemon, DaemonConfig};
pub use job::{JobDir, JobPhase, JobSpec};
pub use proto::{Frame, ProtoError, Reply, Request};
pub use quota::{Backpressure, TenantQuota};
pub use runner::{FaultClass, RunArtifacts, RunFault};
