//! Blocking client for the daemon's one-request-per-connection protocol.
//!
//! Each call opens a fresh TCP connection to the daemon, writes one
//! request frame, reads one reply frame, and closes. Because neither
//! side keeps connection state, a client is equally happy talking to
//! the daemon incarnation that accepted its job or to the one that
//! recovered it after a crash.

use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::job::{JobPhase, JobSpec};
use crate::proto::{Frame, ProtoError, Reply, Request};

/// A handle on a running daemon, addressed by its TCP endpoint.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: SocketAddr,
}

impl ServeClient {
    /// Client for a daemon at a known address.
    #[must_use]
    pub fn new(addr: SocketAddr) -> ServeClient {
        ServeClient { addr }
    }

    /// Client for the daemon serving `state_dir`, read from the
    /// `endpoint` file the daemon publishes on startup.
    pub fn from_state_dir(state_dir: impl AsRef<Path>) -> Result<ServeClient, ProtoError> {
        let raw = std::fs::read_to_string(state_dir.as_ref().join("endpoint"))?;
        let addr = raw.trim().parse::<SocketAddr>().map_err(|e| {
            ProtoError::Malformed(format!("endpoint file holds `{}`: {e}", raw.trim()))
        })?;
        Ok(ServeClient { addr })
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One round trip: connect, send `request`, read the reply.
    pub fn call(&self, request: Request) -> Result<Reply, ProtoError> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        Frame::Request(request).write_to(&mut stream)?;
        match Frame::read_from(&mut stream)? {
            Frame::Reply(reply) => Ok(reply),
            Frame::Request(_) => Err(ProtoError::Malformed("daemon sent a request frame".into())),
        }
    }

    /// Liveness probe; returns the daemon's total job count.
    pub fn ping(&self) -> Result<u64, ProtoError> {
        match self.call(Request::Ping)? {
            Reply::Pong { jobs } => Ok(jobs),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Submit a job. `Ok(Ok(id))` on admission, `Ok(Err(bp))` on a
    /// typed refusal.
    pub fn submit(
        &self,
        spec: &JobSpec,
    ) -> Result<Result<u64, crate::quota::Backpressure>, ProtoError> {
        match self.call(Request::Submit { spec: spec.clone() })? {
            Reply::Submitted { job } => Ok(Ok(job)),
            Reply::Rejected { reason } => Ok(Err(reason)),
            other => Err(unexpected("Submitted/Rejected", &other)),
        }
    }

    /// Phase and detail line for one job.
    pub fn status(&self, job: u64) -> Result<(JobPhase, String), ProtoError> {
        match self.call(Request::Status { job })? {
            Reply::Status { phase, detail, .. } => Ok((phase, detail)),
            Reply::Error { message } => Err(ProtoError::Malformed(message)),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Fetch a finished job's result reply, `None` while still pending.
    pub fn result(&self, job: u64) -> Result<Option<Reply>, ProtoError> {
        match self.call(Request::Result { job })? {
            r @ Reply::Result { .. } => Ok(Some(r)),
            Reply::Status { .. } => Ok(None),
            Reply::Error { message } => Err(ProtoError::Malformed(message)),
            other => Err(unexpected("Result/Status", &other)),
        }
    }

    /// Request cancellation of a job.
    pub fn cancel(&self, job: u64) -> Result<(), ProtoError> {
        match self.call(Request::Cancel { job })? {
            Reply::Cancelled { .. } => Ok(()),
            Reply::Error { message } => Err(ProtoError::Malformed(message)),
            other => Err(unexpected("Cancelled", &other)),
        }
    }

    /// Ask the daemon to drain; returns the number of still-pending jobs.
    pub fn drain(&self) -> Result<u64, ProtoError> {
        match self.call(Request::Drain)? {
            Reply::Draining { pending } => Ok(pending),
            other => Err(unexpected("Draining", &other)),
        }
    }

    /// Poll until `job` reaches a terminal phase and its result record
    /// is durable, or `timeout` elapses.
    pub fn wait_result(&self, job: u64, timeout: Duration) -> Result<Reply, ProtoError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(reply) = self.result(job)? {
                return Ok(reply);
            }
            if Instant::now() >= deadline {
                return Err(ProtoError::Malformed(format!(
                    "timed out waiting for job {job} result"
                )));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ProtoError {
    ProtoError::Malformed(format!("expected {wanted} reply, got {got:?}"))
}
