//! Blocking client for the daemon's one-request-per-connection protocol.
//!
//! Each call opens a fresh TCP connection to the daemon, writes one
//! request frame, reads one reply frame, and closes. Because neither
//! side keeps connection state, a client is equally happy talking to
//! the daemon incarnation that accepted its job or to the one that
//! recovered it after a crash.
//!
//! # Retry safety
//!
//! [`ServeClient::with_retries`] arms transparent retry-with-backoff for
//! transport faults (refused connection, reset, timeout). Queries
//! (`ping`, `status`, `result`, `drain`, `cancel`) are idempotent and
//! always retried. `submit` is retried **only when the spec carries a
//! dedupe key**: a retried submission whose first attempt actually
//! landed would otherwise enqueue the job twice. With a key the daemon
//! answers the retry with the original job id.

use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::job::{JobPhase, JobSpec};
use crate::proto::{Frame, ProtoError, Reply, Request};

/// A handle on a running daemon, addressed by its TCP endpoint.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: SocketAddr,
    timeout: Option<Duration>,
    retries: u32,
    backoff: Duration,
}

impl ServeClient {
    /// Client for a daemon at a known address. No timeouts, no retries —
    /// exactly one attempt per call.
    #[must_use]
    pub fn new(addr: SocketAddr) -> ServeClient {
        ServeClient { addr, timeout: None, retries: 0, backoff: Duration::from_millis(50) }
    }

    /// Client for the daemon serving `state_dir`, read from the
    /// `endpoint` file the daemon publishes on startup.
    pub fn from_state_dir(state_dir: impl AsRef<Path>) -> Result<ServeClient, ProtoError> {
        let raw = std::fs::read_to_string(state_dir.as_ref().join("endpoint"))?;
        let addr = raw.trim().parse::<SocketAddr>().map_err(|e| {
            ProtoError::Malformed(format!("endpoint file holds `{}`: {e}", raw.trim()))
        })?;
        Ok(ServeClient::new(addr))
    }

    /// Applies `timeout` to connect, request write, and reply read, so a
    /// dead or wedged daemon surfaces as a typed error instead of a
    /// forever-blocked call.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> ServeClient {
        self.timeout = Some(timeout);
        self
    }

    /// Retries transport faults up to `retries` extra attempts, sleeping
    /// `backoff * attempt` between tries (linear backoff). See the
    /// module docs for which requests are eligible.
    #[must_use]
    pub fn with_retries(mut self, retries: u32, backoff: Duration) -> ServeClient {
        self.retries = retries;
        self.backoff = backoff;
        self
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn call_once(&self, request: &Request) -> Result<Reply, ProtoError> {
        let mut stream = match self.timeout {
            Some(t) => TcpStream::connect_timeout(&self.addr, t)?,
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_nodelay(true).ok();
        if let Some(t) = self.timeout {
            stream.set_read_timeout(Some(t)).ok();
            stream.set_write_timeout(Some(t)).ok();
        }
        Frame::Request(request.clone()).write_to(&mut stream)?;
        match Frame::read_from(&mut stream)? {
            Frame::Reply(reply) => Ok(reply),
            Frame::Request(_) => Err(ProtoError::Malformed("daemon sent a request frame".into())),
        }
    }

    /// True for faults where the request may simply be resent: the
    /// transport broke before a well-formed reply arrived.
    fn is_retryable(err: &ProtoError) -> bool {
        matches!(err, ProtoError::Io(_) | ProtoError::CleanEof | ProtoError::Truncated)
    }

    /// Whether a lost reply to `request` can be safely re-asked.
    fn is_idempotent(request: &Request) -> bool {
        match request {
            Request::Ping
            | Request::Status { .. }
            | Request::Result { .. }
            | Request::Cancel { .. }
            | Request::Drain => true,
            // Resubmission is only safe when the daemon can dedupe it.
            Request::Submit { spec } => !spec.dedupe_key.is_empty(),
        }
    }

    /// One round trip: connect, send `request`, read the reply. Armed
    /// retries apply when the request is idempotent (see module docs).
    pub fn call(&self, request: Request) -> Result<Reply, ProtoError> {
        let budget = if Self::is_idempotent(&request) { self.retries } else { 0 };
        let mut attempt = 0u32;
        loop {
            match self.call_once(&request) {
                Ok(reply) => return Ok(reply),
                Err(err) if attempt < budget && Self::is_retryable(&err) => {
                    attempt += 1;
                    std::thread::sleep(self.backoff * attempt);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Liveness probe; returns the daemon's total job count.
    pub fn ping(&self) -> Result<u64, ProtoError> {
        match self.call(Request::Ping)? {
            Reply::Pong { jobs } => Ok(jobs),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Submit a job. `Ok(Ok(id))` on admission, `Ok(Err(bp))` on a
    /// typed refusal.
    pub fn submit(
        &self,
        spec: &JobSpec,
    ) -> Result<Result<u64, crate::quota::Backpressure>, ProtoError> {
        match self.call(Request::Submit { spec: spec.clone() })? {
            Reply::Submitted { job } => Ok(Ok(job)),
            Reply::Rejected { reason } => Ok(Err(reason)),
            other => Err(unexpected("Submitted/Rejected", &other)),
        }
    }

    /// Phase and detail line for one job.
    pub fn status(&self, job: u64) -> Result<(JobPhase, String), ProtoError> {
        match self.call(Request::Status { job })? {
            Reply::Status { phase, detail, .. } => Ok((phase, detail)),
            Reply::Error { message } => Err(ProtoError::Malformed(message)),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Fetch a finished job's result reply, `None` while still pending.
    pub fn result(&self, job: u64) -> Result<Option<Reply>, ProtoError> {
        match self.call(Request::Result { job })? {
            r @ Reply::Result { .. } => Ok(Some(r)),
            Reply::Status { .. } => Ok(None),
            Reply::Error { message } => Err(ProtoError::Malformed(message)),
            other => Err(unexpected("Result/Status", &other)),
        }
    }

    /// Request cancellation of a job.
    pub fn cancel(&self, job: u64) -> Result<(), ProtoError> {
        match self.call(Request::Cancel { job })? {
            Reply::Cancelled { .. } => Ok(()),
            Reply::Error { message } => Err(ProtoError::Malformed(message)),
            other => Err(unexpected("Cancelled", &other)),
        }
    }

    /// Ask the daemon to drain; returns the number of still-pending jobs.
    pub fn drain(&self) -> Result<u64, ProtoError> {
        match self.call(Request::Drain)? {
            Reply::Draining { pending } => Ok(pending),
            other => Err(unexpected("Draining", &other)),
        }
    }

    /// Poll until `job` reaches a terminal phase and its result record
    /// is durable, or `timeout` elapses.
    pub fn wait_result(&self, job: u64, timeout: Duration) -> Result<Reply, ProtoError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(reply) = self.result(job)? {
                return Ok(reply);
            }
            if Instant::now() >= deadline {
                return Err(ProtoError::Malformed(format!(
                    "timed out waiting for job {job} result"
                )));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ProtoError {
    ProtoError::Malformed(format!("expected {wanted} reply, got {got:?}"))
}
